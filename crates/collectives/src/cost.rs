//! Slot-cost model and lower bounds for every collective.
//!
//! Costs are exact slot counts of the schedules built by [`crate::movement`]
//! (asserted by the tests there); lower bounds follow from the §1 machine
//! model by the same counting style as the paper's Propositions 1–3:
//!
//! * a processor transmits at most one **distinct** packet per slot (it may
//!   drive several couplers, but with the same packet — the SIMD send rule);
//! * a processor reads at most one coupler per slot;
//! * a slot moves at most `g²` packets network-wide (one per coupler).

use pops_core::router::theorem2_slots;
use pops_network::PopsTopology;

/// Slots used by the one-to-all broadcast of §1: always exactly 1.
pub fn broadcast_slots(_topology: &PopsTopology) -> usize {
    1
}

/// Lower bound for broadcast: the data must move at least once.
pub fn broadcast_lower_bound(_topology: &PopsTopology) -> usize {
    1
}

/// Slots used by the scatter schedule: `n − 1` (the root keeps its own
/// piece; every other piece is a distinct packet and the root can emit only
/// one distinct packet per slot).
pub fn scatter_slots(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Lower bound for scatter, and the reason it is `n − 1`: all `n − 1`
/// foreign pieces start at the root, and per slot the root transmits at
/// most one distinct packet — however many couplers it drives, they all
/// carry the same signal.
pub fn scatter_lower_bound(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Slots used by the gather schedule: `n − 1` (the root reads at most one
/// coupler per slot).
pub fn gather_slots(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Lower bound for gather: `n − 1` packets must each be read by the root,
/// one read per slot.
pub fn gather_lower_bound(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Slots used by the all-gather schedule (`n` one-to-all rounds).
pub fn all_gather_slots(topology: &PopsTopology) -> usize {
    topology.n()
}

/// Lower bound for all-gather: every processor must receive `n − 1`
/// foreign packets at one packet per slot.
pub fn all_gather_lower_bound(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Slots used by the barrier (gather to the root, then a one-slot
/// broadcast of the release token): `(n − 1) + 1 = n`.
pub fn barrier_slots(topology: &PopsTopology) -> usize {
    topology.n()
}

/// Lower bound for a barrier: the root must *hear from* `n − 1` processors
/// (one read per slot) before anyone may be released.
pub fn barrier_lower_bound(topology: &PopsTopology) -> usize {
    topology.n() - 1
}

/// Slots used by a routed circular shift: [`theorem2_slots`], i.e. 1 when
/// `d = 1` and `2⌈d/g⌉` otherwise — a shift is a permutation and inherits
/// the paper's bound.
pub fn shift_slots(topology: &PopsTopology) -> usize {
    theorem2_slots(topology.d(), topology.g())
}

/// Slots used by the rotation-based all-to-all personalized exchange:
/// `n − 1` routed rotations.
pub fn all_to_all_slots(topology: &PopsTopology) -> usize {
    (topology.n() - 1) * theorem2_slots(topology.d(), topology.g())
}

/// Lower bound for all-to-all personalized exchange:
/// `max(n − 1, ⌈n(n−1)/g²⌉)`.
///
/// * receive bound — every processor must read `n − 1` distinct foreign
///   packets, one per slot;
/// * bandwidth bound — `n(n − 1)` packets must cross couplers and a slot
///   carries at most `g²` (the counting argument of Proposition 1, applied
///   to an (n−1)-relation).
pub fn all_to_all_lower_bound(topology: &PopsTopology) -> usize {
    let n = topology.n();
    let g2 = topology.g() * topology.g();
    let traffic = n * (n - 1);
    (n - 1).max(traffic.div_ceil(g2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<PopsTopology> {
        [
            (1, 1),
            (1, 8),
            (2, 2),
            (3, 3),
            (8, 2),
            (2, 8),
            (5, 3),
            (16, 16),
        ]
        .into_iter()
        .map(|(d, g)| PopsTopology::new(d, g))
        .collect()
    }

    #[test]
    fn costs_dominate_lower_bounds_everywhere() {
        for t in shapes() {
            assert!(broadcast_slots(&t) >= broadcast_lower_bound(&t), "{t}");
            assert!(scatter_slots(&t) >= scatter_lower_bound(&t), "{t}");
            assert!(gather_slots(&t) >= gather_lower_bound(&t), "{t}");
            assert!(all_gather_slots(&t) >= all_gather_lower_bound(&t), "{t}");
            assert!(barrier_slots(&t) >= barrier_lower_bound(&t), "{t}");
            if t.n() > 1 {
                assert!(all_to_all_slots(&t) >= all_to_all_lower_bound(&t), "{t}");
            }
        }
    }

    #[test]
    fn single_root_patterns_are_optimal() {
        for t in shapes() {
            assert_eq!(scatter_slots(&t), scatter_lower_bound(&t));
            assert_eq!(gather_slots(&t), gather_lower_bound(&t));
            assert_eq!(broadcast_slots(&t), broadcast_lower_bound(&t));
        }
    }

    #[test]
    fn all_gather_and_barrier_within_one_of_optimal() {
        for t in shapes() {
            assert_eq!(all_gather_slots(&t) - all_gather_lower_bound(&t), 1);
            assert_eq!(barrier_slots(&t) - barrier_lower_bound(&t), 1);
        }
    }

    #[test]
    fn all_to_all_bandwidth_bound_kicks_in_on_fat_groups() {
        // POPS(8, 2): n = 16, g² = 4, traffic = 240 → bandwidth bound 60
        // exceeds the receive bound 15.
        let t = PopsTopology::new(8, 2);
        assert_eq!(all_to_all_lower_bound(&t), 60);
        // POPS(2, 8): n = 16, g² = 64 → receive bound 15 dominates ⌈240/64⌉ = 4.
        let t = PopsTopology::new(2, 8);
        assert_eq!(all_to_all_lower_bound(&t), 15);
    }

    #[test]
    fn shift_cost_matches_theorem2() {
        assert_eq!(shift_slots(&PopsTopology::new(1, 9)), 1);
        assert_eq!(shift_slots(&PopsTopology::new(3, 3)), 2);
        assert_eq!(shift_slots(&PopsTopology::new(8, 2)), 8);
    }
}
