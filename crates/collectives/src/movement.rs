//! Packet-level schedule builders for the collectives.
//!
//! Each builder returns a machine-level [`Schedule`] (or [`SlotFrame`])
//! expressed in the packet-id conventions documented per function; every
//! schedule here is executed against the conflict-checking simulator by the
//! unit tests and by the [`crate::values`] layer. Slot counts equal the
//! [`crate::cost`] model exactly.

use pops_bipartite::ColorerKind;
use pops_core::router::{route, RoutingPlan};
use pops_network::patterns::{all_to_all_broadcast, one_to_all};
use pops_network::{PopsTopology, ProcessorId, Schedule, SlotFrame, Transmission};
use pops_permutation::families::rotation;

/// One-slot **multicast**: `speaker` sends `packet` to exactly the
/// processors in `targets` (the one-to-all of §1, but reading only where
/// asked — the optical broadcast still reaches whole groups; non-targets
/// simply do not read).
///
/// Only the couplers towards groups containing a target are driven.
///
/// # Panics
///
/// Panics if `speaker` or any target is out of range.
pub fn multicast(
    topology: &PopsTopology,
    speaker: ProcessorId,
    packet: usize,
    targets: &[ProcessorId],
) -> SlotFrame {
    let src_group = topology.group_of(speaker);
    let mut per_group: Vec<Vec<ProcessorId>> = vec![Vec::new(); topology.g()];
    for &t in targets {
        per_group[topology.group_of(t)].push(t);
    }
    let transmissions = per_group
        .into_iter()
        .enumerate()
        .filter(|(_, receivers)| !receivers.is_empty())
        .map(|(dest_group, receivers)| Transmission {
            sender: speaker,
            coupler: topology.coupler_id(dest_group, src_group),
            packet,
            receivers: receivers.into(),
        })
        .collect();
    SlotFrame { transmissions }
}

/// **Scatter** from `root`: packet `p` (initially held by the root for all
/// `p`) is delivered to processor `p`, one slot per foreign piece, in
/// processor order. The root's own piece never moves.
///
/// Slots: `n − 1` — optimal, because the root can transmit at most one
/// *distinct* packet per slot ([`crate::cost::scatter_lower_bound`]).
///
/// Packet-id convention: packet `p` is the piece destined for processor
/// `p`; the initial simulator placement is "all packets at `root`".
///
/// # Panics
///
/// Panics if `root >= n`.
pub fn scatter(topology: &PopsTopology, root: ProcessorId) -> Schedule {
    assert!(root < topology.n(), "root {root} out of range");
    let root_group = topology.group_of(root);
    let slots = (0..topology.n())
        .filter(|&p| p != root)
        .map(|p| SlotFrame {
            transmissions: vec![Transmission::unicast(
                root,
                topology.coupler_id(topology.group_of(p), root_group),
                p,
                p,
            )],
        })
        .collect();
    Schedule { slots }
}

/// **Gather** to `root`: packet `p` (initially at processor `p`) is
/// delivered to the root, one slot per foreign piece, in processor order.
///
/// Slots: `n − 1` — optimal, because the root reads at most one coupler per
/// slot ([`crate::cost::gather_lower_bound`]).
///
/// # Panics
///
/// Panics if `root >= n`.
pub fn gather(topology: &PopsTopology, root: ProcessorId) -> Schedule {
    assert!(root < topology.n(), "root {root} out of range");
    let root_group = topology.group_of(root);
    let slots = (0..topology.n())
        .filter(|&p| p != root)
        .map(|p| SlotFrame {
            transmissions: vec![Transmission::unicast(
                p,
                topology.coupler_id(root_group, topology.group_of(p)),
                p,
                root,
            )],
        })
        .collect();
    Schedule { slots }
}

/// **All-gather** (all-to-all broadcast): every processor ends up holding
/// every packet. `n` one-to-all rounds, one speaker per slot.
///
/// Slots: `n`, within one of the `n − 1` receive lower bound.
pub fn all_gather(topology: &PopsTopology) -> Schedule {
    all_to_all_broadcast(topology)
}

/// **Barrier** through `root`: every processor reports to the root (the
/// gather), then the root broadcasts the release token (its own packet) in
/// one final slot. No processor can observe the token before every
/// processor has reported — the synchronization property.
///
/// Slots: `n`, within one of the `n − 1` hear-from-everyone lower bound.
///
/// # Panics
///
/// Panics if `root >= n`.
pub fn barrier(topology: &PopsTopology, root: ProcessorId) -> Schedule {
    let mut schedule = gather(topology, root);
    schedule.slots.push(one_to_all(topology, root, root));
    schedule
}

/// Routed **circular shift** by `amount`: the permutation
/// `i ↦ (i + amount) mod n`, routed by the paper's Theorem-2 router.
///
/// Slots: 1 when `d = 1`, `2⌈d/g⌉` otherwise — a shift is a permutation,
/// so it inherits the paper's guarantee (and, being a derangement whenever
/// `amount ≢ 0 (mod n)`, also its Proposition-1 lower bound of `⌈d/g⌉`).
///
/// # Panics
///
/// Panics if `amount % n == 0` would make this the identity **and**
/// `n > 1`; shifting by zero is a no-op the caller should elide (the
/// Theorem-2 schedule would still spend `2⌈d/g⌉` slots moving nothing).
pub fn circular_shift(topology: &PopsTopology, amount: usize, colorer: ColorerKind) -> RoutingPlan {
    let n = topology.n();
    assert!(
        n == 1 || !amount.is_multiple_of(n),
        "zero shift is the identity; elide it instead of routing it"
    );
    route(&rotation(n, amount % n), *topology, colorer)
}

/// The rotation-based **all-to-all personalized exchange**: `n − 1` routed
/// rounds; round `k` (for `k = 1..n`) moves the piece addressed from `i`
/// to `(i + k) mod n` for every `i` simultaneously (a circular shift).
///
/// Total slots: `(n − 1) · theorem2_slots(d, g)` — compare
/// [`crate::cost::all_to_all_lower_bound`]. The alternative formulation as
/// one big (n−1)-relation through `pops_core::h_relation` costs the same
/// total; experiment T11 compares both.
#[derive(Debug, Clone)]
pub struct AllToAllPlan {
    /// Round `k − 1` routes the shift-by-`k` permutation.
    pub rounds: Vec<RoutingPlan>,
}

impl AllToAllPlan {
    /// Total slots across all rounds.
    pub fn total_slots(&self) -> usize {
        self.rounds.iter().map(|r| r.schedule.slot_count()).sum()
    }
}

/// Builds the rotation-based all-to-all personalized exchange plan.
///
/// Packet-id convention *per round* `k`: packet `i` is the piece processor
/// `i` addresses to `(i + k) mod n`; rounds use disjoint batches, so each
/// round is validated on a fresh simulator (same convention as
/// `pops_core::h_relation`).
pub fn all_to_all_personalized(topology: &PopsTopology, colorer: ColorerKind) -> AllToAllPlan {
    let n = topology.n();
    let rounds = (1..n)
        .map(|k| circular_shift(topology, k, colorer))
        .collect();
    AllToAllPlan { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use pops_network::Simulator;

    #[test]
    fn scatter_delivers_each_piece_from_the_root() {
        let t = PopsTopology::new(3, 3);
        let schedule = scatter(&t, 4);
        assert_eq!(schedule.slot_count(), cost::scatter_slots(&t));
        // All packets start at the root.
        let mut sim = Simulator::with_placement(t, &vec![4; t.n()]);
        sim.execute_schedule(&schedule).unwrap();
        let identity: Vec<usize> = (0..t.n()).collect();
        sim.verify_delivery(&identity).unwrap();
    }

    #[test]
    fn scatter_from_every_root_on_asymmetric_shapes() {
        for (d, g) in [(1, 5), (4, 2), (2, 4)] {
            let t = PopsTopology::new(d, g);
            for root in 0..t.n() {
                let schedule = scatter(&t, root);
                let mut sim = Simulator::with_placement(t, &vec![root; t.n()]);
                sim.execute_schedule(&schedule).unwrap();
                sim.verify_delivery(&(0..t.n()).collect::<Vec<_>>())
                    .unwrap();
            }
        }
    }

    #[test]
    fn gather_collects_everything_at_the_root() {
        let t = PopsTopology::new(2, 4);
        let root = 5;
        let schedule = gather(&t, root);
        assert_eq!(schedule.slot_count(), cost::gather_slots(&t));
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&schedule).unwrap();
        for p in 0..t.n() {
            assert_eq!(sim.holders_of(p), &[root], "packet {p}");
        }
        assert_eq!(sim.packets_at(root).len(), t.n());
    }

    #[test]
    fn multicast_reads_only_targets_and_drives_only_needed_couplers() {
        let t = PopsTopology::new(3, 3);
        let frame = multicast(&t, 0, 0, &[2, 7]);
        // Targets live in groups 0 and 2 → exactly two couplers driven.
        assert_eq!(frame.couplers_used(), 2);
        assert_eq!(frame.deliveries(), 2);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_frame(&frame).unwrap();
        let mut holders = sim.holders_of(0).to_vec();
        holders.sort_unstable();
        assert_eq!(holders, vec![2, 7]);
    }

    #[test]
    fn multicast_to_nobody_is_an_empty_frame() {
        let t = PopsTopology::new(2, 2);
        let frame = multicast(&t, 1, 1, &[]);
        assert_eq!(frame.couplers_used(), 0);
    }

    #[test]
    fn barrier_token_arrives_only_after_everyone_reported() {
        let t = PopsTopology::new(2, 3);
        let root = 0;
        let schedule = barrier(&t, root);
        assert_eq!(schedule.slot_count(), cost::barrier_slots(&t));
        let mut sim = Simulator::with_unit_packets(t);
        // Execute all but the final broadcast: the root must now hold all
        // packets, and nobody else holds the token.
        for frame in &schedule.slots[..schedule.slots.len() - 1] {
            sim.execute_frame(frame).unwrap();
        }
        assert_eq!(sim.packets_at(root).len(), t.n());
        // Final slot: the token (packet `root`) reaches everyone.
        sim.execute_frame(schedule.slots.last().unwrap()).unwrap();
        assert_eq!(sim.holders_of(root).len(), t.n());
    }

    #[test]
    fn circular_shift_routes_and_delivers() {
        let t = PopsTopology::new(3, 2);
        let plan = circular_shift(&t, 2, ColorerKind::default());
        assert_eq!(plan.schedule.slot_count(), cost::shift_slots(&t));
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&plan.schedule).unwrap();
        let dest: Vec<usize> = (0..t.n()).map(|i| (i + 2) % t.n()).collect();
        sim.verify_delivery(&dest).unwrap();
    }

    #[test]
    #[should_panic(expected = "zero shift")]
    fn zero_shift_is_rejected() {
        let t = PopsTopology::new(2, 2);
        let _ = circular_shift(&t, 4, ColorerKind::default());
    }

    #[test]
    fn all_to_all_plan_covers_every_ordered_pair() {
        let t = PopsTopology::new(2, 3);
        let n = t.n();
        let plan = all_to_all_personalized(&t, ColorerKind::default());
        assert_eq!(plan.rounds.len(), n - 1);
        assert_eq!(plan.total_slots(), cost::all_to_all_slots(&t));
        // Round k moves i → i + k; across rounds every ordered pair (i, j)
        // with i ≠ j is served exactly once.
        let mut served = vec![vec![false; n]; n];
        for (idx, round) in plan.rounds.iter().enumerate() {
            let k = idx + 1;
            let mut sim = Simulator::with_unit_packets(t);
            sim.execute_schedule(&round.schedule).unwrap();
            let dest: Vec<usize> = (0..n).map(|i| (i + k) % n).collect();
            sim.verify_delivery(&dest).unwrap();
            for (i, &j) in dest.iter().enumerate() {
                assert!(!served[i][j], "pair ({i}, {j}) served twice");
                served[i][j] = true;
            }
        }
        for (i, row) in served.iter().enumerate() {
            for (j, &hit) in row.iter().enumerate() {
                assert_eq!(hit, i != j, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn all_gather_slot_count_matches_cost() {
        let t = PopsTopology::new(2, 2);
        assert_eq!(all_gather(&t).slot_count(), cost::all_gather_slots(&t));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scatter_rejects_bad_root() {
        let t = PopsTopology::new(2, 2);
        let _ = scatter(&t, 99);
    }
}
