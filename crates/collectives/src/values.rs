//! Typed-payload collectives: the [`CollectiveEngine`].
//!
//! Every operation first builds its packet-level schedule
//! ([`crate::movement`]), **executes it on the conflict-checking POPS
//! simulator**, verifies the final packet placement, and only then applies
//! the corresponding movement to the caller's values. A machine-model
//! violation therefore surfaces as a [`CollectiveError`] instead of
//! silently corrupting data — the same referee discipline as
//! `pops_core::verify` (and like there, the error paths are safety nets the
//! correct builders never trigger).

use std::fmt;

use pops_bipartite::ColorerKind;
use pops_network::{DeliveryError, PopsTopology, ProcessorId, Schedule, SimError, Simulator};

use crate::movement;

/// A machine-model failure while executing a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// The simulator rejected a slot.
    Machine {
        /// Index of the offending slot within the collective's schedule.
        slot: usize,
        /// The violation.
        error: SimError,
    },
    /// The schedule executed but left a packet somewhere unexpected.
    Delivery(DeliveryError),
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::Machine { slot, error } => {
                write!(f, "machine violation in slot {slot}: {error}")
            }
            CollectiveError::Delivery(e) => write!(f, "misdelivery: {e}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<DeliveryError> for CollectiveError {
    fn from(e: DeliveryError) -> Self {
        CollectiveError::Delivery(e)
    }
}

/// Executes collectives with typed payloads on a POPS(d, g) machine,
/// accumulating the slot bill.
#[derive(Debug, Clone)]
pub struct CollectiveEngine {
    topology: PopsTopology,
    colorer: ColorerKind,
    slots_used: usize,
}

impl CollectiveEngine {
    /// An engine on `topology` with the default 1-factorization engine.
    pub fn new(topology: PopsTopology) -> Self {
        Self::with_colorer(topology, ColorerKind::default())
    }

    /// An engine with an explicit 1-factorization engine (slot counts are
    /// engine-independent; this only affects route-computation time).
    pub fn with_colorer(topology: PopsTopology, colorer: ColorerKind) -> Self {
        Self {
            topology,
            colorer,
            slots_used: 0,
        }
    }

    /// The machine's topology.
    pub fn topology(&self) -> &PopsTopology {
        &self.topology
    }

    /// Total slots consumed by the collectives executed so far.
    pub fn slots_used(&self) -> usize {
        self.slots_used
    }

    fn run(&mut self, sim: &mut Simulator, schedule: &Schedule) -> Result<(), CollectiveError> {
        sim.execute_schedule(schedule)
            .map_err(|(slot, error)| CollectiveError::Machine { slot, error })?;
        self.slots_used += schedule.slot_count();
        Ok(())
    }

    /// **Broadcast**: everyone receives the root's `value`. 1 slot.
    pub fn broadcast<T: Clone>(
        &mut self,
        root: ProcessorId,
        value: T,
    ) -> Result<Vec<T>, CollectiveError> {
        let frame = pops_network::patterns::one_to_all(&self.topology, root, root);
        let schedule = Schedule { slots: vec![frame] };
        let mut sim = Simulator::with_unit_packets(self.topology);
        self.run(&mut sim, &schedule)?;
        let n = self.topology.n();
        if sim.holders_of(root).len() != n {
            return Err(DeliveryError::Misplaced {
                packet: root,
                expected: root,
                actual: sim.holders_of(root).to_vec(),
            }
            .into());
        }
        Ok(vec![value; n])
    }

    /// **Multicast**: exactly the processors in `targets` receive the
    /// root's `value` (`None` elsewhere). 1 slot.
    pub fn multicast<T: Clone>(
        &mut self,
        root: ProcessorId,
        value: T,
        targets: &[ProcessorId],
    ) -> Result<Vec<Option<T>>, CollectiveError> {
        let frame = movement::multicast(&self.topology, root, root, targets);
        let schedule = Schedule { slots: vec![frame] };
        let mut sim = Simulator::with_unit_packets(self.topology);
        if !targets.is_empty() {
            self.run(&mut sim, &schedule)?;
        }
        let mut out = vec![None; self.topology.n()];
        for &t in targets {
            out[t] = Some(value.clone());
        }
        Ok(out)
    }

    /// **Scatter**: the root holds `pieces` (one per processor); processor
    /// `p` receives `pieces[p]`. `n − 1` slots (optimal).
    ///
    /// # Panics
    ///
    /// Panics if `pieces.len() != n`.
    pub fn scatter<T: Clone>(
        &mut self,
        root: ProcessorId,
        pieces: Vec<T>,
    ) -> Result<Vec<T>, CollectiveError> {
        let n = self.topology.n();
        assert_eq!(pieces.len(), n, "one piece per processor");
        let schedule = movement::scatter(&self.topology, root);
        let mut sim = Simulator::with_placement(self.topology, &vec![root; n]);
        self.run(&mut sim, &schedule)?;
        sim.verify_delivery(&(0..n).collect::<Vec<_>>())?;
        Ok(pieces)
    }

    /// **Gather**: processor `p` contributes `contributions[p]`; the root
    /// ends up with all of them, in processor order. `n − 1` slots
    /// (optimal).
    ///
    /// # Panics
    ///
    /// Panics if `contributions.len() != n`.
    pub fn gather<T: Clone>(
        &mut self,
        root: ProcessorId,
        contributions: Vec<T>,
    ) -> Result<Vec<T>, CollectiveError> {
        let n = self.topology.n();
        assert_eq!(contributions.len(), n, "one contribution per processor");
        let schedule = movement::gather(&self.topology, root);
        let mut sim = Simulator::with_unit_packets(self.topology);
        self.run(&mut sim, &schedule)?;
        for p in 0..n {
            if sim.holders_of(p) != [root] {
                return Err(DeliveryError::Misplaced {
                    packet: p,
                    expected: root,
                    actual: sim.holders_of(p).to_vec(),
                }
                .into());
            }
        }
        Ok(contributions)
    }

    /// **All-gather**: everyone ends up with every contribution, in
    /// processor order. `n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `contributions.len() != n`.
    pub fn all_gather<T: Clone>(
        &mut self,
        contributions: Vec<T>,
    ) -> Result<Vec<Vec<T>>, CollectiveError> {
        let n = self.topology.n();
        assert_eq!(contributions.len(), n, "one contribution per processor");
        let schedule = movement::all_gather(&self.topology);
        let mut sim = Simulator::with_unit_packets(self.topology);
        self.run(&mut sim, &schedule)?;
        for p in 0..n {
            if sim.holders_of(p).len() != n {
                return Err(DeliveryError::Misplaced {
                    packet: p,
                    expected: p,
                    actual: sim.holders_of(p).to_vec(),
                }
                .into());
            }
        }
        Ok(vec![contributions; n])
    }

    /// **All-to-all personalized exchange**: `sends[i][j]` is the piece
    /// processor `i` addresses to processor `j`; the result's `[j][i]` is
    /// the piece `j` received from `i` (i.e. the transpose). `(n − 1) ·
    /// theorem2_slots(d, g)` slots via routed rotations, each round
    /// verified on the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `sends` is not an `n × n` matrix.
    pub fn all_to_all<T: Clone>(
        &mut self,
        sends: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CollectiveError> {
        let n = self.topology.n();
        assert_eq!(sends.len(), n, "one send row per processor");
        for (i, row) in sends.iter().enumerate() {
            assert_eq!(row.len(), n, "send row {i} must have n entries");
        }
        let plan = movement::all_to_all_personalized(&self.topology, self.colorer);
        for (idx, round) in plan.rounds.iter().enumerate() {
            let k = idx + 1;
            let mut sim = Simulator::with_unit_packets(self.topology);
            self.run(&mut sim, &round.schedule)?;
            let dest: Vec<usize> = (0..n).map(|i| (i + k) % n).collect();
            sim.verify_delivery(&dest)?;
        }
        // Verified: round k moved piece i → i + k for every i. Assemble the
        // receive matrix: received[j][i] = sends[i][j].
        let mut received: Vec<Vec<T>> = vec![Vec::with_capacity(n); n];
        for row in sends.iter() {
            for (j, piece) in row.iter().enumerate() {
                received[j].push(piece.clone());
            }
        }
        Ok(received)
    }

    /// Routed **circular shift**: the result's entry `(i + amount) mod n`
    /// is the input's entry `i`. `theorem2_slots(d, g)` slots; a zero shift
    /// is a free no-op.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    pub fn shift<T: Clone>(
        &mut self,
        values: Vec<T>,
        amount: usize,
    ) -> Result<Vec<T>, CollectiveError> {
        let n = self.topology.n();
        assert_eq!(values.len(), n, "one value per processor");
        if n == 1 || amount.is_multiple_of(n) {
            return Ok(values);
        }
        let plan = movement::circular_shift(&self.topology, amount, self.colorer);
        let mut sim = Simulator::with_unit_packets(self.topology);
        self.run(&mut sim, &plan.schedule)?;
        let dest: Vec<usize> = (0..n).map(|i| (i + amount) % n).collect();
        sim.verify_delivery(&dest)?;
        let mut out = values.clone();
        for (i, v) in values.into_iter().enumerate() {
            out[(i + amount) % n] = v;
        }
        Ok(out)
    }

    /// **Reduce** to `root`: folds every processor's contribution with
    /// `op` at the root (left fold in processor order — use an
    /// associative, commutative `op` if order must not matter). Built on
    /// the gather, so `n − 1` slots — receive-bound optimal for a single
    /// root.
    ///
    /// For the *all*-reduce (every processor wants the total), see the
    /// tree-based `pops_algorithms::reduce::data_sum`, which pays
    /// `log₂(n) · theorem2_slots(d, g)` instead; the crossover between the
    /// two is exactly `n − 1` vs that product.
    ///
    /// # Panics
    ///
    /// Panics if `contributions.len() != n` or `n == 0`.
    pub fn reduce<T: Clone>(
        &mut self,
        root: ProcessorId,
        contributions: Vec<T>,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<T, CollectiveError> {
        let gathered = self.gather(root, contributions)?;
        let mut it = gathered.iter();
        let first = it.next().expect("n >= 1").clone();
        Ok(it.fold(first, |acc, x| op(&acc, x)))
    }

    /// **Reduce-scatter**: processor `i` contributes `sends[i]` (one value
    /// addressed to each processor); processor `j` ends with the fold of
    /// `sends[0][j], …, sends[n−1][j]`. Built on the all-to-all, so
    /// `(n − 1) · theorem2_slots(d, g)` slots.
    ///
    /// # Panics
    ///
    /// Panics if `sends` is not `n × n`.
    pub fn reduce_scatter<T: Clone>(
        &mut self,
        sends: Vec<Vec<T>>,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Vec<T>, CollectiveError> {
        let received = self.all_to_all(sends)?;
        Ok(received
            .into_iter()
            .map(|column| {
                let mut it = column.into_iter();
                let first = it.next().expect("n >= 1");
                it.fold(first, |acc, x| op(&acc, &x))
            })
            .collect())
    }

    /// **Barrier** through `root`: returns once every processor has
    /// reported and the release token has reached everyone. `n` slots.
    pub fn barrier(&mut self, root: ProcessorId) -> Result<(), CollectiveError> {
        let schedule = movement::barrier(&self.topology, root);
        let mut sim = Simulator::with_unit_packets(self.topology);
        self.run(&mut sim, &schedule)?;
        let n = self.topology.n();
        if sim.holders_of(root).len() != n {
            return Err(DeliveryError::Misplaced {
                packet: root,
                expected: root,
                actual: sim.holders_of(root).to_vec(),
            }
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;

    #[test]
    fn broadcast_replicates_and_bills_one_slot() {
        let mut eng = CollectiveEngine::new(PopsTopology::new(3, 3));
        let got = eng.broadcast(4, "hello").unwrap();
        assert_eq!(got, vec!["hello"; 9]);
        assert_eq!(eng.slots_used(), 1);
    }

    #[test]
    fn scatter_distributes_pieces() {
        let t = PopsTopology::new(2, 3);
        let mut eng = CollectiveEngine::new(t);
        let pieces: Vec<u32> = (0..6).map(|i| i * 10).collect();
        let got = eng.scatter(1, pieces.clone()).unwrap();
        assert_eq!(got, pieces);
        assert_eq!(eng.slots_used(), cost::scatter_slots(&t));
    }

    #[test]
    fn gather_collects_in_processor_order() {
        let t = PopsTopology::new(2, 2);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.gather(3, vec!["a", "b", "c", "d"]).unwrap();
        assert_eq!(got, vec!["a", "b", "c", "d"]);
        assert_eq!(eng.slots_used(), cost::gather_slots(&t));
    }

    #[test]
    fn all_gather_gives_everyone_everything() {
        let t = PopsTopology::new(2, 2);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.all_gather(vec![1u8, 2, 3, 4]).unwrap();
        assert_eq!(got.len(), 4);
        for copy in got {
            assert_eq!(copy, vec![1, 2, 3, 4]);
        }
        assert_eq!(eng.slots_used(), cost::all_gather_slots(&t));
    }

    #[test]
    fn all_to_all_transposes_the_send_matrix() {
        let t = PopsTopology::new(2, 2);
        let n = t.n();
        let mut eng = CollectiveEngine::new(t);
        let sends: Vec<Vec<(usize, usize)>> =
            (0..n).map(|i| (0..n).map(|j| (i, j)).collect()).collect();
        let got = eng.all_to_all(sends).unwrap();
        for (j, row) in got.iter().enumerate() {
            for (i, &piece) in row.iter().enumerate() {
                assert_eq!(piece, (i, j), "piece from {i} to {j}");
            }
        }
        assert_eq!(eng.slots_used(), cost::all_to_all_slots(&t));
    }

    #[test]
    fn shift_rotates_values() {
        let t = PopsTopology::new(3, 2);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.shift(vec![0, 1, 2, 3, 4, 5], 2).unwrap();
        assert_eq!(got, vec![4, 5, 0, 1, 2, 3]);
        assert_eq!(eng.slots_used(), cost::shift_slots(&t));
    }

    #[test]
    fn zero_shift_is_free() {
        let t = PopsTopology::new(2, 2);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.shift(vec![9, 8, 7, 6], 4).unwrap();
        assert_eq!(got, vec![9, 8, 7, 6]);
        assert_eq!(eng.slots_used(), 0);
    }

    #[test]
    fn multicast_hits_exactly_the_targets() {
        let t = PopsTopology::new(3, 3);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.multicast(0, 7u32, &[2, 5, 8]).unwrap();
        for (p, v) in got.iter().enumerate() {
            assert_eq!(v.is_some(), p == 2 || p == 5 || p == 8, "processor {p}");
        }
        assert_eq!(eng.slots_used(), 1);
    }

    #[test]
    fn empty_multicast_is_free() {
        let t = PopsTopology::new(2, 2);
        let mut eng = CollectiveEngine::new(t);
        let got = eng.multicast(0, 7u32, &[]).unwrap();
        assert!(got.iter().all(Option::is_none));
        assert_eq!(eng.slots_used(), 0);
    }

    #[test]
    fn reduce_folds_in_processor_order() {
        let t = PopsTopology::new(2, 3);
        let mut eng = CollectiveEngine::new(t);
        let total = eng
            .reduce(4, vec![1u64, 2, 3, 4, 5, 6], |a, b| a + b)
            .unwrap();
        assert_eq!(total, 21);
        assert_eq!(eng.slots_used(), cost::gather_slots(&t));
        // Non-commutative op exposes the documented left-fold order.
        let mut eng = CollectiveEngine::new(t);
        let concat = eng
            .reduce(0, vec!["a", "b", "c", "d", "e", "f"], |x, y| {
                Box::leak(format!("{x}{y}").into_boxed_str())
            })
            .unwrap();
        assert_eq!(concat, "abcdef");
    }

    #[test]
    fn reduce_scatter_folds_columns() {
        let t = PopsTopology::new(2, 2);
        let n = t.n();
        let mut eng = CollectiveEngine::new(t);
        // sends[i][j] = 10^i placed in column j → column sum 1111.
        let sends: Vec<Vec<u64>> = (0..n).map(|i| vec![10u64.pow(i as u32); n]).collect();
        let out = eng.reduce_scatter(sends, |a, b| a + b).unwrap();
        assert_eq!(out, vec![1111; n]);
        assert_eq!(eng.slots_used(), cost::all_to_all_slots(&t));
    }

    #[test]
    fn reduce_on_single_processor_is_local() {
        let t = PopsTopology::new(1, 1);
        let mut eng = CollectiveEngine::new(t);
        let total = eng.reduce(0, vec![42u32], |a, b| a + b).unwrap();
        assert_eq!(total, 42);
        assert_eq!(eng.slots_used(), 0);
    }

    #[test]
    fn barrier_completes_and_bills_n_slots() {
        let t = PopsTopology::new(2, 3);
        let mut eng = CollectiveEngine::new(t);
        eng.barrier(2).unwrap();
        assert_eq!(eng.slots_used(), cost::barrier_slots(&t));
    }

    #[test]
    fn slot_bill_accumulates_across_collectives() {
        let t = PopsTopology::new(2, 2);
        let mut eng = CollectiveEngine::new(t);
        eng.broadcast(0, 1u8).unwrap();
        eng.barrier(0).unwrap();
        let expected = cost::broadcast_slots(&t) + cost::barrier_slots(&t);
        assert_eq!(eng.slots_used(), expected);
    }

    #[test]
    #[should_panic(expected = "one piece per processor")]
    fn scatter_checks_piece_count() {
        let mut eng = CollectiveEngine::new(PopsTopology::new(2, 2));
        let _ = eng.scatter(0, vec![1u8]);
    }

    #[test]
    fn works_on_pops_1_n_and_pops_n_1() {
        for t in [PopsTopology::new(1, 6), PopsTopology::new(6, 1)] {
            let mut eng = CollectiveEngine::new(t);
            let all = eng.all_gather((0..6).collect::<Vec<_>>()).unwrap();
            assert_eq!(all[3], (0..6).collect::<Vec<_>>());
            let shifted = eng.shift((0..6).collect::<Vec<_>>(), 1).unwrap();
            assert_eq!(shifted, vec![5, 0, 1, 2, 3, 4]);
        }
    }
}
