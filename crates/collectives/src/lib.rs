//! Collective communication patterns on the POPS(d, g) network.
//!
//! §1 of Mei & Rizzi cites Gravenstreter & Melhem, *Realizing Common
//! Communication Patterns in Partitioned Optical Passive Stars Networks*
//! (IEEE ToC 1998), as the motivation for studying data movement on POPS.
//! This crate rebuilds that pattern library on top of the paper's general
//! permutation router: every collective below is
//!
//! 1. expressed as an executable machine-level [`Schedule`] (packet layer,
//!    [`movement`]),
//! 2. paired with a closed-form **slot-cost model** and a **lower bound**
//!    ([`cost`]) so optimality (or the gap) is checkable per pattern, and
//! 3. lifted to typed payloads ([`values`]) where every data movement is
//!    first executed on the conflict-checking simulator of `pops-network`
//!    before any value moves — correctness is demonstrated on the machine
//!    model, never assumed.
//!
//! | Collective | Slots | Lower bound | Optimal? |
//! |---|---|---|---|
//! | broadcast | 1 | 1 | yes |
//! | multicast | 1 | 1 | yes |
//! | scatter | n − 1 | n − 1 | yes |
//! | gather | n − 1 | n − 1 | yes |
//! | all-gather | n | n − 1 | within +1 |
//! | barrier | n | n − 1 | within +1 |
//! | circular shift | 2⌈d/g⌉ (1 if d = 1) | 1 | paper's factor-2 band |
//! | all-to-all personalized | (n−1)·2⌈d/g⌉ | max(n−1, ⌈n(n−1)/g²⌉) | see [`cost`] |
//! | reduce (to root) | n − 1 | n − 1 | yes (receive bound) |
//! | reduce-scatter | (n−1)·2⌈d/g⌉ | as all-to-all | see [`cost`] |
//!
//! The shift and all-to-all rows inherit the paper's Theorem-2 guarantee;
//! the single-root patterns are limited by the §1 machine model itself
//! (one distinct packet sent, one packet received, per processor per slot),
//! which is where their `n − 1` bounds come from.
//!
//! [`Schedule`]: pops_network::Schedule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod movement;
pub mod values;

pub use movement::{
    all_gather, all_to_all_personalized, barrier, circular_shift, gather, multicast, scatter,
    AllToAllPlan,
};
pub use values::{CollectiveEngine, CollectiveError};
