//! The unified **routing engine**: every routing entry point of this
//! reproduction behind one trait, with reusable scratch arenas so that
//! repeated routing on one topology performs no per-call heap allocation
//! on the coloring/fair-distribution hot path.
//!
//! # Why an engine
//!
//! The free functions ([`crate::router::route`],
//! [`crate::single_slot::route_single_slot`],
//! [`crate::h_relation::route_h_relation`],
//! [`crate::fault_routing::route_with_faults`], and the two baselines in
//! `pops-baselines`) each rebuild their working state — the routing list
//! system, the Theorem-1 demand multigraph, its padding, the edge-colouring
//! tables, the fair-distribution arrays — on every call. For one-off
//! queries that is fine; for production-shaped workloads ("one topology,
//! millions of permutations") it is pure allocator churn. A
//! [`RoutingEngine`] owns one [`PopsTopology`] plus all of that state as
//! flat preallocated arenas, sized once, reused forever:
//!
//! ```
//! use pops_core::engine::{Router, RoutingEngine, RoutingRequest};
//! use pops_network::PopsTopology;
//! use pops_permutation::families::vector_reversal;
//!
//! let mut engine = RoutingEngine::new(PopsTopology::new(4, 4));
//! let pi = vector_reversal(16);
//! // First call warms the arenas; subsequent plans reuse them.
//! for _ in 0..3 {
//!     let outcome = engine.plan(&RoutingRequest::Theorem2 { pi: &pi }).unwrap();
//!     assert_eq!(outcome.schedule().slot_count(), 2);
//! }
//! ```
//!
//! # The zero-allocation hot path
//!
//! With the default [`ColorerKind::AlternatingPath`] colourer the entire
//! Theorem-2 construction — list system, Theorem-1 padding, proper edge
//! colouring, fair distribution — runs in the engine's arenas: after the
//! first (warming) call, [`RoutingEngine::fair_distribution_targets`]
//! performs **zero** heap allocations (asserted by the allocation-counting
//! integration test `engine_allocations.rs`). The alternating-path
//! colourer is an allocation-free port of
//! [`pops_bipartite::coloring::alternating`] and produces byte-identical
//! colourings; the Koenig/Euler-split engines fall back to the allocating
//! legacy pipeline (identical output to the pre-engine free functions).
//! Schedule emission necessarily allocates its *output* (the
//! [`Schedule`] handed to the caller); the construction state does not.
//!
//! # One trait, six routers
//!
//! [`Router::plan`] dispatches a [`RoutingRequest`] to the matching path:
//!
//! | request | legacy entry point | result |
//! |---|---|---|
//! | [`RoutingRequest::Theorem2`] | [`crate::router::route`] | [`RoutingOutcome::Plan`] |
//! | [`RoutingRequest::SingleSlot`] | [`crate::single_slot::route_single_slot`] | [`RoutingOutcome::Schedule`] |
//! | [`RoutingRequest::HRelation`] | [`crate::h_relation::route_h_relation`] | [`RoutingOutcome::HRelation`] |
//! | [`RoutingRequest::WithFaults`] | [`crate::fault_routing::route_with_faults`] | [`RoutingOutcome::FaultTolerant`] |
//! | [`RoutingRequest::DirectBaseline`] | `pops_baselines::route_direct` | [`RoutingOutcome::Schedule`] |
//! | [`RoutingRequest::StructuredBaseline`] | `pops_baselines::route_structured` | [`RoutingOutcome::Schedule`] |
//!
//! All legacy free functions are now thin wrappers over a fresh engine, so
//! engine-produced schedules are byte-identical to the historical output —
//! the `engine_equivalence.rs` integration suite sweeps `(d, g)` shapes and
//! permutation families asserting exactly that, warm engine included.

use pops_bipartite::coloring::bitset;
use pops_bipartite::BipartiteMultigraph;
use pops_bipartite::ColorerKind;
use pops_network::fault::FaultSet;
use pops_network::{PopsTopology, Schedule, SlotFrame, Transmission};
use pops_permutation::{PartialPermutation, Permutation};

use crate::fair_distribution::FairDistribution;
use crate::fault_routing::{route_with_faults, FaultRouting, FaultRoutingError};
use crate::h_relation::{HRelation, HRelationRouting};
use crate::list_system::ListSystem;
use crate::router::{theorem2_slots, RoutingPlan};

use std::fmt;

const NONE: usize = usize::MAX;

/// A routing query against a fixed topology.
#[derive(Debug, Clone, Copy)]
pub enum RoutingRequest<'a> {
    /// Route an arbitrary permutation with the paper's Theorem-2
    /// construction (1 slot for `d = 1`, else `2⌈d/g⌉`).
    Theorem2 {
        /// The permutation to route.
        pi: &'a Permutation,
    },
    /// Route in a single slot if the Gravenstreter–Melhem demand condition
    /// holds; fails with [`RoutingError::NotSingleSlotRoutable`] otherwise.
    SingleSlot {
        /// The permutation to route.
        pi: &'a Permutation,
    },
    /// Route an h-relation by König decomposition into `h` phases.
    HRelation {
        /// The relation to route.
        relation: &'a HRelation,
    },
    /// Route a permutation around failed couplers with the greedy
    /// distance-decreasing multi-hop router.
    WithFaults {
        /// The permutation to route.
        pi: &'a Permutation,
        /// The failed couplers.
        faults: &'a FaultSet,
    },
    /// The optimal direct (single-hop) baseline: slot count equals the
    /// maximum moving-demand entry.
    DirectBaseline {
        /// The permutation to route.
        pi: &'a Permutation,
    },
    /// The Sahni-style structured baseline for group-uniform permutations;
    /// fails with [`RoutingError::NotGroupUniform`] on other inputs.
    StructuredBaseline {
        /// The permutation to route.
        pi: &'a Permutation,
    },
}

/// What a [`Router::plan`] call produced.
#[derive(Debug, Clone)]
pub enum RoutingOutcome {
    /// A full Theorem-2 routing plan (schedule + construction artefacts).
    Plan(RoutingPlan),
    /// A bare schedule (single-slot and baseline paths).
    Schedule(Schedule),
    /// An h-relation routing (phases + concatenated schedule).
    HRelation(HRelationRouting),
    /// A fault-tolerant routing (schedule + per-packet hop counts).
    FaultTolerant(FaultRouting),
}

impl RoutingOutcome {
    /// The executable schedule of the outcome, whatever the path.
    pub fn schedule(&self) -> &Schedule {
        match self {
            RoutingOutcome::Plan(plan) => &plan.schedule,
            RoutingOutcome::Schedule(schedule) => schedule,
            RoutingOutcome::HRelation(routing) => &routing.schedule,
            RoutingOutcome::FaultTolerant(routing) => &routing.schedule,
        }
    }

    /// Consumes the outcome, returning its schedule.
    pub fn into_schedule(self) -> Schedule {
        match self {
            RoutingOutcome::Plan(plan) => plan.schedule,
            RoutingOutcome::Schedule(schedule) => schedule,
            RoutingOutcome::HRelation(routing) => routing.schedule,
            RoutingOutcome::FaultTolerant(routing) => routing.schedule,
        }
    }
}

/// Why a [`Router::plan`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The request's permutation/relation size does not match the engine
    /// topology.
    SizeMismatch {
        /// `n = d·g` of the engine topology.
        expected: usize,
        /// Size of the request.
        got: usize,
    },
    /// A [`RoutingRequest::SingleSlot`] request on a permutation whose
    /// moving demand matrix has an entry above 1.
    NotSingleSlotRoutable,
    /// A [`RoutingRequest::StructuredBaseline`] request on a permutation
    /// that is not group-uniform.
    NotGroupUniform,
    /// The fault router could not connect a group pair.
    Fault(FaultRoutingError),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "request size {got} does not match topology n = {expected}"
                )
            }
            RoutingError::NotSingleSlotRoutable => {
                write!(f, "permutation is not single-slot routable")
            }
            RoutingError::NotGroupUniform => {
                write!(
                    f,
                    "permutation is not group-uniform; use the general router"
                )
            }
            RoutingError::Fault(e) => write!(f, "fault routing failed: {e}"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// A planner of routing requests on a fixed topology.
///
/// Implemented by [`RoutingEngine`] for all six routing paths of this
/// reproduction. `&mut self` is deliberate: implementations own reusable
/// scratch state.
pub trait Router {
    /// Plans one request.
    fn plan(&mut self, req: &RoutingRequest<'_>) -> Result<RoutingOutcome, RoutingError>;
}

/// Reusable arenas for every engine path. All vectors are grown on first
/// use (sizes depend only on the topology and stay fixed) and only
/// overwritten afterwards.
#[derive(Debug, Default, Clone)]
struct Scratch {
    /// `L(h, i) = group(π(h·d + i))`, flat at `h·d + i` (the routing list
    /// system).
    dest_group: Vec<usize>,
    /// Padded Theorem-1 demand multigraph, edge `e` = `(edge_u[e],
    /// edge_v[e])`; real edges first (`e = h·d + i`), pad edges appended.
    edge_u: Vec<u32>,
    /// Right endpoints, parallel to `edge_u`.
    edge_v: Vec<u32>,
    /// `left_table[u·n₂ + c]` = edge of colour `c` at left node `u`.
    left_table: Vec<usize>,
    /// Right-side colour table, as `left_table`.
    right_table: Vec<usize>,
    /// Colour per padded edge.
    colors: Vec<usize>,
    /// Alternating-chain workspace.
    chain: Vec<usize>,
    /// The fair distribution, flat: `f(h, i)` at `h·d + i`.
    fd_targets: Vec<usize>,
    /// `inv[h·d + j] = i` with `f(h, i) = j` (the `d > g` bijection).
    inv: Vec<usize>,
    /// Per-target fill cursor for bucket passes.
    bucket_cursor: Vec<usize>,
    /// Source group of the k-th entry routed to intermediate group `j`,
    /// flat at `j·d + k`.
    incoming_h: Vec<u32>,
    /// List position of the same entry.
    incoming_i: Vec<u32>,
    /// Flat sender/receiver workspace for the `d > g` rounds and the
    /// structured baseline (`g·g` and `g·d` slots respectively).
    receivers: Vec<usize>,
    /// Sender workspace for the structured baseline (`g·d`).
    senders: Vec<usize>,
    /// Group-to-group moving demand (single-slot/direct paths).
    demand: Vec<usize>,
    /// Per-coupler queue length (direct path).
    queue_len: Vec<usize>,
    /// `group_lut[p] = p / d` for every processor `p` — filled once per
    /// engine (the topology is fixed), so the Theorem-2 hot paths trade
    /// three hardware divisions per processor (destination-group list,
    /// delivery couplers) for L1 table lookups.
    group_lut: Vec<u32>,
    /// Per-left-node used-colour bitmask words (the word-parallel
    /// kernel's mirror of `left_table`): bit `c` of
    /// `left_used[u·W .. (u+1)·W]` is set iff `left_table[u·n₂ + c]`
    /// holds an edge, where `W = ⌈n₂/64⌉`.
    left_used: Vec<u64>,
    /// Right-side used-colour masks, as `left_used`.
    right_used: Vec<u64>,
    /// Retired transmission buffers handed back through
    /// [`RoutingEngine::recycle`]; schedule emission pops from here before
    /// asking the allocator, so steady-state batch routing recirculates
    /// the same cache-warm blocks instead of walking fresh cold pages for
    /// every plan.
    spare_tx: Vec<Vec<Transmission>>,
    /// Retired intermediate-placement buffers (same recycling loop).
    spare_intermediate: Vec<Vec<usize>>,
    /// Request multigraph of the h-relation path (cleared, not freed,
    /// between calls).
    hrel_graph: Option<BipartiteMultigraph>,
    /// Debug-only fair-distribution verification buffers (no allocation in
    /// `debug_assert!` paths either — the allocation-counting test runs in
    /// debug builds).
    #[cfg(debug_assertions)]
    verify_seen: Vec<bool>,
    /// Per-target fibre counters (debug verification).
    #[cfg(debug_assertions)]
    verify_counts: Vec<usize>,
    /// `(list value, target)` pair markers (debug verification).
    #[cfg(debug_assertions)]
    verify_pairs: Vec<bool>,
}

/// Grows `v` to `len` if shorter (no-op — and no allocation — once warm).
fn ensure<T: Clone + Default>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// Selects the inner-loop implementation of the alternating-path edge
/// colourer — the routine under every Theorem-1 fair distribution and
/// every h-relation phase decomposition.
///
/// Both kernels run the *same algorithm* (identical insertion order,
/// chain walks, and flips) and produce **byte-identical** colourings —
/// and therefore byte-identical schedules — on every input; the
/// engine-equivalence proptests pin this. They differ only in how "the
/// lowest colour free at this node" is answered:
///
/// * [`ColoringKernel::Scalar`] walks the colour table linearly — up to
///   `Δ = max(d, g)` slots per query.
/// * [`ColoringKernel::Bitset`] mirrors the table into u64 used-colour
///   masks and answers with one `trailing_zeros` per 64 colours — the
///   word-parallel kernel, **default** now that the equivalence suite
///   proves the outputs identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColoringKernel {
    /// Linear table scan per free-colour query.
    Scalar,
    /// u64 used-colour masks; free-colour queries are word-parallel.
    #[default]
    Bitset,
}

impl ColoringKernel {
    /// Both kernels, for comparison sweeps and equivalence tests.
    pub const ALL: [ColoringKernel; 2] = [ColoringKernel::Scalar, ColoringKernel::Bitset];

    /// Human-readable kernel name.
    pub fn name(self) -> &'static str {
        match self {
            ColoringKernel::Scalar => "scalar",
            ColoringKernel::Bitset => "bitset",
        }
    }
}

/// The unified routing engine: one topology, one colourer choice, reusable
/// scratch arenas for every routing path. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RoutingEngine {
    topology: PopsTopology,
    colorer: ColorerKind,
    kernel: ColoringKernel,
    emit_artefacts: bool,
    scratch: Scratch,
}

impl RoutingEngine {
    /// Creates an engine for `topology` with the
    /// [`ColorerKind::AlternatingPath`] colourer — the colourer with the
    /// allocation-free arena implementation, hence the engine default (the
    /// free functions keep [`ColorerKind::default`]).
    pub fn new(topology: PopsTopology) -> Self {
        Self::with_colorer(topology, ColorerKind::AlternatingPath)
    }

    /// Creates an engine using a specific 1-factorization engine for the
    /// Theorem-1 construction.
    pub fn with_colorer(topology: PopsTopology, colorer: ColorerKind) -> Self {
        Self {
            topology,
            colorer,
            kernel: ColoringKernel::default(),
            emit_artefacts: false,
            scratch: Scratch::default(),
        }
    }

    /// Selects the alternating-path colouring kernel (see
    /// [`ColoringKernel`]); output is byte-identical either way.
    pub fn coloring_kernel(mut self, kernel: ColoringKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Non-consuming form of [`RoutingEngine::coloring_kernel`].
    pub fn set_coloring_kernel(&mut self, kernel: ColoringKernel) {
        self.kernel = kernel;
    }

    /// The engine's active colouring kernel.
    pub fn kernel(&self) -> ColoringKernel {
        self.kernel
    }

    /// Whether Theorem-2 plans carry their construction artefacts (the
    /// list system and fair distribution, as the legacy free functions
    /// always did). Off by default: exporting artefacts clones them out of
    /// the arenas, which costs allocations on the hot path.
    pub fn emit_artefacts(mut self, yes: bool) -> Self {
        self.emit_artefacts = yes;
        self
    }

    /// Non-consuming form of [`RoutingEngine::emit_artefacts`], for engines
    /// owned behind a pool or another shared structure that cannot move
    /// them through the builder.
    pub fn set_emit_artefacts(&mut self, yes: bool) {
        self.emit_artefacts = yes;
    }

    /// Warms the scratch arenas by planning the identity permutation and
    /// discarding the plan: afterwards every Theorem-2 arena is at its
    /// final size for this topology, so the next `plan_*` call starts
    /// directly on the zero-allocation hot path. Service pools warm their
    /// shards at construction so no real request pays the arena growth.
    pub fn warm(&mut self) -> &mut Self {
        let pi = Permutation::identity(self.topology.n());
        let _ = self.theorem2_internal(&pi, false);
        self
    }

    /// Releases every scratch arena back to the allocator (capacities drop
    /// to zero; the next plan re-grows them). The reset hook for
    /// long-lived pools that want to shed memory after a burst of
    /// requests.
    pub fn reset(&mut self) {
        self.scratch = Scratch::default();
    }

    /// Hands a consumed plan's heap buffers back to the engine: the next
    /// emitted schedules are written into the recycled allocations instead
    /// of fresh ones. A batch executor that recycles the previous batch
    /// before routing the next keeps its steady-state memory fixed and
    /// cache-warm — the optimisation that lifts 1-thread batch throughput
    /// to (and past) the drop-each-plan single-plan loop, which gets the
    /// same recirculation from the allocator for free.
    ///
    /// Plans from any topology are accepted; only the buffers are kept,
    /// and the pool is capped so over-donation cannot grow memory without
    /// bound.
    pub fn recycle(&mut self, plan: RoutingPlan) {
        const SPARE_CAP: usize = 512;
        let scratch = &mut self.scratch;
        for frame in plan.schedule.slots {
            if scratch.spare_tx.len() >= SPARE_CAP {
                break;
            }
            let mut tx = frame.transmissions;
            tx.clear();
            scratch.spare_tx.push(tx);
        }
        if scratch.spare_intermediate.len() < SPARE_CAP {
            let mut intermediate = plan.intermediate;
            intermediate.clear();
            scratch.spare_intermediate.push(intermediate);
        }
    }

    /// Approximate heap footprint of the scratch arenas in bytes — the
    /// flat vectors only (the h-relation request graph, whose size is
    /// workload-dependent, is excluded). A metrics hook for pools.
    pub fn arena_footprint(&self) -> usize {
        let s = &self.scratch;
        let usize_cells = s.dest_group.capacity()
            + s.left_table.capacity()
            + s.right_table.capacity()
            + s.colors.capacity()
            + s.chain.capacity()
            + s.fd_targets.capacity()
            + s.inv.capacity()
            + s.bucket_cursor.capacity()
            + s.receivers.capacity()
            + s.senders.capacity()
            + s.demand.capacity()
            + s.queue_len.capacity();
        let u32_cells = s.edge_u.capacity()
            + s.edge_v.capacity()
            + s.incoming_h.capacity()
            + s.incoming_i.capacity()
            + s.group_lut.capacity();
        let u64_cells = s.left_used.capacity() + s.right_used.capacity();
        let spare_usize_cells: usize = s.spare_intermediate.iter().map(Vec::capacity).sum();
        let spare_tx_cells: usize = s.spare_tx.iter().map(Vec::capacity).sum();
        (usize_cells + spare_usize_cells) * std::mem::size_of::<usize>()
            + u32_cells * std::mem::size_of::<u32>()
            + u64_cells * std::mem::size_of::<u64>()
            + spare_tx_cells * std::mem::size_of::<Transmission>()
    }

    /// The engine's topology.
    pub fn topology(&self) -> PopsTopology {
        self.topology
    }

    /// The engine's colourer.
    pub fn colorer(&self) -> ColorerKind {
        self.colorer
    }

    /// Routes `pi` per Theorem 2, byte-identical to
    /// [`crate::router::route`] with the same colourer.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn plan_theorem2(&mut self, pi: &Permutation) -> RoutingPlan {
        self.theorem2_internal(pi, self.emit_artefacts)
    }

    /// Computes the fair distribution of `pi`'s routing list system into
    /// the engine arenas and returns it as the flat slice `f(h, i)` at
    /// `h·d + i` (empty for `d = 1`, which needs no fair distribution).
    ///
    /// This is the zero-allocation hot path: with the
    /// [`ColorerKind::AlternatingPath`] colourer a warm engine performs no
    /// heap allocation here at all.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn fair_distribution_targets(&mut self, pi: &Permutation) -> &[usize] {
        self.check_len(pi);
        if self.topology.d() == 1 {
            return &[];
        }
        self.compute_fair_distribution(pi);
        let len = self.topology.n();
        &self.scratch.fd_targets[..len]
    }

    /// Routes `pi` in one slot if possible — the engine form of
    /// [`crate::single_slot::route_single_slot`].
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn plan_single_slot(&mut self, pi: &Permutation) -> Result<Schedule, RoutingError> {
        self.check_len(pi);
        if self.moving_demand_max(pi) > 1 {
            return Err(RoutingError::NotSingleSlotRoutable);
        }
        Ok(Schedule {
            slots: vec![self.one_hop_frame(pi, true)],
        })
    }

    /// One slot sending every packet straight through its unique coupler
    /// (legal when the demand matrix is 0/1 — the `d = 1` and single-slot
    /// cases). `skip_fixed` omits packets already at home.
    fn one_hop_frame(&self, pi: &Permutation, skip_fixed: bool) -> SlotFrame {
        let t = &self.topology;
        let transmissions = (0..t.n())
            .filter(|&i| !skip_fixed || pi.apply(i) != i)
            .map(|i| Transmission::unicast(i, t.coupler_between(i, pi.apply(i)), i, pi.apply(i)))
            .collect();
        SlotFrame { transmissions }
    }

    /// The optimal direct (single-hop) schedule — the engine form of
    /// `pops_baselines::route_direct`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn plan_direct(&mut self, pi: &Permutation) -> Schedule {
        self.check_len(pi);
        let slots_needed = self.moving_demand_max(pi);
        let t = self.topology;
        let scratch = &mut self.scratch;
        ensure(&mut scratch.queue_len, t.coupler_count());
        scratch.queue_len[..t.coupler_count()].fill(0);
        let mut slots = vec![SlotFrame::new(); slots_needed];
        for i in 0..t.n() {
            let dest = pi.apply(i);
            if dest == i {
                continue;
            }
            let coupler = t.coupler_between(i, dest);
            let slot = scratch.queue_len[coupler];
            scratch.queue_len[coupler] += 1;
            slots[slot]
                .transmissions
                .push(Transmission::unicast(i, coupler, i, dest));
        }
        Schedule { slots }
    }

    /// The Sahni-style structured routing for group-uniform permutations —
    /// the engine form of `pops_baselines::route_structured`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn plan_structured(&mut self, pi: &Permutation) -> Result<Schedule, RoutingError> {
        self.check_len(pi);
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        if !pi.is_group_uniform(d) {
            return Err(RoutingError::NotGroupUniform);
        }
        if d == 1 {
            return Ok(Schedule {
                slots: vec![self.one_hop_frame(pi, false)],
            });
        }

        let n2 = g.max(d);
        let mut slots = Vec::new();
        let scratch = &mut self.scratch;
        if d <= g {
            // f(h, i) = (h + i) mod g; receivers in source-group order per
            // intermediate group, exactly as the legacy baseline.
            ensure(&mut scratch.senders, g * d);
            ensure(&mut scratch.bucket_cursor, g);
            scratch.bucket_cursor[..g].fill(0);
            for h in 0..g {
                for i in 0..d {
                    let j = (h + i) % n2;
                    let k = scratch.bucket_cursor[j];
                    scratch.bucket_cursor[j] += 1;
                    scratch.senders[j * d + k] = t.processor(h, i);
                }
            }
            debug_assert!(scratch.bucket_cursor[..g].iter().all(|&c| c == d));
            let mut slot1 = SlotFrame::new();
            let mut slot2 = SlotFrame::new();
            for j in 0..g {
                for k in 0..d {
                    let sender = scratch.senders[j * d + k];
                    let mid = t.processor(j, k);
                    slot1.transmissions.push(Transmission::unicast(
                        sender,
                        t.coupler_id(j, t.group_of(sender)),
                        sender,
                        mid,
                    ));
                    let dest = pi.apply(sender);
                    slot2.transmissions.push(Transmission::unicast(
                        mid,
                        t.coupler_between(mid, dest),
                        sender,
                        dest,
                    ));
                }
            }
            slots.push(slot1);
            slots.push(slot2);
        } else {
            // d > g: f(h, i) = (i + h) mod d, inverse i = (j - h) mod d.
            ensure(&mut scratch.receivers, g * g);
            let rounds = d.div_ceil(g);
            for q in 0..rounds {
                let block = q * g..((q + 1) * g).min(d);
                let full_round = block.len() == g;
                let mut slot1 = SlotFrame::new();
                let mut slot2 = SlotFrame::new();
                for r in 0..g {
                    if full_round {
                        for (idx, j) in block.clone().enumerate() {
                            scratch.receivers[r * g + idx] = t.processor(r, (j + d - r % d) % d);
                        }
                        scratch.receivers[r * g..r * g + g].sort_unstable();
                    } else {
                        for h in 0..g {
                            scratch.receivers[r * g + h] = t.processor(r, h);
                        }
                    }
                }
                for h in 0..g {
                    for j in block.clone() {
                        let r = j - q * g;
                        let i = (j + d - h % d) % d;
                        let sender = t.processor(h, i);
                        let mid = scratch.receivers[r * g + h];
                        slot1.transmissions.push(Transmission::unicast(
                            sender,
                            t.coupler_id(r, h),
                            sender,
                            mid,
                        ));
                        let dest = pi.apply(sender);
                        slot2.transmissions.push(Transmission::unicast(
                            mid,
                            t.coupler_between(mid, dest),
                            sender,
                            dest,
                        ));
                    }
                }
                slots.push(slot1);
                slots.push(slot2);
            }
        }
        Ok(Schedule { slots })
    }

    /// König-decomposes `relation` into at most `h` partial permutations —
    /// the **phase-decomposition hook** of the h-relation path. Each colour
    /// class of the request multigraph (via the CSR
    /// [`pops_bipartite::coloring::EdgeColoring::classes_flat`]) is one
    /// phase; completing a phase and routing it by Theorem 2 yields the
    /// phase's slot block.
    ///
    /// The decomposition is deterministic for a given colourer, so callers
    /// (e.g. the service's per-phase plan cache) may key each phase by its
    /// completed permutation and route or cache phases individually:
    ///
    /// ```
    /// use pops_core::{HRelation, RoutingEngine};
    /// use pops_core::h_relation::HRelationRouting;
    /// use pops_network::PopsTopology;
    ///
    /// let topology = PopsTopology::new(2, 3);
    /// let mut engine = RoutingEngine::new(topology);
    /// let relation = HRelation::new(6, vec![(0, 1), (1, 0), (0, 2)]).unwrap();
    /// let phases = engine.decompose_h_relation(&relation);
    /// assert_eq!(phases.len(), relation.h());
    /// // Route each phase independently (a cache could answer some)...
    /// let blocks = phases
    ///     .iter()
    ///     .map(|p| engine.plan_theorem2(&p.complete()).schedule)
    ///     .collect();
    /// // ...and the assembled routing matches `plan_h_relation` exactly.
    /// let assembled = HRelationRouting::from_phase_schedules(topology, phases, blocks);
    /// assert_eq!(assembled.schedule, engine.plan_h_relation(&relation).schedule);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `relation.n() != topology.n()`.
    pub fn decompose_h_relation(&mut self, relation: &HRelation) -> Vec<PartialPermutation> {
        let t = self.topology;
        assert_eq!(relation.n(), t.n(), "size mismatch");
        let n = relation.n();
        let graph = self
            .scratch
            .hrel_graph
            .get_or_insert_with(|| BipartiteMultigraph::new(n, n));
        graph.clear();
        for &(src, dst) in relation.requests() {
            graph.add_edge(src, dst);
        }
        // The bitset kernel is a byte-identical drop-in for the
        // alternating-path colourer, so the request multigraph gets the
        // word-parallel path too; other colourers are untouched.
        let coloring = match (self.colorer, self.kernel) {
            (ColorerKind::AlternatingPath, ColoringKernel::Bitset) => bitset::color(graph),
            _ => self.colorer.color(graph),
        };
        let (offsets, flat) = coloring.classes_flat();
        (0..coloring.num_colors)
            .map(|phase| {
                let mut image: Vec<Option<usize>> = vec![None; n];
                for &e in &flat[offsets[phase]..offsets[phase + 1]] {
                    let (src, dst) = graph.endpoints(e);
                    debug_assert!(image[src].is_none(), "colouring is proper");
                    image[src] = Some(dst);
                }
                PartialPermutation::new(image).expect("colour classes are partial permutations")
            })
            .collect()
    }

    /// Routes an h-relation: [`RoutingEngine::decompose_h_relation`] into
    /// phases, complete each, and route every phase through this engine's
    /// Theorem-2 arenas. Byte-identical to
    /// [`crate::h_relation::route_h_relation`] with the same colourer.
    ///
    /// # Panics
    ///
    /// Panics if `relation.n() != topology.n()`.
    pub fn plan_h_relation(&mut self, relation: &HRelation) -> HRelationRouting {
        let t = self.topology;
        let phases = self.decompose_h_relation(relation);
        let blocks: Vec<Schedule> = phases
            .iter()
            .map(|phase| self.theorem2_internal(&phase.complete(), false).schedule)
            .collect();
        HRelationRouting::from_phase_schedules(t, phases, blocks)
    }

    /// Routes `pi` around `faults` with the greedy distance-decreasing
    /// router (delegates to [`crate::fault_routing::route_with_faults`];
    /// that path's state is inherently per-call).
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != topology.n()`.
    pub fn plan_with_faults(
        &mut self,
        pi: &Permutation,
        faults: &FaultSet,
    ) -> Result<FaultRouting, RoutingError> {
        route_with_faults(pi, self.topology, faults).map_err(RoutingError::Fault)
    }

    fn check_len(&self, pi: &Permutation) {
        assert_eq!(
            pi.len(),
            self.topology.n(),
            "permutation length {} does not match {} with n = {}",
            pi.len(),
            self.topology,
            self.topology.n()
        );
    }

    /// Fills `scratch.demand` with the moving demand of `pi` and returns
    /// its maximum entry.
    fn moving_demand_max(&mut self, pi: &Permutation) -> usize {
        let t = &self.topology;
        let g = t.g();
        let scratch = &mut self.scratch;
        ensure(&mut scratch.demand, g * g);
        scratch.demand[..g * g].fill(0);
        let mut max = 0;
        for i in 0..t.n() {
            let dest = pi.apply(i);
            if dest != i {
                let cell = &mut scratch.demand[t.group_of(i) * g + t.group_of(dest)];
                *cell += 1;
                max = max.max(*cell);
            }
        }
        max
    }

    /// The Theorem-2 construction, shared by every caller.
    fn theorem2_internal(&mut self, pi: &Permutation, want_artefacts: bool) -> RoutingPlan {
        self.check_len(pi);
        let t = self.topology;
        let (d, g) = (t.d(), t.g());

        if d == 1 {
            return RoutingPlan {
                topology: t,
                schedule: Schedule {
                    slots: vec![self.one_hop_frame(pi, false)],
                },
                fair_distribution: None,
                list_system: None,
                intermediate: pi.as_slice().to_vec(),
            };
        }

        self.ensure_group_lut();
        let artefacts = self.compute_fair_distribution_with_artefacts(pi, want_artefacts);
        let (schedule, intermediate) = if d <= g {
            self.emit_d_le_g(pi)
        } else {
            self.emit_d_gt_g(pi)
        };
        let (list_system, fair_distribution) = match artefacts {
            Some((ls, fd)) => (Some(ls), Some(fd)),
            None => (None, None),
        };
        debug_assert_eq!(schedule.slot_count(), theorem2_slots(d, g));
        RoutingPlan {
            topology: t,
            schedule,
            fair_distribution,
            list_system,
            intermediate,
        }
    }

    /// Computes `scratch.fd_targets` for `pi` (which must match a `d > 1`
    /// topology), optionally also exporting the construction artefacts.
    fn compute_fair_distribution_with_artefacts(
        &mut self,
        pi: &Permutation,
        want_artefacts: bool,
    ) -> Option<(ListSystem, FairDistribution)> {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        let n2 = g.max(d);
        match self.colorer {
            ColorerKind::AlternatingPath => {
                self.compute_fair_distribution(pi);
                want_artefacts.then(|| {
                    let scratch = &self.scratch;
                    let lists: Vec<Vec<usize>> = (0..g)
                        .map(|h| scratch.dest_group[h * d..(h + 1) * d].to_vec())
                        .collect();
                    let assignments: Vec<Vec<usize>> = (0..g)
                        .map(|h| scratch.fd_targets[h * d..(h + 1) * d].to_vec())
                        .collect();
                    let ls = ListSystem::new(n2, lists)
                        .expect("routing list systems are always well-formed");
                    (ls, FairDistribution::from_assignments(n2, assignments))
                })
            }
            _ => {
                let (ls, fd) = self.legacy_fair_distribution_into_scratch(pi);
                want_artefacts.then_some((ls, fd))
            }
        }
    }

    /// The allocating legacy pipeline — identical to the pre-engine free
    /// functions for the Koenig and Euler-split engines. Computes the fair
    /// distribution with [`FairDistribution::compute`], mirrors it into
    /// `scratch.fd_targets`, and returns the artefact objects.
    fn legacy_fair_distribution_into_scratch(
        &mut self,
        pi: &Permutation,
    ) -> (ListSystem, FairDistribution) {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        let ls = ListSystem::for_routing(pi, d, g);
        let fd = FairDistribution::compute(&ls, self.colorer);
        let scratch = &mut self.scratch;
        ensure(&mut scratch.fd_targets, g * d);
        for h in 0..g {
            scratch.fd_targets[h * d..(h + 1) * d].copy_from_slice(fd.targets_of(h));
        }
        (ls, fd)
    }

    /// Fills `scratch.group_lut` with `p ↦ p / d` if it is not already at
    /// full size. The divisions run once per engine lifetime; every plan
    /// afterwards reads groups out of the table instead of dividing.
    fn ensure_group_lut(&mut self) {
        let n = self.topology.n();
        let d = self.topology.d();
        let lut = &mut self.scratch.group_lut;
        if lut.len() < n {
            lut.clear();
            lut.extend((0..n).map(|p| (p / d) as u32));
        }
    }

    /// Fills `scratch.fd_targets` for `pi` on a `d > 1` topology using the
    /// engine's colourer; allocation-free when warm for the
    /// alternating-path colourer.
    fn compute_fair_distribution(&mut self, pi: &Permutation) {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        debug_assert!(d > 1);
        self.ensure_group_lut();
        if self.colorer != ColorerKind::AlternatingPath {
            let _ = self.legacy_fair_distribution_into_scratch(pi);
            return;
        }

        let n2 = g.max(d);
        let m_real = g * d;
        // Theorem-1 padding: for d ≤ g add `pad = g − d` nodes per side
        // with the (n₂, n₂ − Δ₁)-biregular H₁/H₂ graphs; for d > g the
        // demand graph is already n₂-regular.
        let pad = g.saturating_sub(d);
        let nodes = g + pad;
        let m_total = m_real + 2 * pad * g;

        let scratch = &mut self.scratch;
        ensure(&mut scratch.dest_group, m_real);
        ensure(&mut scratch.edge_u, m_total);
        ensure(&mut scratch.edge_v, m_total);
        ensure(&mut scratch.left_table, nodes * n2);
        ensure(&mut scratch.right_table, nodes * n2);
        ensure(&mut scratch.colors, m_total);
        ensure(&mut scratch.fd_targets, m_real);
        // An alternating chain visits each node at most once, so 2·nodes
        // bounds its length; cleared first so `reserve` is relative to an
        // empty vector and becomes a no-op once the capacity is in place.
        scratch.chain.clear();
        scratch.chain.reserve(2 * nodes + 2);

        // The routing list system: L(h, i) = group(π(h·d + i)), with the
        // per-processor division replaced by the engine's group table.
        for p in 0..m_real {
            scratch.dest_group[p] = scratch.group_lut[pi.apply(p)] as usize;
        }
        // Real demand edges in (h, i) lexicographic order: edge h·d + i is
        // (h, L(h, i)) — the same ids the legacy pipeline assigns. The
        // left endpoint e / d is again a group-table read (m_real = n).
        for (e, &dest) in scratch.dest_group[..m_real].iter().enumerate() {
            scratch.edge_u[e] = scratch.group_lut[e];
            scratch.edge_v[e] = dest as u32;
        }
        // Pad edges, in the exact order `theorem1_pad` appends them:
        // H₁ = (V, S′) first, then H₂ = (V′, S).
        if pad > 0 {
            let b_deg = g - d; // n₂ − Δ₁
            for slot in 0..pad * g {
                scratch.edge_u[m_real + slot] = (g + slot / g) as u32;
                scratch.edge_v[m_real + slot] = (slot / b_deg) as u32;
            }
            let h2_base = m_real + pad * g;
            for slot in 0..pad * g {
                scratch.edge_u[h2_base + slot] = (slot / b_deg) as u32;
                scratch.edge_v[h2_base + slot] = (g + slot / g) as u32;
            }
        }

        self.color_alternating(nodes, n2, m_total);

        let scratch = &mut self.scratch;
        // The colour of real edge h·d + i *is* f(h, i).
        let (fd_targets, colors) = (&mut scratch.fd_targets, &scratch.colors);
        fd_targets[..m_real].copy_from_slice(&colors[..m_real]);

        #[cfg(debug_assertions)]
        self.debug_verify_fair_distribution();
    }

    /// Allocation-free port of the alternating-chain edge colourer
    /// ([`pops_bipartite::coloring::alternating`]): identical insertion
    /// order, chain walk, and flip — hence byte-identical colours — but
    /// working on the engine's flat arenas. Dispatches on the engine's
    /// [`ColoringKernel`]; both branches produce the same bytes.
    fn color_alternating(&mut self, nodes: usize, n2: usize, m_total: usize) {
        match self.kernel {
            ColoringKernel::Scalar => self.color_alternating_scalar(nodes, n2, m_total),
            ColoringKernel::Bitset => self.color_alternating_bitset(nodes, n2, m_total),
        }
    }

    /// The scalar kernel: free-colour queries walk the colour table.
    fn color_alternating_scalar(&mut self, nodes: usize, n2: usize, m_total: usize) {
        let Scratch {
            edge_u,
            edge_v,
            left_table,
            right_table,
            colors,
            chain,
            ..
        } = &mut self.scratch;
        left_table[..nodes * n2].fill(NONE);
        right_table[..nodes * n2].fill(NONE);
        colors[..m_total].fill(NONE);

        let first_free = |table: &[usize], node: usize| -> usize {
            (0..n2)
                .find(|&c| table[node * n2 + c] == NONE)
                .expect("a colour below Δ is always free")
        };

        for e in 0..m_total {
            let u = edge_u[e] as usize;
            let v = edge_v[e] as usize;
            let a = first_free(left_table, u);
            let b = first_free(right_table, v);
            if a == b {
                colors[e] = a;
                left_table[u * n2 + a] = e;
                right_table[v * n2 + a] = e;
                continue;
            }
            // Flip the (a, b)-alternating chain starting at v.
            let mut want = a;
            let mut at_right = true;
            let mut node = v;
            chain.clear();
            loop {
                let table: &[usize] = if at_right { right_table } else { left_table };
                let next = table[node * n2 + want];
                if next == NONE {
                    break;
                }
                chain.push(next);
                node = if at_right {
                    edge_u[next] as usize
                } else {
                    edge_v[next] as usize
                };
                at_right = !at_right;
                want = if want == a { b } else { a };
            }
            debug_assert!(at_right || node != u, "alternating chain reached u");
            for &ce in chain.iter() {
                let old = colors[ce];
                left_table[edge_u[ce] as usize * n2 + old] = NONE;
                right_table[edge_v[ce] as usize * n2 + old] = NONE;
            }
            for &ce in chain.iter() {
                let new = if colors[ce] == a { b } else { a };
                colors[ce] = new;
                left_table[edge_u[ce] as usize * n2 + new] = ce;
                right_table[edge_v[ce] as usize * n2 + new] = ce;
            }
            debug_assert_eq!(left_table[u * n2 + a], NONE);
            debug_assert_eq!(right_table[v * n2 + a], NONE);
            colors[e] = a;
            left_table[u * n2 + a] = e;
            right_table[v * n2 + a] = e;
        }
    }

    /// The word-parallel kernel: per-node u64 used-colour masks mirror
    /// the colour tables, so a free-colour query is `trailing_zeros` of
    /// the complement word ([`bitset::first_free_in`]) instead of a scan
    /// over up to `n₂` table slots. Every table write pairs with a mask
    /// update, keeping the mirror exact through chain flips; the chain
    /// walk itself still follows the tables. Byte-identical output to
    /// [`RoutingEngine::color_alternating_scalar`].
    fn color_alternating_bitset(&mut self, nodes: usize, n2: usize, m_total: usize) {
        let words = bitset::words_per_node(n2);
        ensure(&mut self.scratch.left_used, nodes * words);
        ensure(&mut self.scratch.right_used, nodes * words);
        let Scratch {
            edge_u,
            edge_v,
            left_table,
            right_table,
            colors,
            chain,
            left_used,
            right_used,
            ..
        } = &mut self.scratch;
        left_table[..nodes * n2].fill(NONE);
        right_table[..nodes * n2].fill(NONE);
        colors[..m_total].fill(NONE);
        left_used[..nodes * words].fill(0);
        right_used[..nodes * words].fill(0);

        for e in 0..m_total {
            let u = edge_u[e] as usize;
            let v = edge_v[e] as usize;
            let a = bitset::first_free_in(&left_used[u * words..(u + 1) * words], n2);
            let b = bitset::first_free_in(&right_used[v * words..(v + 1) * words], n2);
            if a == b {
                colors[e] = a;
                left_table[u * n2 + a] = e;
                right_table[v * n2 + a] = e;
                bitset::mark_used(left_used, u, words, a);
                bitset::mark_used(right_used, v, words, a);
                continue;
            }
            // Flip the (a, b)-alternating chain starting at v.
            let mut want = a;
            let mut at_right = true;
            let mut node = v;
            chain.clear();
            loop {
                let table: &[usize] = if at_right { right_table } else { left_table };
                let next = table[node * n2 + want];
                if next == NONE {
                    break;
                }
                chain.push(next);
                node = if at_right {
                    edge_u[next] as usize
                } else {
                    edge_v[next] as usize
                };
                at_right = !at_right;
                want = if want == a { b } else { a };
            }
            debug_assert!(at_right || node != u, "alternating chain reached u");
            for &ce in chain.iter() {
                let (cu, cv) = (edge_u[ce] as usize, edge_v[ce] as usize);
                let old = colors[ce];
                left_table[cu * n2 + old] = NONE;
                right_table[cv * n2 + old] = NONE;
                bitset::mark_free(left_used, cu, words, old);
                bitset::mark_free(right_used, cv, words, old);
            }
            for &ce in chain.iter() {
                let (cu, cv) = (edge_u[ce] as usize, edge_v[ce] as usize);
                let new = if colors[ce] == a { b } else { a };
                colors[ce] = new;
                left_table[cu * n2 + new] = ce;
                right_table[cv * n2 + new] = ce;
                bitset::mark_used(left_used, cu, words, new);
                bitset::mark_used(right_used, cv, words, new);
            }
            debug_assert_eq!(left_table[u * n2 + a], NONE);
            debug_assert_eq!(right_table[v * n2 + a], NONE);
            colors[e] = a;
            left_table[u * n2 + a] = e;
            right_table[v * n2 + a] = e;
            bitset::mark_used(left_used, u, words, a);
            bitset::mark_used(right_used, v, words, a);
        }
    }

    /// Debug re-check of fair-distribution conditions (1)–(3) against the
    /// arena state, itself allocation-free so the allocation-counting test
    /// can run in debug builds.
    #[cfg(debug_assertions)]
    fn debug_verify_fair_distribution(&mut self) {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        let n2 = g.max(d);
        let delta2 = g * d / n2;
        let scratch = &mut self.scratch;
        ensure(&mut scratch.verify_seen, n2);
        ensure(&mut scratch.verify_counts, n2);
        ensure(&mut scratch.verify_pairs, g * n2);
        scratch.verify_counts[..n2].fill(0);
        scratch.verify_pairs[..g * n2].fill(false);
        for h in 0..g {
            scratch.verify_seen[..n2].fill(false);
            for i in 0..d {
                let target = scratch.fd_targets[h * d + i];
                let value = scratch.dest_group[h * d + i];
                assert!(target < n2, "fair-distribution target out of range");
                assert!(
                    !scratch.verify_seen[target],
                    "condition (1): source {h} repeats target {target}"
                );
                scratch.verify_seen[target] = true;
                scratch.verify_counts[target] += 1;
                assert!(
                    !scratch.verify_pairs[value * n2 + target],
                    "condition (3): list value {value} reuses target {target}"
                );
                scratch.verify_pairs[value * n2 + target] = true;
            }
        }
        assert!(
            scratch.verify_counts[..n2].iter().all(|&c| c == delta2),
            "condition (2): unbalanced target fibres"
        );
    }

    /// Schedule emission for `1 < d ≤ g` — the two-slot case, identical
    /// transmission order to the legacy `route_d_le_g`.
    fn emit_d_le_g(&mut self, pi: &Permutation) -> (Schedule, Vec<usize>) {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        let n = t.n();
        let scratch = &mut self.scratch;
        ensure(&mut scratch.bucket_cursor, g);
        ensure(&mut scratch.incoming_h, g * d);
        ensure(&mut scratch.incoming_i, g * d);

        // Bucket the entries by intermediate group; each bucket holds
        // exactly d entries (equation (2)) in (h, i) lexicographic order.
        scratch.bucket_cursor[..g].fill(0);
        for h in 0..g {
            for i in 0..d {
                let j = scratch.fd_targets[h * d + i];
                let k = scratch.bucket_cursor[j];
                scratch.bucket_cursor[j] += 1;
                scratch.incoming_h[j * d + k] = h as u32;
                scratch.incoming_i[j * d + k] = i as u32;
            }
        }
        debug_assert!(
            scratch.bucket_cursor[..g].iter().all(|&c| c == d),
            "equation (2)"
        );

        let mut intermediate = scratch.spare_intermediate.pop().unwrap_or_default();
        intermediate.clear();
        intermediate.resize(n, NONE);
        let mut slot1 = SlotFrame {
            transmissions: scratch.spare_tx.pop().unwrap_or_default(),
        };
        slot1.transmissions.reserve_exact(n);
        for j in 0..g {
            for k in 0..d {
                let h = scratch.incoming_h[j * d + k] as usize;
                let i = scratch.incoming_i[j * d + k] as usize;
                let sender = t.processor(h, i);
                let receiver = t.processor(j, k);
                intermediate[sender] = receiver;
                slot1.transmissions.push(Transmission::unicast(
                    sender,
                    t.coupler_id(j, h),
                    sender,
                    receiver,
                ));
            }
        }

        // Slot 2: every packet is one hop from home (Fact 1). The coupler
        // c(group(dest), group(holder)) comes from the group table — no
        // divisions on the delivery path.
        let mut slot2 = SlotFrame {
            transmissions: scratch.spare_tx.pop().unwrap_or_default(),
        };
        slot2.transmissions.reserve_exact(n);
        for (p, &holder) in intermediate.iter().enumerate() {
            let dest = pi.apply(p);
            let coupler = scratch.group_lut[dest] as usize * g + scratch.group_lut[holder] as usize;
            slot2
                .transmissions
                .push(Transmission::unicast(holder, coupler, p, dest));
        }

        (
            Schedule {
                slots: vec![slot1, slot2],
            },
            intermediate,
        )
    }

    /// Schedule emission for `d > g` — `⌈d/g⌉` rounds of two slots,
    /// identical transmission order to the legacy `route_d_gt_g`.
    fn emit_d_gt_g(&mut self, pi: &Permutation) -> (Schedule, Vec<usize>) {
        let t = self.topology;
        let (d, g) = (t.d(), t.g());
        let n = t.n();
        let scratch = &mut self.scratch;
        ensure(&mut scratch.inv, g * d);
        ensure(&mut scratch.receivers, g * g);

        // inv[h·d + j] = the entry index i with f(h, i) = j (bijection).
        for h in 0..g {
            for i in 0..d {
                scratch.inv[h * d + scratch.fd_targets[h * d + i]] = i;
            }
        }

        let rounds = d.div_ceil(g);
        let mut slots = Vec::with_capacity(2 * rounds);
        let mut intermediate = scratch.spare_intermediate.pop().unwrap_or_default();
        intermediate.clear();
        intermediate.resize(n, NONE);

        for q in 0..rounds {
            let block = q * g..((q + 1) * g).min(d);
            let full_round = block.len() == g;

            // Receivers per destination group r (see the router docs): the
            // round's own senders for full rounds, processors r·d + h for
            // the final partial round.
            for r in 0..g {
                if full_round {
                    for (idx, j) in block.clone().enumerate() {
                        scratch.receivers[r * g + idx] = t.processor(r, scratch.inv[r * d + j]);
                    }
                    scratch.receivers[r * g..r * g + g].sort_unstable();
                } else {
                    for h in 0..g {
                        scratch.receivers[r * g + h] = t.processor(r, h);
                    }
                }
            }

            let mut slot1 = SlotFrame {
                transmissions: scratch.spare_tx.pop().unwrap_or_default(),
            };
            slot1.transmissions.reserve_exact(g * block.len());
            for h in 0..g {
                for j in block.clone() {
                    let r = j - q * g;
                    let sender = t.processor(h, scratch.inv[h * d + j]);
                    let receiver = scratch.receivers[r * g + h];
                    intermediate[sender] = receiver;
                    slot1.transmissions.push(Transmission::unicast(
                        sender,
                        t.coupler_id(r, h),
                        sender,
                        receiver,
                    ));
                }
            }

            // Second slot of the round: deliver the moved packets.
            let mut slot2 = SlotFrame {
                transmissions: scratch.spare_tx.pop().unwrap_or_default(),
            };
            slot2.transmissions.reserve_exact(slot1.transmissions.len());
            for tr in &slot1.transmissions {
                let packet = tr.packet;
                let holder = tr.receivers[0];
                let dest = pi.apply(packet);
                let coupler =
                    scratch.group_lut[dest] as usize * g + scratch.group_lut[holder] as usize;
                slot2
                    .transmissions
                    .push(Transmission::unicast(holder, coupler, packet, dest));
            }

            slots.push(slot1);
            slots.push(slot2);
        }

        (Schedule { slots }, intermediate)
    }
}

impl Router for RoutingEngine {
    fn plan(&mut self, req: &RoutingRequest<'_>) -> Result<RoutingOutcome, RoutingError> {
        let n = self.topology.n();
        let check = |len: usize| -> Result<(), RoutingError> {
            if len == n {
                Ok(())
            } else {
                Err(RoutingError::SizeMismatch {
                    expected: n,
                    got: len,
                })
            }
        };
        match *req {
            RoutingRequest::Theorem2 { pi } => {
                check(pi.len())?;
                Ok(RoutingOutcome::Plan(self.plan_theorem2(pi)))
            }
            RoutingRequest::SingleSlot { pi } => {
                check(pi.len())?;
                self.plan_single_slot(pi).map(RoutingOutcome::Schedule)
            }
            RoutingRequest::HRelation { relation } => {
                check(relation.n())?;
                Ok(RoutingOutcome::HRelation(self.plan_h_relation(relation)))
            }
            RoutingRequest::WithFaults { pi, faults } => {
                check(pi.len())?;
                self.plan_with_faults(pi, faults)
                    .map(RoutingOutcome::FaultTolerant)
            }
            RoutingRequest::DirectBaseline { pi } => {
                check(pi.len())?;
                Ok(RoutingOutcome::Schedule(self.plan_direct(pi)))
            }
            RoutingRequest::StructuredBaseline { pi } => {
                check(pi.len())?;
                self.plan_structured(pi).map(RoutingOutcome::Schedule)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    const SHAPES: [(usize, usize); 10] = [
        (1, 5),
        (2, 2),
        (2, 4),
        (3, 3),
        (3, 5),
        (4, 4),
        (4, 2),
        (6, 3),
        (7, 3),
        (5, 1),
    ];

    #[test]
    fn warm_engine_matches_legacy_route_for_all_colorers() {
        let mut rng = SplitMix64::new(900);
        for kind in ColorerKind::ALL {
            for (d, g) in SHAPES {
                let t = PopsTopology::new(d, g);
                let mut engine = RoutingEngine::with_colorer(t, kind).emit_artefacts(true);
                for _ in 0..3 {
                    let pi = random_permutation(d * g, &mut rng);
                    let legacy = crate::router::route(&pi, t, kind);
                    let from_engine = engine.plan_theorem2(&pi);
                    assert_eq!(
                        legacy.schedule,
                        from_engine.schedule,
                        "{} d={d} g={g}",
                        kind.name()
                    );
                    assert_eq!(legacy.intermediate, from_engine.intermediate);
                    assert_eq!(legacy.fair_distribution, from_engine.fair_distribution);
                    assert_eq!(legacy.list_system, from_engine.list_system);
                }
            }
        }
    }

    #[test]
    fn scratch_colorer_matches_legacy_alternating_pipeline() {
        let mut rng = SplitMix64::new(901);
        for (d, g) in SHAPES {
            if d == 1 {
                continue;
            }
            let t = PopsTopology::new(d, g);
            let mut engine = RoutingEngine::new(t);
            for _ in 0..3 {
                let pi = random_permutation(d * g, &mut rng);
                let ls = ListSystem::for_routing(&pi, d, g);
                let fd = FairDistribution::compute(&ls, ColorerKind::AlternatingPath);
                let targets = engine.fair_distribution_targets(&pi);
                for h in 0..g {
                    assert_eq!(
                        &targets[h * d..(h + 1) * d],
                        fd.targets_of(h),
                        "d={d} g={g} h={h}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_schedules_execute_and_deliver() {
        let mut rng = SplitMix64::new(902);
        for (d, g) in SHAPES {
            let t = PopsTopology::new(d, g);
            let mut engine = RoutingEngine::new(t);
            for _ in 0..4 {
                let pi = random_permutation(d * g, &mut rng);
                let plan = engine.plan_theorem2(&pi);
                assert_eq!(plan.schedule.slot_count(), theorem2_slots(d, g));
                let mut sim = Simulator::with_unit_packets(t);
                sim.execute_schedule(&plan.schedule)
                    .unwrap_or_else(|(i, e)| panic!("d={d} g={g} slot {i}: {e}"));
                sim.verify_delivery(pi.as_slice())
                    .unwrap_or_else(|e| panic!("d={d} g={g}: {e}"));
            }
        }
    }

    #[test]
    fn trait_dispatch_covers_all_six_paths() {
        let t = PopsTopology::new(2, 3);
        let mut engine = RoutingEngine::new(t);
        let pi = vector_reversal(6);
        let relation = HRelation::new(6, vec![(0, 1), (1, 0), (2, 5)]).unwrap();
        let faults = FaultSet::none(&t);

        assert!(matches!(
            engine.plan(&RoutingRequest::Theorem2 { pi: &pi }),
            Ok(RoutingOutcome::Plan(_))
        ));
        assert!(matches!(
            engine.plan(&RoutingRequest::HRelation {
                relation: &relation
            }),
            Ok(RoutingOutcome::HRelation(_))
        ));
        assert!(matches!(
            engine.plan(&RoutingRequest::WithFaults {
                pi: &pi,
                faults: &faults
            }),
            Ok(RoutingOutcome::FaultTolerant(_))
        ));
        assert!(matches!(
            engine.plan(&RoutingRequest::DirectBaseline { pi: &pi }),
            Ok(RoutingOutcome::Schedule(_))
        ));
        // Reversal on POPS(2, 3) concentrates demand: not one slot.
        assert!(matches!(
            engine.plan(&RoutingRequest::SingleSlot { pi: &pi }),
            Err(RoutingError::NotSingleSlotRoutable)
        ));
        // Reversal is group-uniform, so the structured baseline applies.
        assert!(matches!(
            engine.plan(&RoutingRequest::StructuredBaseline { pi: &pi }),
            Ok(RoutingOutcome::Schedule(_))
        ));
    }

    #[test]
    fn trait_rejects_size_mismatch_without_panicking() {
        let mut engine = RoutingEngine::new(PopsTopology::new(2, 3));
        let small = Permutation::identity(4);
        assert!(matches!(
            engine.plan(&RoutingRequest::Theorem2 { pi: &small }),
            Err(RoutingError::SizeMismatch {
                expected: 6,
                got: 4
            })
        ));
    }

    #[test]
    fn outcome_schedule_accessors() {
        let mut engine = RoutingEngine::new(PopsTopology::new(2, 2));
        let pi = vector_reversal(4);
        let outcome = engine.plan(&RoutingRequest::Theorem2 { pi: &pi }).unwrap();
        assert_eq!(outcome.schedule().slot_count(), 2);
        assert_eq!(outcome.into_schedule().slot_count(), 2);
    }

    #[test]
    fn artefacts_are_opt_in() {
        let t = PopsTopology::new(3, 4);
        let pi = vector_reversal(12);
        let mut hot = RoutingEngine::new(t);
        assert!(hot.plan_theorem2(&pi).fair_distribution.is_none());
        let mut debuggable = RoutingEngine::new(t).emit_artefacts(true);
        let plan = debuggable.plan_theorem2(&pi);
        assert!(plan.fair_distribution.is_some());
        assert!(plan.list_system.is_some());
        let fd = plan.fair_distribution.unwrap();
        let ls = plan.list_system.unwrap();
        fd.verify(&ls).unwrap();
    }

    #[test]
    fn warm_reset_and_footprint_hooks() {
        let t = PopsTopology::new(4, 4);
        let mut engine = RoutingEngine::new(t);
        assert_eq!(engine.arena_footprint(), 0, "fresh engine has no arenas");
        engine.warm();
        let warmed = engine.arena_footprint();
        assert!(warmed > 0, "warming must size the arenas");
        // A warm engine's arenas do not grow further on real requests.
        let pi = vector_reversal(16);
        let plan = engine.plan_theorem2(&pi);
        assert_eq!(plan.schedule.slot_count(), 2);
        assert_eq!(engine.arena_footprint(), warmed);
        engine.reset();
        assert_eq!(engine.arena_footprint(), 0, "reset releases the arenas");
        // And the engine still routes correctly after a reset.
        let plan = engine.plan_theorem2(&pi);
        assert_eq!(plan.schedule.slot_count(), 2);
    }

    #[test]
    fn set_emit_artefacts_matches_builder() {
        let t = PopsTopology::new(3, 4);
        let pi = vector_reversal(12);
        let mut engine = RoutingEngine::new(t);
        assert!(engine.plan_theorem2(&pi).fair_distribution.is_none());
        engine.set_emit_artefacts(true);
        assert!(engine.plan_theorem2(&pi).fair_distribution.is_some());
        engine.set_emit_artefacts(false);
        assert!(engine.plan_theorem2(&pi).fair_distribution.is_none());
    }

    #[test]
    fn error_display() {
        assert!(RoutingError::NotSingleSlotRoutable
            .to_string()
            .contains("single-slot"));
        assert!(RoutingError::SizeMismatch {
            expected: 6,
            got: 4
        }
        .to_string()
        .contains("does not match"));
        assert!(RoutingError::NotGroupUniform
            .to_string()
            .contains("group-uniform"));
    }

    #[test]
    fn reuse_across_many_permutations_is_stateless() {
        // Interleave wildly different permutations on one warm engine and
        // check each plan against a fresh engine's output.
        let (d, g) = (4, 6);
        let t = PopsTopology::new(d, g);
        let mut warm = RoutingEngine::new(t);
        let mut rng = SplitMix64::new(903);
        for round in 0..12 {
            let pi = if round % 3 == 0 {
                vector_reversal(d * g)
            } else {
                random_permutation(d * g, &mut rng)
            };
            let warm_plan = warm.plan_theorem2(&pi);
            let fresh_plan = RoutingEngine::new(t).plan_theorem2(&pi);
            assert_eq!(warm_plan.schedule, fresh_plan.schedule, "round {round}");
            assert_eq!(warm_plan.intermediate, fresh_plan.intermediate);
        }
    }
}
