//! The **Theorem 2** router: any permutation routes on POPS(d, g) in one
//! slot when `d = 1` and `2⌈d/g⌉` slots when `d > 1`.
//!
//! Three cases, exactly as in the paper's proof:
//!
//! * **`d = 1`** — the network is a clique (diameter 1, `n²` couplers):
//!   every packet goes directly through its private coupler in one slot.
//! * **`1 < d ≤ g`** — compute a fair distribution `f : N_g × N_d → N_g`
//!   for the routing list system. Slot 1 sends the packet of processor
//!   `i + h·d` through coupler `c(f(h,i), h)`; equation (1) rules out
//!   coupler conflicts, equation (2) delivers exactly `d` packets per group
//!   (assigned to its `d` processors in source-group order), and equation
//!   (3) makes the result *fairly distributed*, so slot 2 delivers directly
//!   (Fact 1). Two slots total.
//! * **`d > g`** — the fair distribution has `T = N_d`, so `f(h, ·)` is a
//!   bijection on `N_d`. Round `q` (of `⌈d/g⌉`) moves, for each source
//!   group `h`, the `g` packets with `f`-value in `[q·g, (q+1)·g)`: the
//!   packet with `f = q·g + r` goes through coupler `c(r, h)`. All `g`
//!   packets arriving at group `r` share that `f`-value, hence by equation
//!   (3) have pairwise distinct destination groups — the round's second
//!   slot delivers them conflict-free. Receivers are chosen among the
//!   processors of group `r` that already sent, preserving the paper's
//!   one-packet-per-processor invariant. The last round moves
//!   `g·(d mod g)` packets when `g ∤ d`.

use pops_bipartite::ColorerKind;
use pops_network::{PopsTopology, Schedule};
use pops_permutation::Permutation;

use crate::engine::RoutingEngine;
use crate::fair_distribution::FairDistribution;
use crate::list_system::ListSystem;

/// The slot count Theorem 2 guarantees: 1 when `d = 1`, else `2⌈d/g⌉`.
///
/// # Panics
///
/// Panics if `d == 0` or `g == 0`.
pub fn theorem2_slots(d: usize, g: usize) -> usize {
    assert!(d > 0 && g > 0, "d and g must be positive");
    if d == 1 {
        1
    } else {
        2 * d.div_ceil(g)
    }
}

/// A computed routing: the machine-level schedule plus the artefacts of the
/// construction (for inspection, examples, and the experiment harness).
#[derive(Debug, Clone)]
pub struct RoutingPlan {
    /// The topology routed on.
    pub topology: PopsTopology,
    /// The executable schedule; `schedule.slot_count()` equals
    /// [`theorem2_slots`] for the topology.
    pub schedule: Schedule,
    /// The fair distribution used (absent for the trivial `d = 1` case).
    pub fair_distribution: Option<FairDistribution>,
    /// The routing list system (absent for `d = 1`).
    pub list_system: Option<ListSystem>,
    /// Intermediate processor of each packet after its first hop
    /// (`intermediate[p] == p`'s position between the two hops; for `d = 1`
    /// this is just the destination).
    pub intermediate: Vec<usize>,
}

/// Routes permutation `pi` on `topology` per Theorem 2.
///
/// `colorer` selects the 1-factorization engine used by the underlying
/// Theorem-1 construction; the schedule's slot count is identical for all
/// engines.
///
/// This is a thin wrapper over a fresh [`RoutingEngine`] — the
/// construction itself (all three cases of the proof) lives in
/// [`crate::engine`]. Callers routing many permutations on one topology
/// should hold a [`RoutingEngine`] instead and reuse its arenas.
///
/// # Panics
///
/// Panics if `pi.len() != topology.n()`.
pub fn route(pi: &Permutation, topology: PopsTopology, colorer: ColorerKind) -> RoutingPlan {
    RoutingEngine::with_colorer(topology, colorer)
        .emit_artefacts(true)
        .plan_theorem2(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    /// Routes and fully simulates, asserting delivery, slot count, and the
    /// one-packet-per-processor invariant after every slot.
    fn check(pi: &Permutation, d: usize, g: usize, colorer: ColorerKind) {
        let topology = PopsTopology::new(d, g);
        let plan = route(pi, topology, colorer);
        assert_eq!(
            plan.schedule.slot_count(),
            theorem2_slots(d, g),
            "slot count d={d} g={g}"
        );
        let mut sim = Simulator::with_unit_packets(topology);
        for (idx, frame) in plan.schedule.slots.iter().enumerate() {
            sim.execute_frame(frame)
                .unwrap_or_else(|e| panic!("d={d} g={g} slot {idx}: {e}"));
            assert!(
                sim.in_transit_at_most_one(pi.as_slice()),
                "storage invariant broken after slot {idx} (d={d} g={g})"
            );
        }
        sim.verify_delivery(pi.as_slice())
            .unwrap_or_else(|e| panic!("d={d} g={g}: {e}"));
    }

    #[test]
    fn d1_routes_in_one_slot() {
        let mut rng = SplitMix64::new(80);
        for g in [1usize, 2, 5, 16] {
            let pi = random_permutation(g, &mut rng);
            check(&pi, 1, g, ColorerKind::default());
        }
    }

    #[test]
    fn d_le_g_routes_in_two_slots() {
        let mut rng = SplitMix64::new(81);
        for (d, g) in [(2usize, 2usize), (2, 4), (3, 5), (4, 4), (5, 8), (7, 7)] {
            let pi = random_permutation(d * g, &mut rng);
            check(&pi, d, g, ColorerKind::default());
        }
    }

    #[test]
    fn d_gt_g_routes_in_two_ceil_d_over_g_slots() {
        let mut rng = SplitMix64::new(82);
        for (d, g) in [(4usize, 2usize), (6, 3), (8, 4), (5, 2), (7, 3), (9, 4)] {
            let pi = random_permutation(d * g, &mut rng);
            check(&pi, d, g, ColorerKind::default());
        }
    }

    #[test]
    fn partial_last_round_cases() {
        // g does not divide d: exercises the g·(d mod g) partial round.
        let mut rng = SplitMix64::new(83);
        for (d, g) in [(3usize, 2usize), (5, 3), (7, 2), (11, 4), (13, 5)] {
            let pi = random_permutation(d * g, &mut rng);
            check(&pi, d, g, ColorerKind::default());
        }
    }

    #[test]
    fn single_group_edge_case() {
        // POPS(d, 1): one coupler; Theorem 2 gives 2d slots.
        let mut rng = SplitMix64::new(84);
        let d = 4;
        let pi = random_permutation(d, &mut rng);
        check(&pi, d, 1, ColorerKind::default());
    }

    #[test]
    fn identity_and_reversal_route_correctly() {
        for (d, g) in [(3usize, 3usize), (4, 2), (2, 4)] {
            check(&Permutation::identity(d * g), d, g, ColorerKind::default());
            check(&vector_reversal(d * g), d, g, ColorerKind::default());
        }
    }

    #[test]
    fn all_coloring_engines_give_valid_routings() {
        let mut rng = SplitMix64::new(85);
        for kind in ColorerKind::ALL {
            let pi = random_permutation(24, &mut rng);
            check(&pi, 4, 6, kind); // d <= g
            let pi = random_permutation(24, &mut rng);
            check(&pi, 6, 4, kind); // d > g
        }
    }

    #[test]
    fn figure3_permutation_routes_in_two_slots() {
        let pi = Permutation::new(vec![5, 1, 7, 2, 0, 6, 3, 8, 4]).unwrap();
        check(&pi, 3, 3, ColorerKind::default());
    }

    #[test]
    fn plan_exposes_construction_artefacts() {
        let pi = vector_reversal(12);
        let plan = route(&pi, PopsTopology::new(3, 4), ColorerKind::default());
        assert!(plan.fair_distribution.is_some());
        assert!(plan.list_system.is_some());
        assert_eq!(plan.intermediate.len(), 12);
        let plan1 = route(
            &vector_reversal(4),
            PopsTopology::new(1, 4),
            ColorerKind::default(),
        );
        assert!(plan1.fair_distribution.is_none());
    }

    #[test]
    fn theorem2_slots_formula() {
        assert_eq!(theorem2_slots(1, 10), 1);
        assert_eq!(theorem2_slots(2, 10), 2);
        assert_eq!(theorem2_slots(10, 10), 2);
        assert_eq!(theorem2_slots(11, 10), 4);
        assert_eq!(theorem2_slots(20, 10), 4);
        assert_eq!(theorem2_slots(21, 10), 6);
        assert_eq!(theorem2_slots(5, 1), 10);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_sizes() {
        let pi = Permutation::identity(5);
        let _ = route(&pi, PopsTopology::new(2, 3), ColorerKind::default());
    }
}
