//! Permutation routing on POPS networks — a full implementation of
//! Mei & Rizzi, *Routing Permutations in Partitioned Optical Passive Stars
//! Networks* (IPPS 2002, arXiv:cs/0109027).
//!
//! # The result
//!
//! A POPS(d, g) network (`n = d·g` processors, `g²` optical couplers; see
//! [`pops_network`]) can route **any** permutation `π` of its processors in
//!
//! * **1 slot** when `d = 1`, and
//! * **2⌈d/g⌉ slots** when `d > 1`,
//!
//! which is worst-case optimal and within a factor 2 of optimal for every
//! fixed-point-free permutation. This unified the previously piecemeal
//! results for hypercube/mesh simulation steps, BPC permutations, vector
//! reversal, and matrix transpose (Sahni 2000a, 2000b; Gravenstreter &
//! Melhem 1998).
//!
//! # Crate layout
//!
//! | module | paper artefact |
//! |---|---|
//! | [`list_system`] | list systems + properness (§3.1) |
//! | [`fair_distribution`] | fair distributions, constructive Theorem 1 |
//! | [`engine`] | the unified [`engine::RoutingEngine`]: every routing path behind one trait, zero-allocation hot path |
//! | [`router`] | the Theorem-2 router, all three cases (thin wrapper over the engine) |
//! | [`single_slot`] | one-slot routability (Gravenstreter–Melhem) |
//! | [`bounds`] | Propositions 1–3 lower bounds |
//! | [`verify`] | route → simulate → verify, the experiment primitive |
//! | [`h_relation`] | h-relations via König decomposition (extension) |
//! | [`fault_routing`] | greedy multi-hop routing around failed couplers (extension) |
//! | [`optimal`] | exact minimum-slot search on tiny instances (§3.3 yardstick) |
//! | [`compress`] | greedy schedule repacking (ablation/optimization) |
//! | [`diagnostics`] | human-readable plan reports |
//! | [`parallel`] | chunk-based engine-per-worker batch routing |
//!
//! # Quickstart
//!
//! ```
//! use pops_bipartite::ColorerKind;
//! use pops_core::verify::route_and_verify;
//! use pops_permutation::families::vector_reversal;
//!
//! // Route vector reversal on POPS(4, 4): Theorem 2 says 2 slots,
//! // Proposition 2 says no algorithm can do better.
//! let pi = vector_reversal(16);
//! let verdict = route_and_verify(&pi, 4, 4, ColorerKind::default()).unwrap();
//! assert_eq!(verdict.slots, 2);
//! assert_eq!(verdict.lower_bound, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod compress;
pub mod diagnostics;
pub mod engine;
pub mod fair_distribution;
pub mod fault_routing;
pub mod h_relation;
pub mod list_system;
pub mod optimal;
pub mod parallel;
pub mod router;
pub mod single_slot;
pub mod verify;

pub use bounds::lower_bound;
pub use compress::compress_schedule;
pub use engine::{
    ColoringKernel, Router, RoutingEngine, RoutingError, RoutingOutcome, RoutingRequest,
};
pub use fair_distribution::{FairDistribution, FairnessViolation};
pub use fault_routing::{route_greedy, route_with_faults, FaultRouting, FaultRoutingError};
pub use h_relation::{route_h_relation, HRelation, HRelationRouting};
pub use list_system::{ListSystem, ListSystemError};
pub use optimal::{min_slots_two_hop, routable_in, SearchOutcome};
pub use parallel::{route_batch, route_batch_with, BatchRouter};
pub use router::{route, theorem2_slots, RoutingPlan};
pub use single_slot::{is_single_slot_routable, route_single_slot};
pub use verify::{route_and_verify, RoutingFailure, VerifiedRouting};
