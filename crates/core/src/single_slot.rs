//! Single-slot routability — the Gravenstreter–Melhem characterization
//! (§2 of the paper).
//!
//! A permutation routes in **one** slot iff no coupler is demanded twice:
//! the group-to-group demand matrix of `π` must be 0/1 ("if two packets
//! originating at the same group are to be routed to the same destination
//! group, then one slot is obviously not enough"). Receiver conflicts
//! cannot occur for a permutation (destinations are distinct), so the
//! demand condition is also sufficient. When `d = 1` the condition holds
//! vacuously — the `d = 1` case of Theorem 2.

use pops_network::{PopsTopology, Schedule};
use pops_permutation::Permutation;

/// `true` iff `pi` is routable in a single slot on `topology`: the demand
/// matrix restricted to the packets that actually move (`π(i) ≠ i`) has no
/// entry above 1. Packets already at their destination never touch a
/// coupler, so they do not count against the demand.
///
/// # Panics
///
/// Panics if `pi.len() != topology.n()`.
pub fn is_single_slot_routable(pi: &Permutation, topology: &PopsTopology) -> bool {
    assert_eq!(pi.len(), topology.n(), "size mismatch");
    moving_demand(pi, topology)
        .iter()
        .flatten()
        .all(|&c| c <= 1)
}

/// The group-to-group demand matrix of the *moving* packets of `pi`
/// (fixed points excluded) — the per-coupler load of a direct routing.
pub fn moving_demand(pi: &Permutation, topology: &PopsTopology) -> Vec<Vec<usize>> {
    assert_eq!(pi.len(), topology.n(), "size mismatch");
    let g = topology.g();
    let mut demand = vec![vec![0usize; g]; g];
    for i in 0..pi.len() {
        let dest = pi.apply(i);
        if dest != i {
            demand[topology.group_of(i)][topology.group_of(dest)] += 1;
        }
    }
    demand
}

/// Builds the one-slot direct schedule if `pi` is single-slot routable,
/// else `None`. Fixed points stay put (no transmission); the identity
/// permutation yields a single empty slot.
///
/// Thin wrapper over [`crate::engine::RoutingEngine::plan_single_slot`];
/// hold an engine to reuse its demand-matrix arena across calls.
pub fn route_single_slot(pi: &Permutation, topology: &PopsTopology) -> Option<Schedule> {
    crate::engine::RoutingEngine::new(*topology)
        .plan_single_slot(pi)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{group_rotation, matrix_transpose, random_permutation};
    use pops_permutation::SplitMix64;

    #[test]
    fn d1_always_single_slot() {
        let mut rng = SplitMix64::new(100);
        let t = PopsTopology::new(1, 8);
        for _ in 0..10 {
            let pi = random_permutation(8, &mut rng);
            assert!(is_single_slot_routable(&pi, &t));
            let schedule = route_single_slot(&pi, &t).unwrap();
            let mut sim = Simulator::with_unit_packets(t);
            sim.execute_schedule(&schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn transpose_on_matching_block_is_single_slot() {
        // 4x4 transpose on POPS(4, 4): demand matrix is all-ones.
        let t = PopsTopology::new(4, 4);
        let pi = matrix_transpose(4, 4);
        assert!(is_single_slot_routable(&pi, &t));
        let schedule = route_single_slot(&pi, &t).unwrap();
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        assert_eq!(schedule.slot_count(), 1);
    }

    #[test]
    fn group_rotation_is_not_single_slot_for_d_gt_1() {
        // All d packets of a group share a destination group.
        let t = PopsTopology::new(3, 3);
        let pi = group_rotation(3, 3, 1);
        assert!(!is_single_slot_routable(&pi, &t));
        assert!(route_single_slot(&pi, &t).is_none());
    }

    #[test]
    fn identity_is_single_slot() {
        let t = PopsTopology::new(3, 2);
        let pi = Permutation::identity(6);
        assert!(is_single_slot_routable(&pi, &t));
    }

    #[test]
    fn figure3_permutation_needs_two_slots() {
        // §3: packets of processors 4 and 5 (group 1) both target group 0 —
        // the unavoidable conflict on coupler c(0, 1) the paper points out.
        let t = PopsTopology::new(3, 3);
        let pi = Permutation::new(vec![5, 1, 7, 2, 0, 6, 3, 8, 4]).unwrap();
        assert!(!is_single_slot_routable(&pi, &t));
        let demand = pi.demand_matrix(3);
        assert_eq!(demand[1][0], 2, "group 1 sends two packets to group 0");
    }
}
