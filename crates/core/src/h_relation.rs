//! Routing *h-relations* — the natural generalization of permutation
//! routing that the paper's machinery extends to directly.
//!
//! An **h-relation** is a communication pattern in which every processor is
//! the source of at most `h` packets and the destination of at most `h`
//! packets. Permutations are exactly the 1-relations with every processor
//! used once. The classic reduction (König again!): view the pattern as a
//! bipartite multigraph on sources × destinations with maximum degree
//! ≤ `h`; a proper `h`-edge-colouring splits it into `h` partial
//! permutations, each of which completes to a full permutation and routes
//! by Theorem 2. Total:
//!
//! * `h` slots when `d = 1`,
//! * `2h⌈d/g⌉` slots when `d > 1`,
//!
//! an `h`-fold of the paper's bound — and within a factor 2h/⌈h/…⌉ of the
//! trivial `⌈hn/g²⌉ = h⌈d/g⌉`-ish counting bound for dense relations.

use std::fmt;

use pops_bipartite::ColorerKind;
use pops_network::{PopsTopology, Schedule};
use pops_permutation::PartialPermutation;

/// A multiset of `(source, destination)` packet requests with per-node
/// multiplicity at most `h` on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HRelation {
    n: usize,
    requests: Vec<(usize, usize)>,
}

/// Why an [`HRelation`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HRelationError {
    /// A request endpoint is out of `0..n`.
    OutOfRange {
        /// Index of the offending request.
        request: usize,
    },
}

impl fmt::Display for HRelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HRelationError::OutOfRange { request } => {
                write!(f, "request {request} has an endpoint out of range")
            }
        }
    }
}

impl std::error::Error for HRelationError {}

impl HRelation {
    /// Creates an h-relation from raw requests on `n` processors.
    pub fn new(n: usize, requests: Vec<(usize, usize)>) -> Result<Self, HRelationError> {
        for (idx, &(src, dst)) in requests.iter().enumerate() {
            if src >= n || dst >= n {
                return Err(HRelationError::OutOfRange { request: idx });
            }
        }
        Ok(Self { n, requests })
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The requests.
    pub fn requests(&self) -> &[(usize, usize)] {
        &self.requests
    }

    /// The degree `h` of the relation: the maximum number of packets any
    /// processor sends or receives.
    pub fn h(&self) -> usize {
        let mut out_deg = vec![0usize; self.n];
        let mut in_deg = vec![0usize; self.n];
        for &(src, dst) in &self.requests {
            out_deg[src] += 1;
            in_deg[dst] += 1;
        }
        out_deg.into_iter().chain(in_deg).max().unwrap_or(0)
    }
}

/// The decomposition of an h-relation into at most `h` partial
/// permutations, plus the executable schedule routing all of them.
#[derive(Debug, Clone)]
pub struct HRelationRouting {
    /// The partial permutation of each routing phase, in order. The packet
    /// for request `(src, dst)` travels in the phase whose partial
    /// permutation maps `src` to `dst`.
    pub phases: Vec<PartialPermutation>,
    /// The concatenated schedule: slot block `k` (of `slots_per_phase`
    /// slots) routes phase `k`'s *batch* of packets — each processor
    /// injects the packet it sends in that phase at the block's start, so
    /// packet ids within a block are the batch's source processors. (The
    /// phases move disjoint batches; they are not one continuous packet
    /// lifetime, which is why the tests execute each block on a fresh
    /// simulator.)
    pub schedule: Schedule,
    /// Slots per phase (`theorem2_slots(d, g)` each).
    pub slots_per_phase: usize,
}

impl HRelationRouting {
    /// Assembles a routing from per-phase Theorem-2 schedules, in phase
    /// order — the inverse of the decomposition hook
    /// [`crate::engine::RoutingEngine::decompose_h_relation`]. `blocks[k]`
    /// must be the Theorem-2 schedule of `phases[k].complete()` on
    /// `topology` (each exactly `theorem2_slots(d, g)` slots); callers that
    /// cache phase plans (the service's level-2 cache) use this to stitch
    /// cache hits and freshly planned phases into one executable schedule.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len() != phases.len()` or any block has the wrong
    /// slot count.
    pub fn from_phase_schedules(
        topology: PopsTopology,
        phases: Vec<PartialPermutation>,
        blocks: Vec<Schedule>,
    ) -> Self {
        assert_eq!(phases.len(), blocks.len(), "one schedule block per phase");
        let slots_per_phase = crate::router::theorem2_slots(topology.d(), topology.g());
        let mut schedule = Schedule::new();
        for block in blocks {
            assert_eq!(
                block.slot_count(),
                slots_per_phase,
                "phase blocks must be theorem-2 schedules"
            );
            schedule.slots.extend(block.slots);
        }
        Self {
            phases,
            schedule,
            slots_per_phase,
        }
    }
}

/// Routes an h-relation on `topology`: König-decompose into `h` partial
/// permutations, complete each, route each by Theorem 2, concatenate.
///
/// The returned schedule uses `h · theorem2_slots(d, g)` slots. Note the
/// schedule routes the *completions*: filler packets (processors idle in a
/// phase) also move and return; the simulator-level tests in this module
/// verify that every request's packet is delivered in its phase.
///
/// Thin wrapper over [`crate::engine::RoutingEngine::plan_h_relation`],
/// which reuses one set of Theorem-2 arenas across all phases.
///
/// # Panics
///
/// Panics if `relation.n() != topology.n()`.
pub fn route_h_relation(
    relation: &HRelation,
    topology: PopsTopology,
    colorer: ColorerKind,
) -> HRelationRouting {
    crate::engine::RoutingEngine::with_colorer(topology, colorer).plan_h_relation(relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::SplitMix64;

    /// Generates a random h-relation where every processor sends exactly
    /// `h` packets and receives exactly `h` (a union of h permutations).
    fn random_h_relation(n: usize, h: usize, rng: &mut SplitMix64) -> HRelation {
        let mut requests = Vec::with_capacity(n * h);
        for _ in 0..h {
            let p = pops_permutation::families::random_permutation(n, rng);
            for src in 0..n {
                requests.push((src, p.apply(src)));
            }
        }
        HRelation::new(n, requests).unwrap()
    }

    /// Routes the relation phase by phase on fresh simulators and checks
    /// every request is satisfied in its phase.
    fn check(relation: &HRelation, d: usize, g: usize) -> HRelationRouting {
        let topology = PopsTopology::new(d, g);
        let routing = route_h_relation(relation, topology, ColorerKind::default());
        assert_eq!(
            routing.schedule.slot_count(),
            routing.phases.len() * routing.slots_per_phase
        );
        // Each phase is a contiguous block of slots routing its completed
        // permutation.
        for (idx, phase) in routing.phases.iter().enumerate() {
            let completed = phase.complete();
            let mut sim = Simulator::with_unit_packets(topology);
            let block = &routing.schedule.slots
                [idx * routing.slots_per_phase..(idx + 1) * routing.slots_per_phase];
            for frame in block {
                sim.execute_frame(frame)
                    .unwrap_or_else(|e| panic!("phase {idx}: {e}"));
            }
            sim.verify_delivery(completed.as_slice())
                .unwrap_or_else(|e| panic!("phase {idx}: {e}"));
        }
        routing
    }

    #[test]
    fn permutation_is_a_1_relation() {
        let mut rng = SplitMix64::new(50);
        let relation = random_h_relation(12, 1, &mut rng);
        assert_eq!(relation.h(), 1);
        let routing = check(&relation, 3, 4);
        assert_eq!(routing.phases.len(), 1);
    }

    #[test]
    fn routes_random_h_relations() {
        let mut rng = SplitMix64::new(51);
        for h in [2usize, 3, 5] {
            let relation = random_h_relation(12, h, &mut rng);
            assert_eq!(relation.h(), h);
            let routing = check(&relation, 4, 3);
            assert_eq!(routing.phases.len(), h);
            assert_eq!(routing.schedule.slot_count(), h * 4);
        }
    }

    #[test]
    fn every_request_covered_exactly_once() {
        let mut rng = SplitMix64::new(52);
        let relation = random_h_relation(8, 3, &mut rng);
        let routing = route_h_relation(&relation, PopsTopology::new(2, 4), ColorerKind::default());
        // Multisets of requests == union of the phases.
        let mut from_phases: Vec<(usize, usize)> = routing
            .phases
            .iter()
            .flat_map(|p| {
                p.as_slice()
                    .iter()
                    .enumerate()
                    .filter_map(|(src, dst)| dst.map(|d| (src, d)))
            })
            .collect();
        let mut original = relation.requests().to_vec();
        from_phases.sort_unstable();
        original.sort_unstable();
        assert_eq!(from_phases, original);
    }

    #[test]
    fn sparse_irregular_relation() {
        // A lopsided relation: processor 0 sends 3 packets, others few.
        let relation =
            HRelation::new(6, vec![(0, 1), (0, 2), (0, 3), (4, 0), (5, 0), (1, 5)]).unwrap();
        assert_eq!(relation.h(), 3);
        let routing = check(&relation, 2, 3);
        assert_eq!(routing.phases.len(), 3);
    }

    #[test]
    fn d1_h_relation_uses_h_slots() {
        let mut rng = SplitMix64::new(53);
        let relation = random_h_relation(6, 4, &mut rng);
        let routing = check(&relation, 1, 6);
        assert_eq!(routing.schedule.slot_count(), 4);
    }

    #[test]
    fn empty_relation() {
        let relation = HRelation::new(4, vec![]).unwrap();
        assert_eq!(relation.h(), 0);
        let routing = route_h_relation(&relation, PopsTopology::new(2, 2), ColorerKind::default());
        assert_eq!(routing.phases.len(), 0);
        assert_eq!(routing.schedule.slot_count(), 0);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = HRelation::new(3, vec![(0, 5)]).unwrap_err();
        assert_eq!(err, HRelationError::OutOfRange { request: 0 });
        assert!(err.to_string().contains("request 0"));
    }
}
