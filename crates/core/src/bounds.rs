//! Lower bounds on permutation routing — **Propositions 1–3** of §3.3.
//!
//! * **Proposition 1**: if `π(i) ≠ i` for all `i` (a derangement), at least
//!   `⌈d/g⌉` slots are needed — every packet needs a hop and the network
//!   moves at most `g²` packets per slot.
//! * **Proposition 2** (corrected — see [`proposition2`]): if additionally
//!   `π` maps groups onto groups (*group-uniform*) and
//!   `group(i) ≠ group(π(i))` for all `i` (*group-deranged*), at least
//!   `⌈d/(g−1)⌉` slots are needed (inter-group coupler bandwidth). The
//!   paper states `2⌈d/g⌉`, which exhaustive search refutes for `g ∤ d`;
//!   where the literature proves `2⌈d/g⌉` attained (e.g. vector reversal,
//!   even `g | d`) the corrected bound agrees, so the general router is
//!   still exactly optimal there.
//! * **Proposition 3**: for derangements that are group-uniform (groups may
//!   map to themselves), at least `2⌈d/(1+g)⌉` slots are needed.
//!
//! [`lower_bound`] combines all applicable bounds with the trivial ones
//! (0 for the identity, 1 otherwise).

use pops_permutation::Permutation;

/// Proposition 1: `⌈d/g⌉` when `π` is a derangement; `None` if the
/// hypothesis fails.
///
/// # Panics
///
/// Panics if `d·g != π.len()` or `d == 0 || g == 0`.
pub fn proposition1(pi: &Permutation, d: usize, g: usize) -> Option<usize> {
    check_shape(pi, d, g);
    pi.is_derangement().then(|| d.div_ceil(g))
}

/// Proposition 2, **corrected**: `⌈d/(g−1)⌉` when `π` is group-uniform
/// with `group(i) ≠ group(π(i))` everywhere; `None` if the hypothesis
/// fails.
///
/// The paper states `2⌈d/g⌉`, but that is **not a valid lower bound when
/// `g ∤ d`**: on POPS(3, 2) the wholesale group swap
/// `π = [3, 4, 5, 0, 1, 2]` (group-uniform, group-deranged) routes in
/// **3** slots — pair off the groups and ship one packet each way per slot
/// through `c(1, 0)` and `c(0, 1)` — and the exhaustive search of
/// [`crate::optimal`] confirms 3 is optimal, yet `2⌈3/2⌉ = 4`. The sound
/// counting argument in the same style: every packet must traverse at
/// least one *inter-group* coupler (its source and destination groups
/// differ), the network has `g(g−1)` inter-group couplers each carrying
/// one packet per slot, so `t ≥ ⌈dg / (g(g−1))⌉ = ⌈d/(g−1)⌉`. For the
/// shapes on which the prior literature proves `2⌈d/g⌉` attained (even
/// `g` dividing `d`, e.g. vector reversal on POPS(4, 2)), this corrected
/// bound coincides with the stated one; see EXPERIMENTS.md (T2, T12).
///
/// Note `d = 1` needs no special guard here: the bound degrades to 1,
/// consistent with Theorem 2's one-slot routing.
pub fn proposition2(pi: &Permutation, d: usize, g: usize) -> Option<usize> {
    check_shape(pi, d, g);
    // group-deranged requires g ≥ 2, so the division is well-defined.
    pi.is_group_deranged(d).then(|| d.div_ceil(g - 1))
}

/// Proposition 3: `⌈2d/(1+g)⌉` when `π` is a group-uniform derangement;
/// `None` if the hypothesis fails.
///
/// The paper states the bound as `2⌈d/(1+g)⌉`, but its own derivation —
/// `t·g² ≥ g·t + 2g(d−t)`, hence `t ≥ 2d/(1+g)` — yields `⌈2d/(1+g)⌉`,
/// which is weaker for some shapes (e.g. `d = 4, g = 2`: derivation gives
/// 3, the stated form 4) and, unlike the stated form, consistent with the
/// 1-slot `d = 1` routing. We implement the derivation-sound version; see
/// EXPERIMENTS.md.
pub fn proposition3(pi: &Permutation, d: usize, g: usize) -> Option<usize> {
    check_shape(pi, d, g);
    (pi.is_derangement() && pi.is_group_uniform(d)).then(|| (2 * d).div_ceil(1 + g))
}

/// The best lower bound provable from Propositions 1–3 plus the trivial
/// bounds: 0 for the identity, 1 for any non-identity permutation.
pub fn lower_bound(pi: &Permutation, d: usize, g: usize) -> usize {
    check_shape(pi, d, g);
    let trivial = usize::from(!pi.is_identity());
    trivial
        .max(proposition1(pi, d, g).unwrap_or(0))
        .max(proposition2(pi, d, g).unwrap_or(0))
        .max(proposition3(pi, d, g).unwrap_or(0))
}

/// The multiplicative optimality guarantee of Theorem 2 for derangements:
/// the achieved `2⌈d/g⌉` (or 1) is at most **twice** the Proposition-1
/// bound. Returns achieved / bound as a rational pair `(achieved, bound)`.
pub fn optimality_ratio(pi: &Permutation, d: usize, g: usize) -> Option<(usize, usize)> {
    let bound = lower_bound(pi, d, g);
    (bound > 0).then(|| (crate::router::theorem2_slots(d, g), bound))
}

fn check_shape(pi: &Permutation, d: usize, g: usize) {
    assert!(d > 0 && g > 0, "d and g must be positive");
    assert_eq!(d * g, pi.len(), "permutation length must equal n = d*g");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::{
        group_rotation, random_derangement, random_group_deranged, vector_reversal,
    };
    use pops_permutation::SplitMix64;

    #[test]
    fn proposition1_on_derangements() {
        let mut rng = SplitMix64::new(90);
        for (d, g) in [(2usize, 3usize), (6, 2), (5, 5)] {
            let pi = random_derangement(d * g, &mut rng);
            assert_eq!(proposition1(&pi, d, g), Some(d.div_ceil(g)));
        }
    }

    #[test]
    fn proposition1_rejects_fixed_points() {
        let pi = Permutation::identity(6);
        assert_eq!(proposition1(&pi, 2, 3), None);
    }

    #[test]
    fn proposition2_on_group_rotations() {
        let (d, g) = (6usize, 3usize);
        let pi = group_rotation(d, g, 1);
        // Corrected inter-group bandwidth bound: ⌈6/2⌉ = 3.
        assert_eq!(proposition2(&pi, d, g), Some(d.div_ceil(g - 1)));
    }

    #[test]
    fn proposition2_counterexample_to_stated_form() {
        // POPS(3, 2), wholesale group swap: the paper's stated bound would
        // be 2⌈3/2⌉ = 4, but a legal 3-slot schedule exists (verified
        // end-to-end by `optimal::tests` and experiment T12). The corrected
        // bound is ⌈3/1⌉ = 3 — tight.
        let pi = group_rotation(3, 2, 1);
        assert_eq!(proposition2(&pi, 3, 2), Some(3));
        assert!(proposition2(&pi, 3, 2).unwrap() < 2 * 3usize.div_ceil(2));
    }

    #[test]
    fn proposition2_on_even_g_reversal() {
        // The paper's tightness example: vector reversal with even g.
        let (d, g) = (4usize, 4usize);
        let pi = vector_reversal(d * g);
        assert_eq!(proposition2(&pi, d, g), Some(2));
        // Theorem 2 achieves exactly the bound here.
        assert_eq!(crate::router::theorem2_slots(d, g), 2);
    }

    #[test]
    fn proposition2_fails_on_odd_g_reversal() {
        // Odd g: the middle group maps to itself — hypothesis fails.
        let (d, g) = (4usize, 3usize);
        let pi = vector_reversal(d * g);
        assert_eq!(proposition2(&pi, d, g), None);
        // But Proposition 3 still applies if it is a derangement.
        assert_eq!(proposition3(&pi, d, g), Some((2 * d).div_ceil(1 + g)));
    }

    #[test]
    fn propositions_2_and_3_are_incomparable() {
        let mut rng = SplitMix64::new(91);
        // On POPS(8, 4) Prop 3 is the stronger of the two for the
        // group-deranged class: ⌈16/5⌉ = 4 > ⌈8/3⌉ = 3 …
        let pi = random_group_deranged(8, 4, &mut rng);
        assert_eq!(proposition2(&pi, 8, 4), Some(3));
        assert_eq!(proposition3(&pi, 8, 4), Some(4));
        // … while on POPS(4, 2) Prop 2 wins: ⌈4/1⌉ = 4 > ⌈8/3⌉ = 3.
        let pi = random_group_deranged(4, 2, &mut rng);
        assert_eq!(proposition2(&pi, 4, 2), Some(4));
        assert_eq!(proposition3(&pi, 4, 2), Some(3));
    }

    #[test]
    fn lower_bound_combines_all() {
        let (d, g) = (6usize, 3usize);
        let pi = group_rotation(d, g, 1);
        // Prop 2 (= ⌈6/2⌉ = 3) ties Prop 3 (= ⌈12/4⌉ = 3) and dominates
        // Prop 1 (= 2).
        assert_eq!(lower_bound(&pi, d, g), 3);
    }

    #[test]
    fn proposition2_consistent_at_d_equal_1() {
        // d = 1: every permutation routes in one slot (Theorem 2); the
        // corrected bound degrades to exactly 1, no guard needed.
        let pi = Permutation::new(vec![1, 0]).unwrap();
        assert!(pi.is_group_deranged(1));
        assert_eq!(proposition2(&pi, 1, 2), Some(1));
        assert_eq!(lower_bound(&pi, 1, 2), 1);
    }

    #[test]
    fn identity_lower_bound_is_zero() {
        assert_eq!(lower_bound(&Permutation::identity(6), 2, 3), 0);
    }

    #[test]
    fn non_identity_needs_at_least_one_slot() {
        let pi = Permutation::new(vec![1, 0, 2, 3, 4, 5]).unwrap();
        assert_eq!(lower_bound(&pi, 2, 3), 1);
    }

    #[test]
    fn theorem2_within_twice_prop1_for_derangements() {
        let mut rng = SplitMix64::new(92);
        for (d, g) in [(2usize, 2usize), (4, 2), (8, 4), (3, 6), (9, 3)] {
            let pi = random_derangement(d * g, &mut rng);
            let (achieved, bound) = optimality_ratio(&pi, d, g).unwrap();
            assert!(achieved <= 2 * bound, "d={d} g={g}: {achieved} > 2*{bound}");
        }
    }

    #[test]
    fn optimality_ratio_none_for_identity() {
        assert_eq!(optimality_ratio(&Permutation::identity(4), 2, 2), None);
    }
}
