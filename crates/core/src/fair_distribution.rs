//! Fair distributions and the constructive proof of **Theorem 1**.
//!
//! A *fair distribution* for a proper list system `(S, T, L)` is an
//! assignment `f : S × N_{Δ₁} → T` such that (equations (1)–(3) of the
//! paper):
//!
//! 1. `f(s, ·)` takes `Δ₁` distinct values for every source `s`;
//! 2. every target `t` is taken exactly `Δ₂ = n₁Δ₁/n₂` times;
//! 3. entries with equal list values get distinct targets:
//!    `L(s₁, i₁) = L(s₂, i₂) ∧ (s₁, i₁) ≠ (s₂, i₂) ⇒ f(s₁, i₁) ≠ f(s₂, i₂)`.
//!
//! **Theorem 1**: every proper list system admits one. The proof (followed
//! verbatim by [`FairDistribution::compute`]) builds the bipartite demand
//! multigraph `G = (S, S′)` with `l(s, s′)` parallel edges, pads it to an
//! `n₂`-regular multigraph ([`pops_bipartite::regularize::theorem1_pad`]),
//! 1-factorizes by König's theorem ([`pops_bipartite::coloring`]), and reads
//! the target of entry `(s, i)` off as the colour of its edge.

use std::collections::HashMap;
use std::fmt;

use pops_bipartite::regularize::theorem1_pad;
use pops_bipartite::{BipartiteMultigraph, ColorerKind};

use crate::list_system::ListSystem;

/// A fair distribution `f : S × N_{Δ₁} → T` (validated on construction in
/// debug builds; [`FairDistribution::verify`] re-checks on demand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairDistribution {
    n2: usize,
    /// `assignments[s][i] = f(s, i)`.
    assignments: Vec<Vec<usize>>,
}

/// A violation of the fair-distribution conditions, found by
/// [`FairDistribution::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FairnessViolation {
    /// Condition (1): `f(s, ·)` repeats a target.
    TargetRepeatedAtSource {
        /// The source with the repeated target.
        source: usize,
        /// The repeated target.
        target: usize,
    },
    /// Condition (2): a target's fibre has the wrong size.
    UnbalancedTarget {
        /// The target.
        target: usize,
        /// Fibre size found.
        count: usize,
        /// Expected fibre size `Δ₂`.
        expected: usize,
    },
    /// Condition (3): two entries with equal list value share a target.
    ConflictingPair {
        /// First entry `(s, i)`.
        first: (usize, usize),
        /// Second entry `(s, i)`.
        second: (usize, usize),
        /// The shared list value.
        value: usize,
        /// The shared target.
        target: usize,
    },
    /// Shape mismatch against the list system.
    ShapeMismatch,
}

impl fmt::Display for FairnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairnessViolation::TargetRepeatedAtSource { source, target } => {
                write!(f, "source {source} maps two entries to target {target}")
            }
            FairnessViolation::UnbalancedTarget {
                target,
                count,
                expected,
            } => write!(
                f,
                "target {target} assigned {count} entries, expected Δ2 = {expected}"
            ),
            FairnessViolation::ConflictingPair {
                first,
                second,
                value,
                target,
            } => write!(
                f,
                "entries {first:?} and {second:?} share list value {value} and target {target}"
            ),
            FairnessViolation::ShapeMismatch => write!(f, "shape mismatch with list system"),
        }
    }
}

impl std::error::Error for FairnessViolation {}

impl FairDistribution {
    /// Computes a fair distribution for a proper list system — the
    /// constructive Theorem 1.
    ///
    /// `colorer` selects the 1-factorization engine (Remark 1 of the paper
    /// discusses the asymptotics; all engines give valid results).
    ///
    /// # Panics
    ///
    /// Panics if the list system is not proper (Theorem 1's hypothesis).
    pub fn compute(ls: &ListSystem, colorer: ColorerKind) -> Self {
        assert!(
            ls.is_proper(),
            "Theorem 1 requires a proper list system (n1={}, n2={}, Δ1={})",
            ls.n1(),
            ls.n2(),
            ls.delta1()
        );
        let n1 = ls.n1();
        let delta1 = ls.delta1();

        // Demand multigraph G = (S, S'): one edge per list entry, inserted
        // in (s, i) lexicographic order so that edge id = s·Δ1 + i.
        let mut demand = BipartiteMultigraph::new(n1, n1);
        for s in 0..n1 {
            for i in 0..delta1 {
                demand.add_edge(s, ls.entry(s, i));
            }
        }

        // Pad per the proof of Theorem 1 and 1-factorize with n2 colours;
        // every colour class holds exactly Δ2 real edges.
        let padded = theorem1_pad(&demand, ls.n2());
        let coloring = colorer.color(&padded.graph);
        debug_assert!(ls.delta1() == 0 || coloring.num_colors == ls.n2());

        let assignments: Vec<Vec<usize>> = (0..n1)
            .map(|s| {
                (0..delta1)
                    .map(|i| coloring.colors[s * delta1 + i])
                    .collect()
            })
            .collect();
        let fd = Self {
            n2: ls.n2(),
            assignments,
        };
        debug_assert_eq!(fd.verify(ls), Ok(()));
        fd
    }

    /// Builds a fair distribution from explicit values (for tests and for
    /// the worked Figure-3 example).
    pub fn from_assignments(n2: usize, assignments: Vec<Vec<usize>>) -> Self {
        Self { n2, assignments }
    }

    /// `f(s, i)`.
    pub fn target(&self, s: usize, i: usize) -> usize {
        self.assignments[s][i]
    }

    /// Number of targets `n₂`.
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// All targets of source `s`, in list order.
    pub fn targets_of(&self, s: usize) -> &[usize] {
        &self.assignments[s]
    }

    /// For each source `s`, the inverse map target → entry index, with
    /// `usize::MAX` for unused targets. In the `d > g` routing case
    /// (`n₂ = Δ₁`) each `f(s, ·)` is a bijection, so every target is used.
    pub fn inverse_per_source(&self) -> Vec<Vec<usize>> {
        self.assignments
            .iter()
            .map(|targets| {
                let mut inv = vec![usize::MAX; self.n2];
                for (i, &t) in targets.iter().enumerate() {
                    inv[t] = i;
                }
                inv
            })
            .collect()
    }

    /// Verifies conditions (1)–(3) against the generating list system.
    pub fn verify(&self, ls: &ListSystem) -> Result<(), FairnessViolation> {
        let n1 = ls.n1();
        let delta1 = ls.delta1();
        if self.assignments.len() != n1
            || self.assignments.iter().any(|a| a.len() != delta1)
            || self.n2 != ls.n2()
        {
            return Err(FairnessViolation::ShapeMismatch);
        }

        // (1) per-source injectivity.
        for (s, targets) in self.assignments.iter().enumerate() {
            let mut seen = vec![false; self.n2];
            for &t in targets {
                if t >= self.n2 {
                    return Err(FairnessViolation::ShapeMismatch);
                }
                if seen[t] {
                    return Err(FairnessViolation::TargetRepeatedAtSource {
                        source: s,
                        target: t,
                    });
                }
                seen[t] = true;
            }
        }

        // (2) balanced fibres.
        let delta2 = ls.delta2();
        let mut counts = vec![0usize; self.n2];
        for targets in &self.assignments {
            for &t in targets {
                counts[t] += 1;
            }
        }
        for (t, &c) in counts.iter().enumerate() {
            if c != delta2 {
                return Err(FairnessViolation::UnbalancedTarget {
                    target: t,
                    count: c,
                    expected: delta2,
                });
            }
        }

        // (3) same list value ⇒ distinct targets: group entries by
        // (value, target) and require singleton groups.
        let mut seen: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for s in 0..n1 {
            for i in 0..delta1 {
                let key = (ls.entry(s, i), self.assignments[s][i]);
                if let Some(&first) = seen.get(&key) {
                    return Err(FairnessViolation::ConflictingPair {
                        first,
                        second: (s, i),
                        value: key.0,
                        target: key.1,
                    });
                }
                seen.insert(key, (s, i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::{Permutation, SplitMix64};

    fn routing_ls(pi: &Permutation, d: usize, g: usize) -> ListSystem {
        ListSystem::for_routing(pi, d, g)
    }

    #[test]
    fn theorem1_on_random_routing_systems_all_engines() {
        let mut rng = SplitMix64::new(70);
        for (d, g) in [
            (2usize, 2usize),
            (2, 4),
            (3, 5),
            (4, 4),
            (6, 3),
            (8, 2),
            (7, 7),
        ] {
            let pi = random_permutation(d * g, &mut rng);
            let ls = routing_ls(&pi, d, g);
            for kind in ColorerKind::ALL {
                let fd = FairDistribution::compute(&ls, kind);
                fd.verify(&ls)
                    .unwrap_or_else(|v| panic!("{} d={d} g={g}: {v}", kind.name()));
            }
        }
    }

    #[test]
    fn theorem1_case_d_gt_g_gives_bijections() {
        let mut rng = SplitMix64::new(71);
        let (d, g) = (9usize, 3usize);
        let pi = random_permutation(d * g, &mut rng);
        let ls = routing_ls(&pi, d, g);
        let fd = FairDistribution::compute(&ls, ColorerKind::default());
        fd.verify(&ls).unwrap();
        // n2 = d: each source's targets form a bijection on N_d.
        for h in 0..g {
            let mut ts = fd.targets_of(h).to_vec();
            ts.sort_unstable();
            assert_eq!(ts, (0..d).collect::<Vec<_>>());
        }
        // Inverse is total.
        for inv in fd.inverse_per_source() {
            assert!(inv.iter().all(|&i| i != usize::MAX));
        }
    }

    #[test]
    fn figure3_permutation_admits_fair_distribution() {
        // The POPS(3, 3) example of Figure 3.
        let pi = Permutation::new(vec![5, 1, 7, 2, 0, 6, 3, 8, 4]).unwrap();
        let ls = routing_ls(&pi, 3, 3);
        assert!(ls.is_proper());
        let fd = FairDistribution::compute(&ls, ColorerKind::default());
        fd.verify(&ls).unwrap();
    }

    #[test]
    fn verify_catches_condition_1_violation() {
        let ls = ListSystem::new(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let bad = FairDistribution::from_assignments(2, vec![vec![0, 0], vec![0, 1]]);
        assert!(matches!(
            bad.verify(&ls),
            Err(FairnessViolation::TargetRepeatedAtSource {
                source: 0,
                target: 0
            })
        ));
    }

    #[test]
    fn verify_catches_condition_2_violation() {
        // Injective per source but unbalanced fibres: n2=4, Δ1=2, n1=2,
        // Δ2=1, yet targets 0 and 1 are each used twice.
        let ls = ListSystem::new(4, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let bad = FairDistribution::from_assignments(4, vec![vec![0, 1], vec![0, 1]]);
        assert!(matches!(
            bad.verify(&ls),
            Err(FairnessViolation::UnbalancedTarget { .. })
        ));
    }

    #[test]
    fn verify_catches_condition_3_violation() {
        // Both sources list value 0 at position 0; give both target 0.
        let ls = ListSystem::new(2, vec![vec![0, 1], vec![0, 1]]).unwrap();
        let bad = FairDistribution::from_assignments(2, vec![vec![0, 1], vec![0, 1]]);
        assert!(matches!(
            bad.verify(&ls),
            Err(FairnessViolation::ConflictingPair {
                value: 0,
                target: 0,
                ..
            })
        ));
    }

    #[test]
    fn verify_catches_shape_mismatch() {
        let ls = ListSystem::new(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let bad = FairDistribution::from_assignments(2, vec![vec![0, 1]]);
        assert_eq!(bad.verify(&ls), Err(FairnessViolation::ShapeMismatch));
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn compute_rejects_improper_systems() {
        let ls = ListSystem::new(3, vec![vec![0, 0], vec![0, 1], vec![1, 2]]).unwrap();
        let _ = FairDistribution::compute(&ls, ColorerKind::default());
    }

    #[test]
    fn d_equals_1_routing_systems() {
        // d = 1: lists of length 1; n2 = g; Δ2 = 1 — f is a bijection of
        // sources to targets overall.
        let mut rng = SplitMix64::new(72);
        let g = 6;
        let pi = random_permutation(g, &mut rng);
        let ls = routing_ls(&pi, 1, g);
        let fd = FairDistribution::compute(&ls, ColorerKind::default());
        fd.verify(&ls).unwrap();
    }

    #[test]
    fn reversal_routing_system_fair() {
        for (d, g) in [(4usize, 4usize), (8, 4), (3, 6)] {
            let pi = vector_reversal(d * g);
            let ls = routing_ls(&pi, d, g);
            let fd = FairDistribution::compute(&ls, ColorerKind::default());
            fd.verify(&ls).unwrap();
        }
    }

    #[test]
    fn violation_display() {
        let v = FairnessViolation::UnbalancedTarget {
            target: 2,
            count: 3,
            expected: 1,
        };
        assert!(v.to_string().contains("target 2"));
    }
}
