//! Parallel batch routing: compute many routing plans concurrently.
//!
//! The routing computation is per-permutation independent (the fair
//! distribution, the colouring, the schedule emission touch no shared
//! state), so a batch of permutations — a round of hypercube simulation, a
//! sweep of experiment instances, a queue of application phases —
//! parallelizes embarrassingly across OS threads with scoped borrows.
//!
//! The executor is **chunk-based and engine-per-worker**: the batch and the
//! output vector are split into matching contiguous chunks with
//! [`slice::chunks`]/[`slice::chunks_mut`], and every worker owns one
//! [`RoutingEngine`] whose arenas warm up on its first permutation and are
//! reused for the rest of its chunk — no locks, no atomics, no shared
//! mutable state anywhere (disjoint `&mut` slices carry the results out).
//! No external dependency: `std::thread::scope` suffices, and the output
//! order matches the input order by construction.
//!
//! The engines live in a [`BatchRouter`], which **persists them across
//! calls**: the first batch grows each worker's arenas, every later batch
//! runs entirely on the warm hot path. Steady-state callers should use
//! [`BatchRouter::route_batch_into`], which recycles the previous batch's
//! plan buffers into the engines — the whole batch then re-emits into the
//! same cache-warm allocations, keeping 1-thread batch throughput at
//! single-plan level. The free functions ([`route_batch`],
//! [`route_batch_with`]) build a transient router per call — correct, but
//! they pay the arena growth every time; callers issuing repeated batches
//! should hold a `BatchRouter`.

use std::num::NonZeroUsize;

use pops_bipartite::ColorerKind;
use pops_network::PopsTopology;
use pops_permutation::Permutation;

use crate::engine::RoutingEngine;
use crate::router::RoutingPlan;

/// A persistent batch executor: one [`RoutingEngine`] per worker, created
/// on demand and **reused across batches**, so repeated [`BatchRouter::
/// route_batch`] calls stay on the engines' zero-allocation warm path
/// instead of re-growing arenas per call (the overhead that made the
/// transient 1-thread batch path slower than single-plan routing).
#[derive(Debug)]
pub struct BatchRouter {
    topology: PopsTopology,
    colorer: ColorerKind,
    emit_artefacts: bool,
    engines: Vec<RoutingEngine>,
}

impl BatchRouter {
    /// Creates an executor for `topology`; no engines are built until the
    /// first batch arrives (their count depends on the thread budget).
    pub fn new(topology: PopsTopology, colorer: ColorerKind) -> Self {
        Self {
            topology,
            colorer,
            emit_artefacts: false,
            engines: Vec::new(),
        }
    }

    /// Whether plans carry construction artefacts (off by default — the
    /// batch hot path normally wants schedules only).
    pub fn emit_artefacts(mut self, yes: bool) -> Self {
        self.emit_artefacts = yes;
        self
    }

    /// Non-consuming form of [`BatchRouter::emit_artefacts`], for routers
    /// held behind shared structures that switch modes per batch.
    pub fn set_emit_artefacts(&mut self, yes: bool) {
        self.emit_artefacts = yes;
    }

    /// Routes every permutation in `batch`, in input order, using up to
    /// `threads` workers (machine parallelism when `None`). Worker engines
    /// are created on first use and kept warm for subsequent batches.
    ///
    /// # Panics
    ///
    /// Panics (propagating the worker's panic) if any permutation's length
    /// does not match the topology.
    pub fn route_batch(
        &mut self,
        batch: &[Permutation],
        threads: Option<NonZeroUsize>,
    ) -> Vec<RoutingPlan> {
        let mut out = Vec::new();
        self.route_batch_into(batch, threads, &mut out);
        out
    }

    /// [`BatchRouter::route_batch`] with caller-owned output storage:
    /// `out` is drained — its previous plans are **recycled** into the
    /// worker engines ([`RoutingEngine::recycle`]) — and refilled with the
    /// new batch's plans in input order.
    ///
    /// This is the steady-state form for callers issuing batch after
    /// batch: handing the consumed plans back lets the engines re-emit
    /// into the same cache-warm allocations, so a 1-thread batch runs at
    /// (not below) single-plan throughput instead of paying the allocator
    /// for a batch's worth of cold plan memory per call.
    ///
    /// # Panics
    ///
    /// Panics (propagating the worker's panic) if any permutation's length
    /// does not match the topology.
    pub fn route_batch_into(
        &mut self,
        batch: &[Permutation],
        threads: Option<NonZeroUsize>,
        out: &mut Vec<RoutingPlan>,
    ) {
        let worker_count = threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get)
            .min(batch.len().max(1));
        while self.engines.len() < worker_count {
            self.engines
                .push(RoutingEngine::with_colorer(self.topology, self.colorer));
        }
        let emit = self.emit_artefacts;
        for engine in &mut self.engines[..worker_count] {
            engine.set_emit_artefacts(emit);
        }
        for (i, plan) in out.drain(..).enumerate() {
            self.engines[i % worker_count].recycle(plan);
        }

        if worker_count <= 1 || batch.len() <= 1 {
            let engine = &mut self.engines[0];
            out.extend(batch.iter().map(|pi| engine.plan_theorem2(pi)));
            return;
        }

        let mut results: Vec<Option<RoutingPlan>> = Vec::with_capacity(batch.len());
        results.resize_with(batch.len(), || None);
        let chunk_len = batch.len().div_ceil(worker_count);
        std::thread::scope(|scope| {
            for ((in_chunk, out_chunk), engine) in batch
                .chunks(chunk_len)
                .zip(results.chunks_mut(chunk_len))
                .zip(self.engines.iter_mut())
            {
                scope.spawn(move || {
                    for (pi, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(engine.plan_theorem2(pi));
                    }
                });
            }
        });
        out.extend(
            results
                .into_iter()
                .map(|r| r.expect("every chunk slot is filled by its worker")),
        );
    }

    /// The executor's topology.
    pub fn topology(&self) -> PopsTopology {
        self.topology
    }

    /// Approximate heap footprint of all worker arenas, in bytes.
    pub fn arena_footprint(&self) -> usize {
        self.engines
            .iter()
            .map(RoutingEngine::arena_footprint)
            .sum()
    }
}

/// Routes every permutation in `batch` on `topology`, using up to
/// `threads` worker threads (defaults to the machine's available
/// parallelism when `None`). Results are in input order, with construction
/// artefacts attached (the legacy contract of this function). Hot-path
/// callers that only consume schedules should use [`route_batch_with`]
/// with `emit_artefacts = false` and skip the per-plan artefact clones.
///
/// # Panics
///
/// Panics (propagating the worker's panic) if any permutation's length
/// does not match the topology.
pub fn route_batch(
    batch: &[Permutation],
    topology: PopsTopology,
    colorer: ColorerKind,
    threads: Option<NonZeroUsize>,
) -> Vec<RoutingPlan> {
    route_batch_with(batch, topology, colorer, threads, true)
}

/// [`route_batch`] with explicit control over artefact export. With
/// `emit_artefacts = false` the workers' plans carry schedule +
/// intermediate placements only — no per-plan list-system or
/// fair-distribution clones on the hot path.
pub fn route_batch_with(
    batch: &[Permutation],
    topology: PopsTopology,
    colorer: ColorerKind,
    threads: Option<NonZeroUsize>,
    emit_artefacts: bool,
) -> Vec<RoutingPlan> {
    BatchRouter::new(topology, colorer)
        .emit_artefacts(emit_artefacts)
        .route_batch(batch, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use pops_permutation::families::random_permutation;
    use pops_permutation::SplitMix64;

    fn batch(n: usize, count: usize, seed: u64) -> Vec<Permutation> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| random_permutation(n, &mut rng))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let topology = PopsTopology::new(4, 4);
        let perms = batch(16, 24, 70);
        let seq: Vec<_> = perms
            .iter()
            .map(|pi| route(pi, topology, ColorerKind::default()))
            .collect();
        let par = route_batch(&perms, topology, ColorerKind::default(), None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.schedule, b.schedule, "plans must be deterministic");
        }
    }

    #[test]
    fn single_thread_fallback() {
        let topology = PopsTopology::new(2, 3);
        let perms = batch(6, 5, 71);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(1),
        );
        assert_eq!(plans.len(), 5);
        for (pi, plan) in perms.iter().zip(&plans) {
            let mut sim = pops_network::Simulator::with_unit_packets(topology);
            sim.execute_schedule(&plan.schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn empty_batch() {
        let topology = PopsTopology::new(2, 2);
        assert!(route_batch(&[], topology, ColorerKind::default(), None).is_empty());
    }

    #[test]
    fn oversubscribed_thread_request() {
        let topology = PopsTopology::new(3, 3);
        let perms = batch(9, 3, 72);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(64),
        );
        assert_eq!(plans.len(), 3);
    }

    #[test]
    fn chunked_workers_cover_uneven_splits() {
        // 7 permutations over 3 workers: chunks of 3/3/1.
        let topology = PopsTopology::new(3, 2);
        let perms = batch(6, 7, 73);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(3),
        );
        assert_eq!(plans.len(), 7);
        for (pi, plan) in perms.iter().zip(&plans) {
            let fresh = route(pi, topology, ColorerKind::default());
            assert_eq!(plan.schedule, fresh.schedule);
        }
    }

    #[test]
    fn batch_plans_keep_artefacts() {
        let topology = PopsTopology::new(2, 4);
        let perms = batch(8, 4, 74);
        for plan in route_batch(&perms, topology, ColorerKind::default(), None) {
            assert!(plan.fair_distribution.is_some());
            assert!(plan.list_system.is_some());
        }
    }

    #[test]
    fn persistent_router_reuses_warm_engines() {
        let topology = PopsTopology::new(4, 4);
        let perms = batch(16, 8, 76);
        let mut router = BatchRouter::new(topology, ColorerKind::AlternatingPath);
        let first = router.route_batch(&perms, NonZeroUsize::new(2));
        let footprint = router.arena_footprint();
        assert!(footprint > 0, "first batch grows the worker arenas");
        let second = router.route_batch(&perms, NonZeroUsize::new(2));
        assert_eq!(
            router.arena_footprint(),
            footprint,
            "later batches must not re-grow arenas"
        );
        for ((a, b), pi) in first.iter().zip(&second).zip(&perms) {
            assert_eq!(a.schedule, b.schedule);
            let fresh = route(pi, topology, ColorerKind::AlternatingPath);
            assert_eq!(a.schedule, fresh.schedule);
        }
    }

    #[test]
    fn route_batch_into_recycles_and_matches_fresh_plans() {
        let topology = PopsTopology::new(4, 4);
        let perms = batch(16, 8, 78);
        let mut router = BatchRouter::new(topology, ColorerKind::AlternatingPath);
        let mut plans = Vec::new();
        router.route_batch_into(&perms, NonZeroUsize::new(1), &mut plans);
        assert_eq!(plans.len(), 8);
        let footprint = router.arena_footprint();
        // Recycling the previous batch keeps the footprint fixed: the new
        // plans are written into the recycled buffers, not fresh ones.
        router.route_batch_into(&perms, NonZeroUsize::new(1), &mut plans);
        assert_eq!(plans.len(), 8);
        assert_eq!(
            router.arena_footprint(),
            footprint,
            "recycled batches must not grow the arenas"
        );
        for (pi, plan) in perms.iter().zip(&plans) {
            let fresh = route(pi, topology, ColorerKind::AlternatingPath);
            assert_eq!(plan.schedule, fresh.schedule);
            assert_eq!(plan.intermediate, fresh.intermediate);
        }
    }

    #[test]
    fn route_batch_into_recycles_on_d_gt_g_rounds() {
        let topology = PopsTopology::new(8, 2);
        let perms = batch(16, 6, 79);
        let mut router = BatchRouter::new(topology, ColorerKind::AlternatingPath);
        let mut plans = Vec::new();
        for _ in 0..3 {
            router.route_batch_into(&perms, NonZeroUsize::new(1), &mut plans);
        }
        for (pi, plan) in perms.iter().zip(&plans) {
            let mut sim = pops_network::Simulator::with_unit_packets(topology);
            sim.execute_schedule(&plan.schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn persistent_router_toggles_artefacts_per_configuration() {
        let topology = PopsTopology::new(2, 4);
        let perms = batch(8, 3, 77);
        let mut with = BatchRouter::new(topology, ColorerKind::default()).emit_artefacts(true);
        for plan in with.route_batch(&perms, NonZeroUsize::new(1)) {
            assert!(plan.fair_distribution.is_some());
        }
        let mut without = BatchRouter::new(topology, ColorerKind::default());
        for plan in without.route_batch(&perms, NonZeroUsize::new(1)) {
            assert!(plan.fair_distribution.is_none());
        }
    }

    #[test]
    fn artefact_free_batch_matches_schedules() {
        let topology = PopsTopology::new(3, 3);
        let perms = batch(9, 6, 75);
        let with = route_batch(&perms, topology, ColorerKind::default(), None);
        let without = route_batch_with(&perms, topology, ColorerKind::default(), None, false);
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.schedule, b.schedule);
            assert!(b.fair_distribution.is_none());
            assert!(b.list_system.is_none());
        }
    }
}
