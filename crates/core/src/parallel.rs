//! Parallel batch routing: compute many routing plans concurrently.
//!
//! The routing computation is per-permutation independent (the fair
//! distribution, the colouring, the schedule emission touch no shared
//! state), so a batch of permutations — a round of hypercube simulation, a
//! sweep of experiment instances, a queue of application phases —
//! parallelizes embarrassingly across OS threads with scoped borrows.
//!
//! The executor is **chunk-based and engine-per-worker**: the batch and the
//! output vector are split into matching contiguous chunks with
//! [`slice::chunks`]/[`slice::chunks_mut`], and every worker owns one
//! [`RoutingEngine`] whose arenas warm up on its first permutation and are
//! reused for the rest of its chunk — no locks, no atomics, no shared
//! mutable state anywhere (disjoint `&mut` slices carry the results out).
//! No external dependency: `std::thread::scope` suffices, and the output
//! order matches the input order by construction.

use std::num::NonZeroUsize;

use pops_bipartite::ColorerKind;
use pops_network::PopsTopology;
use pops_permutation::Permutation;

use crate::engine::RoutingEngine;
use crate::router::RoutingPlan;

/// Routes every permutation in `batch` on `topology`, using up to
/// `threads` worker threads (defaults to the machine's available
/// parallelism when `None`). Results are in input order, with construction
/// artefacts attached (the legacy contract of this function). Hot-path
/// callers that only consume schedules should use [`route_batch_with`]
/// with `emit_artefacts = false` and skip the per-plan artefact clones.
///
/// # Panics
///
/// Panics (propagating the worker's panic) if any permutation's length
/// does not match the topology.
pub fn route_batch(
    batch: &[Permutation],
    topology: PopsTopology,
    colorer: ColorerKind,
    threads: Option<NonZeroUsize>,
) -> Vec<RoutingPlan> {
    route_batch_with(batch, topology, colorer, threads, true)
}

/// [`route_batch`] with explicit control over artefact export. With
/// `emit_artefacts = false` the workers' plans carry schedule +
/// intermediate placements only — no per-plan list-system or
/// fair-distribution clones on the hot path.
pub fn route_batch_with(
    batch: &[Permutation],
    topology: PopsTopology,
    colorer: ColorerKind,
    threads: Option<NonZeroUsize>,
    emit_artefacts: bool,
) -> Vec<RoutingPlan> {
    let worker_count = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(batch.len().max(1));

    if worker_count <= 1 || batch.len() <= 1 {
        let mut engine =
            RoutingEngine::with_colorer(topology, colorer).emit_artefacts(emit_artefacts);
        return batch.iter().map(|pi| engine.plan_theorem2(pi)).collect();
    }

    let mut results: Vec<Option<RoutingPlan>> = Vec::with_capacity(batch.len());
    results.resize_with(batch.len(), || None);
    let chunk_len = batch.len().div_ceil(worker_count);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in batch.chunks(chunk_len).zip(results.chunks_mut(chunk_len)) {
            scope.spawn(move || {
                let mut engine =
                    RoutingEngine::with_colorer(topology, colorer).emit_artefacts(emit_artefacts);
                for (pi, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(engine.plan_theorem2(pi));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use pops_permutation::families::random_permutation;
    use pops_permutation::SplitMix64;

    fn batch(n: usize, count: usize, seed: u64) -> Vec<Permutation> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| random_permutation(n, &mut rng))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let topology = PopsTopology::new(4, 4);
        let perms = batch(16, 24, 70);
        let seq: Vec<_> = perms
            .iter()
            .map(|pi| route(pi, topology, ColorerKind::default()))
            .collect();
        let par = route_batch(&perms, topology, ColorerKind::default(), None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.schedule, b.schedule, "plans must be deterministic");
        }
    }

    #[test]
    fn single_thread_fallback() {
        let topology = PopsTopology::new(2, 3);
        let perms = batch(6, 5, 71);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(1),
        );
        assert_eq!(plans.len(), 5);
        for (pi, plan) in perms.iter().zip(&plans) {
            let mut sim = pops_network::Simulator::with_unit_packets(topology);
            sim.execute_schedule(&plan.schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn empty_batch() {
        let topology = PopsTopology::new(2, 2);
        assert!(route_batch(&[], topology, ColorerKind::default(), None).is_empty());
    }

    #[test]
    fn oversubscribed_thread_request() {
        let topology = PopsTopology::new(3, 3);
        let perms = batch(9, 3, 72);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(64),
        );
        assert_eq!(plans.len(), 3);
    }

    #[test]
    fn chunked_workers_cover_uneven_splits() {
        // 7 permutations over 3 workers: chunks of 3/3/1.
        let topology = PopsTopology::new(3, 2);
        let perms = batch(6, 7, 73);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(3),
        );
        assert_eq!(plans.len(), 7);
        for (pi, plan) in perms.iter().zip(&plans) {
            let fresh = route(pi, topology, ColorerKind::default());
            assert_eq!(plan.schedule, fresh.schedule);
        }
    }

    #[test]
    fn batch_plans_keep_artefacts() {
        let topology = PopsTopology::new(2, 4);
        let perms = batch(8, 4, 74);
        for plan in route_batch(&perms, topology, ColorerKind::default(), None) {
            assert!(plan.fair_distribution.is_some());
            assert!(plan.list_system.is_some());
        }
    }

    #[test]
    fn artefact_free_batch_matches_schedules() {
        let topology = PopsTopology::new(3, 3);
        let perms = batch(9, 6, 75);
        let with = route_batch(&perms, topology, ColorerKind::default(), None);
        let without = route_batch_with(&perms, topology, ColorerKind::default(), None, false);
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.schedule, b.schedule);
            assert!(b.fair_distribution.is_none());
            assert!(b.list_system.is_none());
        }
    }
}
