//! Parallel batch routing: compute many routing plans concurrently.
//!
//! The routing computation is per-permutation independent (the fair
//! distribution, the colouring, the schedule emission touch no shared
//! state), so a batch of permutations — a round of hypercube simulation, a
//! sweep of experiment instances, a queue of application phases —
//! parallelizes embarrassingly across OS threads with scoped borrows. No
//! external dependency: `std::thread::scope` suffices, and the output
//! order matches the input order regardless of completion order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use pops_bipartite::ColorerKind;
use pops_network::PopsTopology;
use pops_permutation::Permutation;

use crate::router::{route, RoutingPlan};

/// Routes every permutation in `batch` on `topology`, using up to
/// `threads` worker threads (defaults to the machine's available
/// parallelism when `None`). Results are in input order.
///
/// # Panics
///
/// Panics (propagating the worker's panic) if any permutation's length
/// does not match the topology.
pub fn route_batch(
    batch: &[Permutation],
    topology: PopsTopology,
    colorer: ColorerKind,
    threads: Option<NonZeroUsize>,
) -> Vec<RoutingPlan> {
    let worker_count = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(batch.len().max(1));

    if worker_count <= 1 || batch.len() <= 1 {
        return batch
            .iter()
            .map(|pi| route(pi, topology, colorer))
            .collect();
    }

    let mut results: Vec<Option<RoutingPlan>> = Vec::with_capacity(batch.len());
    results.resize_with(batch.len(), || None);
    let next = AtomicUsize::new(0);
    // Hand each worker a disjoint set of output slots via chunked views:
    // simplest safe pattern — split the results vector into per-index
    // cells the workers claim through the atomic counter.
    {
        let cells: Vec<std::sync::Mutex<&mut Option<RoutingPlan>>> =
            results.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= batch.len() {
                        break;
                    }
                    let plan = route(&batch[idx], topology, colorer);
                    **cells[idx].lock().expect("cell lock") = Some(plan);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::random_permutation;
    use pops_permutation::SplitMix64;

    fn batch(n: usize, count: usize, seed: u64) -> Vec<Permutation> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| random_permutation(n, &mut rng))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let topology = PopsTopology::new(4, 4);
        let perms = batch(16, 24, 70);
        let seq: Vec<_> = perms
            .iter()
            .map(|pi| route(pi, topology, ColorerKind::default()))
            .collect();
        let par = route_batch(&perms, topology, ColorerKind::default(), None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.schedule, b.schedule, "plans must be deterministic");
        }
    }

    #[test]
    fn single_thread_fallback() {
        let topology = PopsTopology::new(2, 3);
        let perms = batch(6, 5, 71);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(1),
        );
        assert_eq!(plans.len(), 5);
        for (pi, plan) in perms.iter().zip(&plans) {
            let mut sim = pops_network::Simulator::with_unit_packets(topology);
            sim.execute_schedule(&plan.schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn empty_batch() {
        let topology = PopsTopology::new(2, 2);
        assert!(route_batch(&[], topology, ColorerKind::default(), None).is_empty());
    }

    #[test]
    fn oversubscribed_thread_request() {
        let topology = PopsTopology::new(3, 3);
        let perms = batch(9, 3, 72);
        let plans = route_batch(
            &perms,
            topology,
            ColorerKind::default(),
            NonZeroUsize::new(64),
        );
        assert_eq!(plans.len(), 3);
    }
}
