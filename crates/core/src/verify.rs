//! End-to-end verification: route, simulate, and check everything the
//! paper claims — the primitive behind every experiment in this
//! reproduction.

use std::fmt;

use pops_bipartite::ColorerKind;
use pops_network::{PopsTopology, ScheduleStats, SimError, Simulator};
use pops_permutation::Permutation;

use crate::bounds::lower_bound;
use crate::router::{route, theorem2_slots, RoutingPlan};

/// The outcome of a verified routing: the schedule executed on the
/// simulator, delivery confirmed, invariants checked.
#[derive(Debug, Clone)]
pub struct VerifiedRouting {
    /// Slots actually executed.
    pub slots: usize,
    /// The Theorem-2 guarantee for this topology.
    pub theorem2_slots: usize,
    /// The best provable lower bound (Propositions 1–3 + trivial).
    pub lower_bound: usize,
    /// Aggregate machine statistics.
    pub stats: ScheduleStats,
    /// Whether the in-transit storage invariant held after every slot.
    pub storage_invariant_held: bool,
    /// The plan that was executed (schedule + construction artefacts).
    pub plan: RoutingPlan,
}

/// Why a routing failed verification (never produced by the Theorem-2
/// router — surfaced so integration tests and fuzzing can prove that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingFailure {
    /// The simulator rejected a slot.
    SlotRejected {
        /// Index of the offending slot.
        slot: usize,
        /// The machine-model violation.
        error: SimError,
    },
    /// All slots executed but some packet is not at its destination.
    NotDelivered {
        /// Human-readable delivery error.
        detail: String,
    },
}

impl fmt::Display for RoutingFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingFailure::SlotRejected { slot, error } => {
                write!(f, "slot {slot} rejected by the machine model: {error}")
            }
            RoutingFailure::NotDelivered { detail } => write!(f, "not delivered: {detail}"),
        }
    }
}

impl std::error::Error for RoutingFailure {}

/// Routes `pi` on POPS(d, g) with the Theorem-2 router, executes the
/// schedule on the simulator, and verifies delivery. This is the single
/// entry point the experiments and most integration tests use.
pub fn route_and_verify(
    pi: &Permutation,
    d: usize,
    g: usize,
    colorer: ColorerKind,
) -> Result<VerifiedRouting, RoutingFailure> {
    let topology = PopsTopology::new(d, g);
    let plan = route(pi, topology, colorer);
    execute_plan(pi, plan)
}

/// Executes an existing plan on a fresh simulator and verifies delivery.
pub fn execute_plan(
    pi: &Permutation,
    plan: RoutingPlan,
) -> Result<VerifiedRouting, RoutingFailure> {
    let topology = plan.topology;
    let mut sim = Simulator::with_unit_packets(topology);
    let mut storage_invariant_held = true;
    for (idx, frame) in plan.schedule.slots.iter().enumerate() {
        sim.execute_frame(frame)
            .map_err(|error| RoutingFailure::SlotRejected { slot: idx, error })?;
        storage_invariant_held &= sim.in_transit_at_most_one(pi.as_slice());
    }
    sim.verify_delivery(pi.as_slice())
        .map_err(|e| RoutingFailure::NotDelivered {
            detail: e.to_string(),
        })?;
    Ok(VerifiedRouting {
        slots: sim.slots_elapsed(),
        theorem2_slots: theorem2_slots(topology.d(), topology.g()),
        lower_bound: lower_bound(pi, topology.d(), topology.g()),
        stats: sim.stats(),
        storage_invariant_held,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    #[test]
    fn verified_routing_reports_consistent_numbers() {
        let mut rng = SplitMix64::new(110);
        let (d, g) = (4usize, 6usize);
        let pi = random_permutation(d * g, &mut rng);
        let v = route_and_verify(&pi, d, g, ColorerKind::default()).unwrap();
        assert_eq!(v.slots, v.theorem2_slots);
        assert!(v.lower_bound <= v.slots);
        assert!(v.storage_invariant_held);
        assert_eq!(v.stats.slots, v.slots);
        // Two-hop routing of n packets: 2n deliveries.
        assert_eq!(v.stats.total_deliveries, 2 * d * g);
    }

    #[test]
    fn d1_verified_in_one_slot() {
        let mut rng = SplitMix64::new(111);
        let pi = random_permutation(9, &mut rng);
        let v = route_and_verify(&pi, 1, 9, ColorerKind::default()).unwrap();
        assert_eq!(v.slots, 1);
        assert_eq!(v.stats.total_deliveries, 9);
    }

    #[test]
    fn reversal_meets_the_lower_bound_exactly_when_g_divides_d() {
        // Even g dividing d: achieved == lower bound == 2d/g — Theorem 2
        // provably optimal (corrected Prop 2 at (4, 2), Prop 3 at (8, 4)).
        for (d, g) in [(4usize, 2usize), (8, 4)] {
            let pi = vector_reversal(d * g);
            let v = route_and_verify(&pi, d, g, ColorerKind::default()).unwrap();
            assert_eq!(v.slots, v.lower_bound, "POPS({d}, {g})");
            assert_eq!(v.slots, 2 * d / g);
        }
    }

    #[test]
    fn failure_display() {
        let f = RoutingFailure::NotDelivered {
            detail: "packet 3 adrift".into(),
        };
        assert!(f.to_string().contains("packet 3"));
    }
}
