//! List systems — the abstraction of §3.1 of the paper.
//!
//! A *list system* is a triple `(S, T, L)`: `S` a set of `n₁` source nodes,
//! `T` a set of `n₂` target nodes, and `L` assigning to every source a list
//! of `Δ₁ ≤ n₂` (not necessarily distinct) elements **of S**. `l(s, s′)`
//! counts occurrences of `s′` in the list of `s`. The system is *proper*
//! when `n₂ | n₁Δ₁` and every `s′` appears exactly `Δ₁` times across all
//! lists.
//!
//! Permutation routing instantiates this with `S = N_g` (the groups),
//! `L(h, i) = group(π(i + h·d))` (the destination groups of group `h`'s
//! packets), and `T = N_g` when `d ≤ g` or `T = N_d` when `d > g`; both are
//! proper because `π` is a permutation ([`ListSystem::for_routing`]).

use std::fmt;

use pops_permutation::{group_of, Permutation};

/// A list system `(S, T, L)` with `S = N_{n1}`, `T = N_{n2}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListSystem {
    n2: usize,
    /// `lists[s][i]` = the `i`-th element (in `S`) of source `s`'s list.
    /// All lists have equal length `Δ₁`.
    lists: Vec<Vec<usize>>,
}

/// Why a [`ListSystem`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListSystemError {
    /// Lists have differing lengths.
    RaggedLists {
        /// Length of list 0.
        first: usize,
        /// Index of a list with a different length.
        source: usize,
        /// That list's length.
        len: usize,
    },
    /// A list entry is not a valid source index.
    EntryOutOfRange {
        /// The source whose list is bad.
        source: usize,
        /// The position in the list.
        position: usize,
        /// The offending entry.
        entry: usize,
    },
    /// `Δ₁ > n₂` (lists longer than the target set).
    ListTooLong {
        /// The list length Δ₁.
        delta1: usize,
        /// The target count n₂.
        n2: usize,
    },
}

impl fmt::Display for ListSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListSystemError::RaggedLists { first, source, len } => write!(
                f,
                "list of source {source} has length {len}, expected {first}"
            ),
            ListSystemError::EntryOutOfRange {
                source,
                position,
                entry,
            } => write!(
                f,
                "entry {entry} at position {position} of source {source}'s list is not a source"
            ),
            ListSystemError::ListTooLong { delta1, n2 } => {
                write!(f, "list length Δ1={delta1} exceeds target count n2={n2}")
            }
        }
    }
}

impl std::error::Error for ListSystemError {}

impl ListSystem {
    /// Creates a list system from explicit lists. All lists must have equal
    /// length `Δ₁ ≤ n₂`, with entries in `0..lists.len()`.
    pub fn new(n2: usize, lists: Vec<Vec<usize>>) -> Result<Self, ListSystemError> {
        let n1 = lists.len();
        let delta1 = lists.first().map_or(0, Vec::len);
        if delta1 > n2 {
            return Err(ListSystemError::ListTooLong { delta1, n2 });
        }
        for (s, list) in lists.iter().enumerate() {
            if list.len() != delta1 {
                return Err(ListSystemError::RaggedLists {
                    first: delta1,
                    source: s,
                    len: list.len(),
                });
            }
            for (i, &entry) in list.iter().enumerate() {
                if entry >= n1 {
                    return Err(ListSystemError::EntryOutOfRange {
                        source: s,
                        position: i,
                        entry,
                    });
                }
            }
        }
        Ok(Self { n2, lists })
    }

    /// The routing list system of Theorem 2: `S = N_g`,
    /// `L(h, i) = group(π(i + h·d))`, and `T = N_g` if `d ≤ g` else `N_d`.
    ///
    /// # Panics
    ///
    /// Panics if `d·g != π.len()` or `d == 0 || g == 0`.
    pub fn for_routing(pi: &Permutation, d: usize, g: usize) -> Self {
        assert!(d > 0 && g > 0, "d and g must be positive");
        assert_eq!(d * g, pi.len(), "permutation length must equal n = d*g");
        let n2 = g.max(d);
        let lists = (0..g)
            .map(|h| (0..d).map(|i| group_of(pi.apply(h * d + i), d)).collect())
            .collect();
        Self { n2, lists }
    }

    /// Number of sources `n₁`.
    pub fn n1(&self) -> usize {
        self.lists.len()
    }

    /// Number of targets `n₂`.
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// List length `Δ₁`.
    pub fn delta1(&self) -> usize {
        self.lists.first().map_or(0, Vec::len)
    }

    /// `Δ₂ = n₁Δ₁ / n₂` — the size of each target's fibre in a fair
    /// distribution. Only meaningful for proper systems.
    pub fn delta2(&self) -> usize {
        (self.n1() * self.delta1())
            .checked_div(self.n2)
            .unwrap_or(0)
    }

    /// The `i`-th entry of source `s`'s list — the paper's `L(s, i)`.
    pub fn entry(&self, s: usize, i: usize) -> usize {
        self.lists[s][i]
    }

    /// The full list of source `s`.
    pub fn list(&self, s: usize) -> &[usize] {
        &self.lists[s]
    }

    /// `l(s, s′)` — multiplicity of `s′` in the list of `s`.
    pub fn multiplicity(&self, s: usize, s_prime: usize) -> usize {
        self.lists[s].iter().filter(|&&e| e == s_prime).count()
    }

    /// Properness check: `n₂ | n₁Δ₁` and `Σ_s l(s, s′) = Δ₁` for all `s′`.
    pub fn is_proper(&self) -> bool {
        let n1 = self.n1();
        let delta1 = self.delta1();
        // n2 must divide n1*Δ1 (with n2 == 0 only the empty system passes).
        if !(n1 * delta1).is_multiple_of(self.n2) {
            return n1 * delta1 == 0;
        }
        let mut counts = vec![0usize; n1];
        for list in &self.lists {
            for &e in list {
                counts[e] += 1;
            }
        }
        counts.iter().all(|&c| c == delta1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    #[test]
    fn proper_example_from_construction() {
        // Each of 3 sources appears exactly twice across all lists.
        let ls = ListSystem::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]).unwrap();
        assert!(ls.is_proper());
        assert_eq!(ls.delta1(), 2);
        assert_eq!(ls.delta2(), 2);
        assert_eq!(ls.multiplicity(0, 1), 1);
    }

    #[test]
    fn improper_when_counts_unbalanced() {
        let ls = ListSystem::new(3, vec![vec![0, 0], vec![0, 2], vec![2, 1]]).unwrap();
        assert!(!ls.is_proper());
    }

    #[test]
    fn improper_when_divisibility_fails() {
        // n1*Δ1 = 4, n2 = 3: 3 does not divide 4.
        let ls = ListSystem::new(3, vec![vec![0, 1], vec![1, 0]]).unwrap();
        assert!(!ls.is_proper());
    }

    #[test]
    fn rejects_ragged_lists() {
        let err = ListSystem::new(3, vec![vec![0, 1], vec![0]]).unwrap_err();
        assert!(matches!(
            err,
            ListSystemError::RaggedLists { source: 1, .. }
        ));
    }

    #[test]
    fn rejects_out_of_range_entries() {
        let err = ListSystem::new(3, vec![vec![0, 5], vec![0, 1]]).unwrap_err();
        assert!(matches!(
            err,
            ListSystemError::EntryOutOfRange { entry: 5, .. }
        ));
    }

    #[test]
    fn rejects_overlong_lists() {
        let err = ListSystem::new(1, vec![vec![0, 0]]).unwrap_err();
        assert!(matches!(
            err,
            ListSystemError::ListTooLong { delta1: 2, n2: 1 }
        ));
    }

    #[test]
    fn routing_system_is_always_proper() {
        let mut rng = SplitMix64::new(14);
        for (d, g) in [(1usize, 5usize), (2, 4), (4, 4), (6, 3), (8, 2), (5, 5)] {
            let pi = random_permutation(d * g, &mut rng);
            let ls = ListSystem::for_routing(&pi, d, g);
            assert!(ls.is_proper(), "d={d} g={g}");
            assert_eq!(ls.n1(), g);
            assert_eq!(ls.delta1(), d);
            assert_eq!(ls.n2(), g.max(d));
            // Δ2 as in the paper: d when d<=g, g when d>g.
            assert_eq!(ls.delta2(), if d <= g { d } else { g });
        }
    }

    #[test]
    fn routing_system_entries_are_destination_groups() {
        let d = 3;
        let g = 4;
        let pi = vector_reversal(d * g);
        let ls = ListSystem::for_routing(&pi, d, g);
        // Reversal sends group h to group g-1-h: list of h is constant.
        for h in 0..g {
            assert_eq!(ls.list(h), &[g - 1 - h; 3][..]);
        }
    }

    #[test]
    fn error_display() {
        let err = ListSystem::new(2, vec![vec![0], vec![0, 1]]).unwrap_err();
        assert!(err.to_string().contains("length"));
    }
}
