//! Schedule compression: a greedy list-scheduling pass that repacks
//! transmissions into the earliest conflict-free slot while respecting
//! each packet's hop order.
//!
//! Theorem 2's schedules are already slot-optimal in the worst case, but
//! concrete instances can have slack: e.g. a round-based `d > g` schedule
//! whose later rounds' first hops don't actually conflict with earlier
//! rounds' second hops, or a two-hop schedule for a permutation that was
//! single-slot routable all along. The compressor is the ablation tool for
//! experiment T6's crossover analysis — and a useful post-pass for
//! application-generated schedules.
//!
//! Constraints preserved per slot: one sender per coupler, one read per
//! receiver, one packet per sender, and per-packet hop precedence (hop
//! `k+1` may not be scheduled before hop `k` has *completed*, i.e. strictly
//! later). Wiring and possession follow automatically from preserving hop
//! order, as the simulator-backed tests confirm.

use std::collections::HashMap;

use pops_network::{Schedule, SlotFrame, Transmission};

/// Greedily repacks `schedule` into (possibly) fewer slots.
///
/// Deterministic; never increases the slot count; the output delivers each
/// packet along the same coupler path in the same hop order.
pub fn compress_schedule(schedule: &Schedule) -> Schedule {
    // earliest_slot[packet] = first slot index the packet's next hop may
    // occupy (one past the slot of its previous hop).
    let mut earliest_slot: HashMap<usize, usize> = HashMap::new();
    // Per-slot occupancy of the output.
    let mut coupler_used: Vec<HashMap<usize, ()>> = Vec::new();
    let mut receiver_used: Vec<HashMap<usize, ()>> = Vec::new();
    let mut sender_packet: Vec<HashMap<usize, usize>> = Vec::new();
    let mut out: Vec<SlotFrame> = Vec::new();

    let ensure_slot = |idx: usize,
                       out: &mut Vec<SlotFrame>,
                       coupler_used: &mut Vec<HashMap<usize, ()>>,
                       receiver_used: &mut Vec<HashMap<usize, ()>>,
                       sender_packet: &mut Vec<HashMap<usize, usize>>| {
        while out.len() <= idx {
            out.push(SlotFrame::new());
            coupler_used.push(HashMap::new());
            receiver_used.push(HashMap::new());
            sender_packet.push(HashMap::new());
        }
    };

    for frame in &schedule.slots {
        for t in &frame.transmissions {
            let min_slot = earliest_slot.get(&t.packet).copied().unwrap_or(0);
            let mut slot = min_slot;
            loop {
                ensure_slot(
                    slot,
                    &mut out,
                    &mut coupler_used,
                    &mut receiver_used,
                    &mut sender_packet,
                );
                let coupler_free = !coupler_used[slot].contains_key(&t.coupler);
                let receivers_free = t
                    .receivers
                    .iter()
                    .all(|r| !receiver_used[slot].contains_key(r));
                let sender_ok = match sender_packet[slot].get(&t.sender) {
                    None => true,
                    Some(&p) => p == t.packet,
                };
                if coupler_free && receivers_free && sender_ok {
                    break;
                }
                slot += 1;
            }
            coupler_used[slot].insert(t.coupler, ());
            for &r in &t.receivers {
                receiver_used[slot].insert(r, ());
            }
            sender_packet[slot].insert(t.sender, t.packet);
            out[slot].transmissions.push(Transmission {
                sender: t.sender,
                coupler: t.coupler,
                packet: t.packet,
                receivers: t.receivers.clone(),
            });
            earliest_slot.insert(t.packet, slot + 1);
        }
    }

    // Drop trailing empty slots (none should exist, but be safe).
    while out.last().is_some_and(|s| s.transmissions.is_empty()) {
        out.pop();
    }
    Schedule { slots: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use pops_bipartite::ColorerKind;
    use pops_network::{PopsTopology, Simulator};
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    fn roundtrip(pi: &pops_permutation::Permutation, d: usize, g: usize) -> (usize, usize) {
        let topology = PopsTopology::new(d, g);
        let plan = route(pi, topology, ColorerKind::default());
        let compressed = compress_schedule(&plan.schedule);
        assert!(compressed.slot_count() <= plan.schedule.slot_count());
        let mut sim = Simulator::with_unit_packets(topology);
        sim.execute_schedule(&compressed)
            .unwrap_or_else(|(i, e)| panic!("slot {i}: {e}"));
        sim.verify_delivery(pi.as_slice()).unwrap();
        (plan.schedule.slot_count(), compressed.slot_count())
    }

    #[test]
    fn compression_preserves_delivery() {
        let mut rng = SplitMix64::new(60);
        for (d, g) in [(2usize, 3usize), (4, 4), (6, 2), (5, 3), (1, 8)] {
            let pi = random_permutation(d * g, &mut rng);
            roundtrip(&pi, d, g);
        }
    }

    #[test]
    fn already_tight_schedules_stay_tight() {
        // d <= g two-slot schedules cannot compress below 2 when some
        // group pair carries two packets.
        let pi = vector_reversal(16);
        let (before, after) = roundtrip(&pi, 4, 4);
        assert_eq!(before, 2);
        assert_eq!(after, 2);
    }

    #[test]
    fn identity_two_hop_compresses() {
        // Routing the identity with the general router wastes hops; the
        // compressor cannot remove hops (it preserves paths) but packs the
        // two hops of different packets tightly. Verify only legality +
        // no-increase here.
        let pi = pops_permutation::Permutation::identity(12);
        let (before, after) = roundtrip(&pi, 3, 4);
        assert!(after <= before);
    }

    #[test]
    fn multi_round_schedules_may_shrink() {
        // d > g: rounds serialize hops; slack exists when a later round's
        // first hop uses couplers idle in an earlier round's second hop.
        let mut rng = SplitMix64::new(61);
        let (d, g) = (8usize, 2usize);
        let pi = random_permutation(d * g, &mut rng);
        let (before, after) = roundtrip(&pi, d, g);
        assert_eq!(before, 8);
        assert!(after <= before);
    }

    #[test]
    fn hop_order_is_preserved() {
        let mut rng = SplitMix64::new(62);
        let (d, g) = (6usize, 3usize);
        let pi = random_permutation(d * g, &mut rng);
        let topology = PopsTopology::new(d, g);
        let plan = route(&pi, topology, ColorerKind::default());
        let compressed = compress_schedule(&plan.schedule);
        // For each packet, the sequence of couplers must be identical.
        let path = |s: &Schedule| {
            let mut per_packet: std::collections::HashMap<usize, Vec<usize>> =
                std::collections::HashMap::new();
            for frame in &s.slots {
                for t in &frame.transmissions {
                    per_packet.entry(t.packet).or_default().push(t.coupler);
                }
            }
            per_packet
        };
        assert_eq!(path(&plan.schedule), path(&compressed));
    }

    #[test]
    fn empty_schedule() {
        let s = compress_schedule(&Schedule::new());
        assert_eq!(s.slot_count(), 0);
    }
}
