//! Human-readable routing diagnostics: slot-by-slot reports of a
//! [`RoutingPlan`], with per-slot coupler utilization and fairness
//! annotations — the textual companion to Figure 3 used by the examples
//! and the experiment harness.

use std::fmt::Write as _;

use pops_network::{Schedule, SlotFrame};
use pops_permutation::Permutation;

use crate::router::RoutingPlan;

/// A per-slot summary of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSummary {
    /// Slot index.
    pub index: usize,
    /// Couplers driven.
    pub couplers_used: usize,
    /// Deliveries made.
    pub deliveries: usize,
    /// Fraction of the `g²` couplers driven.
    pub utilization: f64,
}

/// Summarizes every slot of a schedule against a topology's coupler count.
pub fn summarize_schedule(schedule: &Schedule, coupler_count: usize) -> Vec<SlotSummary> {
    schedule
        .slots
        .iter()
        .enumerate()
        .map(|(index, frame)| SlotSummary {
            index,
            couplers_used: frame.couplers_used(),
            deliveries: frame.deliveries(),
            utilization: if coupler_count == 0 {
                0.0
            } else {
                frame.couplers_used() as f64 / coupler_count as f64
            },
        })
        .collect()
}

/// Renders one slot as a table of `sender --c(b,a)--> receivers` lines,
/// sorted by coupler for stable output.
pub fn render_slot(frame: &SlotFrame, topology: &pops_network::PopsTopology) -> String {
    let mut rows: Vec<&pops_network::Transmission> = frame.transmissions.iter().collect();
    rows.sort_by_key(|t| t.coupler);
    let mut out = String::new();
    for t in rows {
        let b = topology.coupler_dest_group(t.coupler);
        let a = topology.coupler_src_group(t.coupler);
        let receivers: Vec<String> = t.receivers.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "  p{:<3} --c({b}, {a})--> {:<12} [packet {}]",
            t.sender,
            receivers.join(","),
            t.packet
        );
    }
    out
}

/// Renders a full plan: the topology, the Theorem-2 case taken, the fair
/// distribution (if any), and every slot with its utilization.
pub fn render_plan(plan: &RoutingPlan, pi: &Permutation) -> String {
    let topology = plan.topology;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routing plan on {topology}: {} slots for n = {}",
        plan.schedule.slot_count(),
        topology.n()
    );
    let case = if topology.d() == 1 {
        "d = 1 (clique: direct, one slot)"
    } else if topology.d() <= topology.g() {
        "1 < d <= g (one two-slot round)"
    } else {
        "d > g (ceil(d/g) two-slot rounds)"
    };
    let _ = writeln!(out, "case: {case}");
    if let Some(fd) = &plan.fair_distribution {
        let _ = writeln!(out, "fair distribution targets per source group:");
        for h in 0..topology.g() {
            let _ = writeln!(out, "  f({h}, .) = {:?}", fd.targets_of(h));
        }
    }
    for (idx, frame) in plan.schedule.slots.iter().enumerate() {
        let _ = writeln!(
            out,
            "slot {idx}: {} couplers, {} deliveries",
            frame.couplers_used(),
            frame.deliveries()
        );
        out.push_str(&render_slot(frame, &topology));
    }
    let moving = (0..pi.len()).filter(|&i| pi.apply(i) != i).count();
    let _ = writeln!(
        out,
        "permutation: {moving}/{} packets move; lower bound {} slots",
        pi.len(),
        crate::bounds::lower_bound(pi, topology.d(), topology.g())
    );
    out
}

/// Renders a coupler-occupancy Gantt chart: one row per coupler, one
/// column per slot; `#` marks a driven coupler, `.` an idle one. Makes the
/// structure of a schedule visible at a glance — e.g. the Theorem-2
/// `d ≤ g` routing drives *every* coupler in both slots, while a direct
/// routing of a group rotation hammers one coupler column after column.
pub fn render_gantt(schedule: &Schedule, topology: &pops_network::PopsTopology) -> String {
    let couplers = topology.coupler_count();
    let slots = schedule.slot_count();
    let mut grid = vec![vec![false; slots]; couplers];
    for (s, frame) in schedule.slots.iter().enumerate() {
        for t in &frame.transmissions {
            grid[t.coupler][s] = true;
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "coupler occupancy ({couplers} couplers x {slots} slots):"
    );
    for (c, row) in grid.iter().enumerate() {
        let b = topology.coupler_dest_group(c);
        let a = topology.coupler_src_group(c);
        let cells: String = row
            .iter()
            .map(|&used| if used { '#' } else { '.' })
            .collect();
        let _ = writeln!(out, "  c({b},{a}) |{cells}|");
    }
    let driven: usize = grid.iter().flatten().filter(|&&u| u).count();
    let _ = writeln!(
        out,
        "utilization: {driven}/{} coupler-slots ({:.0}%)",
        couplers * slots,
        if slots == 0 {
            0.0
        } else {
            100.0 * driven as f64 / (couplers * slots) as f64
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use pops_bipartite::ColorerKind;
    use pops_network::PopsTopology;
    use pops_permutation::families::vector_reversal;

    #[test]
    fn summaries_report_full_utilization_for_d_le_g_slot1() {
        let pi = vector_reversal(16);
        let t = PopsTopology::new(4, 4);
        let plan = route(&pi, t, ColorerKind::default());
        let summaries = summarize_schedule(&plan.schedule, t.coupler_count());
        assert_eq!(summaries.len(), 2);
        // Slot 1 of the d<=g case moves all n packets over n couplers.
        assert_eq!(summaries[0].couplers_used, 16);
        assert!((summaries[0].utilization - 1.0).abs() < 1e-12);
        assert_eq!(summaries[1].deliveries, 16);
    }

    #[test]
    fn render_plan_mentions_case_and_slots() {
        let pi = vector_reversal(12);
        let t = PopsTopology::new(3, 4);
        let plan = route(&pi, t, ColorerKind::default());
        let text = render_plan(&plan, &pi);
        assert!(text.contains("1 < d <= g"));
        assert!(text.contains("slot 0"));
        assert!(text.contains("slot 1"));
        assert!(text.contains("fair distribution"));
        assert!(text.contains("lower bound"));
    }

    #[test]
    fn render_plan_d1_case() {
        let pi = vector_reversal(5);
        let t = PopsTopology::new(1, 5);
        let plan = route(&pi, t, ColorerKind::default());
        let text = render_plan(&plan, &pi);
        assert!(text.contains("d = 1"));
        assert!(!text.contains("fair distribution targets"));
    }

    #[test]
    fn render_plan_multi_round_case() {
        let pi = vector_reversal(12);
        let t = PopsTopology::new(6, 2);
        let plan = route(&pi, t, ColorerKind::default());
        let text = render_plan(&plan, &pi);
        assert!(text.contains("d > g"));
        // 2*ceil(6/2) = 6 slots.
        assert!(text.contains("slot 5"));
    }

    #[test]
    fn gantt_shows_full_occupancy_for_square_routing() {
        // d = g: both Theorem-2 slots drive all g² couplers.
        let pi = vector_reversal(16);
        let t = PopsTopology::new(4, 4);
        let plan = route(&pi, t, ColorerKind::default());
        let text = render_gantt(&plan.schedule, &t);
        assert!(text.contains("16 couplers x 2 slots"));
        assert!(text.contains("|##|"));
        assert!(
            !text.contains('.'),
            "no idle coupler-slot expected:\n{text}"
        );
        assert!(text.contains("32/32"));
    }

    #[test]
    fn gantt_shows_serialization_of_direct_group_rotation() {
        // Direct routing of a group rotation uses one coupler per slot per
        // group pair — long '#' runs on few rows.
        use pops_permutation::families::group_rotation;
        let t = PopsTopology::new(4, 2);
        let pi = group_rotation(4, 2, 1);
        let schedule = crate::fault_routing::route_greedy(&pi, t).schedule;
        let text = render_gantt(&schedule, &t);
        assert!(text.contains("####"), "{text}");
        // The two intra-group couplers stay idle throughout.
        assert!(text.contains("|....|"), "{text}");
    }

    #[test]
    fn gantt_handles_empty_schedule() {
        let t = PopsTopology::new(2, 2);
        let text = render_gantt(&Schedule::new(), &t);
        assert!(text.contains("0 slots"));
        assert!(text.contains("0/0"));
    }

    #[test]
    fn render_slot_sorts_by_coupler() {
        let pi = vector_reversal(9);
        let t = PopsTopology::new(3, 3);
        let plan = route(&pi, t, ColorerKind::default());
        let text = render_slot(&plan.schedule.slots[0], &t);
        // Couplers must appear in nondecreasing (b, a) order.
        let positions: Vec<usize> = (0..3)
            .flat_map(|b| (0..3).map(move |a| (b, a)))
            .filter_map(|(b, a)| text.find(&format!("c({b}, {a})")))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }
}
