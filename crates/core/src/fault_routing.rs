//! Fault-aware permutation routing (extension).
//!
//! The paper assumes a healthy POPS(d, g). When couplers fail
//! ([`pops_network::fault::FaultSet`]), the Theorem-2 construction no
//! longer applies — its two fixed hops use arbitrary couplers — but the
//! network often remains connected at the *group* level, with some pairs
//! needing multi-hop detours. This module provides a **greedy
//! distance-decreasing router** for that regime:
//!
//! * compute group-level shortest-hop distances over the alive couplers;
//! * slot by slot, move every movable packet one hop along a shortest
//!   alive path, respecting the machine model (one sender per coupler, one
//!   distinct packet per sender, one read per processor);
//! * the final hop of each packet delivers it to its exact destination
//!   processor; earlier hops park it at any free processor of the
//!   intermediate group.
//!
//! Every packet's hop count equals its group distance, so the schedule is
//! hop-optimal per packet; *slot* optimality is not claimed (the healthy
//! special case is exactly the online greedy baseline that experiment T10
//! compares against Theorem 2's offline 2⌈d/g⌉).
//!
//! With zero faults this router also serves as the **online greedy
//! baseline**: it never plans ahead, so group-concentrated permutations
//! serialize on the single useful coupler and cost up to `d` slots where
//! Theorem 2 pays `2⌈d/g⌉` — the gap the paper's machinery exists to close.

use std::fmt;

use pops_network::fault::{FaultSet, UNREACHABLE};
use pops_network::{PopsTopology, Schedule, SlotFrame, Transmission};
use pops_permutation::Permutation;

/// Why fault-aware routing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRoutingError {
    /// No alive path for a packet's required group-to-group journey.
    Disconnected {
        /// Source group of the stranded packet.
        src_group: usize,
        /// Destination group it cannot reach.
        dst_group: usize,
    },
    /// Defensive guard: a slot elapsed with pending packets and no
    /// progress (cannot happen for connected fault sets; kept so the loop
    /// is provably finite).
    Stalled {
        /// Slot index at which progress stopped.
        slot: usize,
        /// Packets still undelivered.
        undelivered: usize,
    },
}

impl fmt::Display for FaultRoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultRoutingError::Disconnected {
                src_group,
                dst_group,
            } => write!(
                f,
                "no alive coupler path from group {src_group} to group {dst_group}"
            ),
            FaultRoutingError::Stalled { slot, undelivered } => {
                write!(
                    f,
                    "no progress at slot {slot} with {undelivered} packets pending"
                )
            }
        }
    }
}

impl std::error::Error for FaultRoutingError {}

/// A fault-aware routing: the executable schedule plus per-packet hop
/// statistics.
#[derive(Debug, Clone)]
pub struct FaultRouting {
    /// The schedule (execute with the same [`FaultSet`] injected — the
    /// tests do).
    pub schedule: Schedule,
    /// Hops taken by each packet (equals its alive-graph group distance).
    pub hops: Vec<usize>,
}

impl FaultRouting {
    /// Slots used.
    pub fn slots(&self) -> usize {
        self.schedule.slot_count()
    }

    /// The longest single-packet journey, in hops (1 on a healthy network
    /// for inter-group traffic; grows with detours).
    pub fn max_hops(&self) -> usize {
        self.hops.iter().copied().max().unwrap_or(0)
    }
}

/// Remaining hop count for a packet at `pos` with destination `dest`.
fn need(
    topology: &PopsTopology,
    faults: &FaultSet,
    dist: &[Vec<usize>],
    pos: usize,
    dest: usize,
) -> usize {
    if pos == dest {
        return 0;
    }
    let a = topology.group_of(pos);
    let b = topology.group_of(dest);
    if a != b {
        dist[a][b]
    } else {
        // Wrong processor of the right group: must leave on some alive
        // coupler and come back in (possibly the group's own self-loop).
        faults.group_distance_ge1(topology, dist, a, b)
    }
}

/// Routes `pi` on `topology` with `faults` injected, greedily moving every
/// packet one distance-decreasing hop per slot.
///
/// Returns the executable schedule (slot counts degrade gracefully with
/// the fault count — experiment T10) or an error naming a disconnected
/// group pair.
///
/// # Panics
///
/// Panics if `pi.len() != topology.n()`.
pub fn route_with_faults(
    pi: &Permutation,
    topology: PopsTopology,
    faults: &FaultSet,
) -> Result<FaultRouting, FaultRoutingError> {
    let n = topology.n();
    assert_eq!(pi.len(), n, "permutation length must equal n");
    let g = topology.g();
    let dist = faults.group_distances(&topology);

    // Feasibility: every packet's journey must be finite.
    for i in 0..n {
        let dest = pi.apply(i);
        if need(&topology, faults, &dist, i, dest) == UNREACHABLE {
            return Err(FaultRoutingError::Disconnected {
                src_group: topology.group_of(i),
                dst_group: topology.group_of(dest),
            });
        }
    }

    let mut position: Vec<usize> = (0..n).collect();
    let mut hops = vec![0usize; n];
    let mut pending: Vec<usize> = (0..n).filter(|&p| pi.apply(p) != p).collect();
    let mut schedule = Schedule::new();
    // Hop-optimality makes total hops ≤ n·(g + 1); each slot below moves at
    // least the highest-priority packet, so this cap is unreachable.
    let slot_cap = n * (g + 1) + 1;

    while !pending.is_empty() {
        if schedule.slot_count() >= slot_cap {
            return Err(FaultRoutingError::Stalled {
                slot: schedule.slot_count(),
                undelivered: pending.len(),
            });
        }
        // Furthest-behind packets schedule first (ties by id, for
        // determinism).
        pending.sort_unstable_by_key(|&p| {
            let d = need(&topology, faults, &dist, position[p], pi.apply(p));
            (usize::MAX - d, p)
        });

        let mut frame = SlotFrame::new();
        let mut sender_busy = vec![false; n];
        let mut coupler_busy = vec![false; topology.coupler_count()];
        let mut receiver_busy = vec![false; n];
        let mut moved: Vec<(usize, usize)> = Vec::new(); // (packet, new position)

        for &p in &pending {
            let pos = position[p];
            if sender_busy[pos] {
                continue; // the holder already transmits another packet
            }
            let dest = pi.apply(p);
            let remaining = need(&topology, faults, &dist, pos, dest);
            debug_assert!(remaining >= 1);
            let a = topology.group_of(pos);
            let b = topology.group_of(dest);

            if remaining == 1 {
                // Final hop: must land exactly on `dest`.
                let c = topology.coupler_id(b, a);
                if !faults.is_failed(c) && !coupler_busy[c] && !receiver_busy[dest] {
                    coupler_busy[c] = true;
                    receiver_busy[dest] = true;
                    sender_busy[pos] = true;
                    frame
                        .transmissions
                        .push(Transmission::unicast(pos, c, p, dest));
                    moved.push((p, dest));
                }
                continue;
            }

            // Intermediate hop: any alive unused coupler a → r that keeps
            // the packet on a shortest path, parking at any free processor
            // of r.
            'groups: for step in 0..g {
                let r = (a + step + 1) % g; // deterministic scan, skewed off a
                let c = topology.coupler_id(r, a);
                if faults.is_failed(c) || coupler_busy[c] {
                    continue;
                }
                let new_remaining = if r == b {
                    // Arriving in the destination group at (generally) the
                    // wrong processor does not finish the journey.
                    faults.group_distance_ge1(&topology, &dist, r, b)
                } else {
                    dist[r][b]
                };
                if new_remaining.saturating_add(1) != remaining {
                    continue;
                }
                for recv in topology.processors_of(r) {
                    if !receiver_busy[recv] {
                        coupler_busy[c] = true;
                        receiver_busy[recv] = true;
                        sender_busy[pos] = true;
                        frame
                            .transmissions
                            .push(Transmission::unicast(pos, c, p, recv));
                        moved.push((p, recv));
                        break 'groups;
                    }
                }
            }
        }

        if frame.transmissions.is_empty() {
            return Err(FaultRoutingError::Stalled {
                slot: schedule.slot_count(),
                undelivered: pending.len(),
            });
        }
        for &(p, new_pos) in &moved {
            position[p] = new_pos;
            hops[p] += 1;
        }
        schedule.slots.push(frame);
        pending.retain(|&p| position[p] != pi.apply(p));
    }

    Ok(FaultRouting { schedule, hops })
}

/// The healthy-network greedy baseline: [`route_with_faults`] with no
/// faults. Online and plan-free — the comparison point showing why the
/// paper's offline two-phase construction earns its keep (experiment T10).
pub fn route_greedy(pi: &Permutation, topology: PopsTopology) -> FaultRouting {
    route_with_faults(pi, topology, &FaultSet::none(&topology))
        .expect("healthy network is always connected")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{group_rotation, random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    /// Executes `routing` under `faults` and checks delivery.
    fn verify(pi: &Permutation, topology: PopsTopology, faults: &FaultSet, routing: &FaultRouting) {
        let mut sim = Simulator::with_unit_packets_and_faults(topology, faults.clone());
        sim.execute_schedule(&routing.schedule).unwrap();
        let dest: Vec<usize> = (0..topology.n()).map(|i| pi.apply(i)).collect();
        sim.verify_delivery(&dest).unwrap();
    }

    #[test]
    fn healthy_network_routes_and_delivers() {
        let t = PopsTopology::new(3, 3);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10 {
            let pi = random_permutation(9, &mut rng);
            let routing = route_greedy(&pi, t);
            verify(&pi, t, &FaultSet::none(&t), &routing);
            assert!(routing.max_hops() <= 2); // direct or one intra-group correction
        }
    }

    #[test]
    fn greedy_serializes_on_concentrated_demand() {
        // Group rotation: all d packets of each group target the next
        // group; only one coupler is useful per group, so greedy needs
        // d slots of final hops — worse than Theorem 2's 2⌈d/g⌉ when
        // d > 2⌈d/g⌉.
        let t = PopsTopology::new(6, 3);
        let pi = group_rotation(6, 3, 1);
        let routing = route_greedy(&pi, t);
        verify(&pi, t, &FaultSet::none(&t), &routing);
        assert_eq!(routing.slots(), 6); // d slots
        assert_eq!(pops_core_theorem2(6, 3), 4); // vs 2⌈6/3⌉
    }

    fn pops_core_theorem2(d: usize, g: usize) -> usize {
        crate::router::theorem2_slots(d, g)
    }

    #[test]
    fn detours_around_a_failed_coupler() {
        let t = PopsTopology::new(2, 3);
        let mut faults = FaultSet::none(&t);
        // Vector reversal sends group 0 → group 2; kill that direct path.
        faults.fail_group_pair(&t, 2, 0);
        let pi = vector_reversal(6);
        let routing = route_with_faults(&pi, t, &faults).unwrap();
        verify(&pi, t, &faults, &routing);
        // Packets from group 0 to group 2 take 2 hops now.
        assert!(routing.max_hops() >= 2);
    }

    #[test]
    fn survives_heavy_fault_load_while_connected() {
        let t = PopsTopology::new(2, 4);
        let mut rng = SplitMix64::new(99);
        // Fail couplers greedily while the network stays fully routable.
        let mut faults = FaultSet::none(&t);
        let mut failed = 0;
        for c in [1usize, 2, 6, 9, 11, 14, 3, 7, 12, 5] {
            let mut trial = faults.clone();
            trial.fail_coupler(c);
            if trial.fully_routable(&t) {
                faults = trial;
                failed += 1;
            }
            if failed == 6 {
                break;
            }
        }
        assert!(
            failed >= 4,
            "expected to fail several couplers, got {failed}"
        );
        for _ in 0..10 {
            let pi = random_permutation(8, &mut rng);
            let routing = route_with_faults(&pi, t, &faults).unwrap();
            verify(&pi, t, &faults, &routing);
        }
    }

    #[test]
    fn disconnection_is_reported() {
        let t = PopsTopology::new(2, 3);
        let mut faults = FaultSet::none(&t);
        for src in 0..3 {
            faults.fail_group_pair(&t, 1, src);
        }
        let pi = vector_reversal(6);
        let err = route_with_faults(&pi, t, &faults).unwrap_err();
        assert!(matches!(
            err,
            FaultRoutingError::Disconnected { dst_group: 1, .. }
        ));
    }

    #[test]
    fn identity_needs_no_slots() {
        let t = PopsTopology::new(2, 2);
        let routing = route_greedy(&Permutation::identity(4), t);
        assert_eq!(routing.slots(), 0);
        assert_eq!(routing.max_hops(), 0);
    }

    #[test]
    fn fixed_points_never_move() {
        let t = PopsTopology::new(2, 3);
        // A transposition of processors 0 and 5; everyone else fixed.
        let mut image: Vec<usize> = (0..6).collect();
        image.swap(0, 5);
        let pi = Permutation::new(image).unwrap();
        let routing = route_greedy(&pi, t);
        verify(&pi, t, &FaultSet::none(&t), &routing);
        for (p, &h) in routing.hops.iter().enumerate() {
            assert_eq!(h > 0, p == 0 || p == 5, "packet {p}");
        }
    }

    #[test]
    fn wrong_processor_same_group_with_failed_self_loop() {
        let t = PopsTopology::new(3, 2);
        let mut faults = FaultSet::none(&t);
        faults.fail_group_pair(&t, 0, 0); // group 0 cannot talk to itself
                                          // Rotate within group 0: 0 → 1 → 2 → 0.
        let pi = Permutation::new(vec![1, 2, 0, 3, 4, 5]).unwrap();
        let routing = route_with_faults(&pi, t, &faults).unwrap();
        verify(&pi, t, &faults, &routing);
        assert!(routing.max_hops() >= 2); // detour via group 1
    }
}
