//! Exact minimum-slot search for tiny instances — the empirical yardstick
//! for §3.3.
//!
//! The paper brackets its algorithm between lower bounds (Propositions
//! 1–3) and the `2⌈d/g⌉` upper bound, concluding the routing is "at most
//! the double of the optimum" for fixed-point-free permutations. This
//! module measures where the *true* optimum falls on instances small
//! enough to search exhaustively, so the experiment harness (T12) can
//! report the actual gap distribution rather than just the bracket.
//!
//! # Strategy class
//!
//! The search is exact over **at-most-two-hop strategies**: each packet
//! either stays (fixed point), moves once directly to its destination, or
//! moves once to an intermediate processor and once more to its
//! destination — the class the paper's own algorithm (and every published
//! POPS routing) lives in. Because the coupler mesh is complete, an
//! intermediate parking spot can be chosen in *any* group, which is what
//! third hops would otherwise buy; a three-hop plan also consumes strictly
//! more coupler-slots and receive-slots than a two-hop plan with a free
//! choice of park. The returned value is therefore the exact optimum of
//! the two-hop class, written `OPT₂`; it upper-bounds the unrestricted
//! optimum and is itself lower-bounded by [`crate::bounds::lower_bound`] —
//! both comparisons are reported by the harness.
//!
//! The search is a depth-first assignment of per-packet plans with
//! per-slot resource tracking (couplers, senders, receivers — u64
//! bitsets), most-contended packets first, with a node budget for graceful
//! bail-out. Feasibility at `t = 2⌈d/g⌉` is guaranteed (Theorem 2's
//! schedule belongs to the class), so the iterative deepening always
//! terminates within the paper's bound.

use pops_network::{PopsTopology, Schedule, SlotFrame, Transmission};
use pops_permutation::Permutation;

use crate::router::theorem2_slots;

/// Outcome of an exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The minimum slot count over two-hop strategies, if the search
    /// completed within budget.
    pub slots: Option<usize>,
    /// Plan assignments attempted (search effort).
    pub nodes: u64,
    /// A witness: an executable schedule achieving `slots` (absent iff
    /// `slots` is). The tests run it on the simulator, so every optimum
    /// the search reports is machine-executed, not just counted.
    pub schedule: Option<Schedule>,
}

/// Per-slot resource occupancy, as bitsets (supports `n ≤ 64`, `g² ≤ 64`).
struct Resources {
    senders: Vec<u64>,
    receivers: Vec<u64>,
    couplers: Vec<u64>,
}

impl Resources {
    fn new(slots: usize) -> Self {
        Self {
            senders: vec![0; slots],
            receivers: vec![0; slots],
            couplers: vec![0; slots],
        }
    }

    /// Tries to reserve the move `from → to` at `slot`; `true` on success.
    fn try_move(&mut self, t: &PopsTopology, slot: usize, from: usize, to: usize) -> bool {
        let c = t.coupler_id(t.group_of(to), t.group_of(from));
        let (sb, rb, cb) = (1u64 << from, 1u64 << to, 1u64 << c);
        if self.senders[slot] & sb != 0
            || self.receivers[slot] & rb != 0
            || self.couplers[slot] & cb != 0
        {
            return false;
        }
        self.senders[slot] |= sb;
        self.receivers[slot] |= rb;
        self.couplers[slot] |= cb;
        true
    }

    fn undo_move(&mut self, t: &PopsTopology, slot: usize, from: usize, to: usize) {
        let c = t.coupler_id(t.group_of(to), t.group_of(from));
        self.senders[slot] &= !(1u64 << from);
        self.receivers[slot] &= !(1u64 << to);
        self.couplers[slot] &= !(1u64 << c);
    }
}

struct Search<'a> {
    topology: PopsTopology,
    pi: &'a Permutation,
    movers: Vec<usize>,
    slots: usize,
    nodes: u64,
    budget: u64,
    /// Per-mover moves `(slot, from, to)` of the plan currently explored;
    /// a completed stack is the witness.
    stack: Vec<Vec<(usize, usize, usize)>>,
}

impl Search<'_> {
    /// `Some(true)`: all movers planned. `Some(false)`: exhausted the
    /// space. `None`: node budget hit.
    fn dfs(&mut self, idx: usize, res: &mut Resources) -> Option<bool> {
        if idx == self.movers.len() {
            return Some(true);
        }
        let p = self.movers[idx];
        let src = p;
        let dst = self.pi.apply(p);
        let n = self.topology.n();

        // Direct plans: one move src → dst in some slot.
        for s in 0..self.slots {
            self.nodes += 1;
            if self.nodes > self.budget {
                return None;
            }
            if res.try_move(&self.topology, s, src, dst) {
                self.stack.push(vec![(s, src, dst)]);
                match self.dfs(idx + 1, res) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                self.stack.pop();
                res.undo_move(&self.topology, s, src, dst);
            }
        }

        // Two-move plans: src → park at slot s1, park → dst at slot s2.
        for s1 in 0..self.slots {
            for s2 in (s1 + 1)..self.slots {
                for park in 0..n {
                    if park == src || park == dst {
                        continue;
                    }
                    self.nodes += 1;
                    if self.nodes > self.budget {
                        return None;
                    }
                    if !res.try_move(&self.topology, s1, src, park) {
                        continue;
                    }
                    if res.try_move(&self.topology, s2, park, dst) {
                        self.stack.push(vec![(s1, src, park), (s2, park, dst)]);
                        match self.dfs(idx + 1, res) {
                            Some(true) => return Some(true),
                            Some(false) => {}
                            None => return None,
                        }
                        self.stack.pop();
                        res.undo_move(&self.topology, s2, park, dst);
                    }
                    res.undo_move(&self.topology, s1, src, park);
                }
            }
        }
        Some(false)
    }
}

/// Decides whether `pi` routes in `slots` slots under two-hop strategies.
///
/// `None` if the node budget was exhausted before a decision.
///
/// # Panics
///
/// Panics if `pi.len() != n`, or if `n > 64` / `g² > 64` (bitset limit —
/// exhaustive search is only meaningful on tiny instances anyway).
pub fn routable_in(
    pi: &Permutation,
    topology: PopsTopology,
    slots: usize,
    budget: u64,
) -> (Option<bool>, u64) {
    let (verdict, nodes, _) = routable_in_with_witness(pi, topology, slots, budget);
    (verdict, nodes)
}

/// Like [`routable_in`], additionally returning the witness schedule on a
/// positive answer.
pub fn routable_in_with_witness(
    pi: &Permutation,
    topology: PopsTopology,
    slots: usize,
    budget: u64,
) -> (Option<bool>, u64, Option<Schedule>) {
    let n = topology.n();
    assert_eq!(pi.len(), n, "permutation length must equal n");
    assert!(n <= 64, "exhaustive search supports n ≤ 64");
    assert!(
        topology.coupler_count() <= 64,
        "exhaustive search supports g² ≤ 64"
    );

    let mut movers: Vec<usize> = (0..n).filter(|&p| pi.apply(p) != p).collect();
    if movers.is_empty() {
        return (Some(true), 0, Some(Schedule::new()));
    }
    if slots == 0 {
        return (Some(false), 0, None);
    }
    // Most-contended packets first: couplers are the scarce resource, so
    // order by how many packets share the same (source group, destination
    // group) pair, descending.
    let g = topology.g();
    let mut pair_load = vec![0usize; g * g];
    for &p in &movers {
        let a = topology.group_of(p);
        let b = topology.group_of(pi.apply(p));
        pair_load[b * g + a] += 1;
    }
    movers.sort_by_key(|&p| {
        let a = topology.group_of(p);
        let b = topology.group_of(pi.apply(p));
        (usize::MAX - pair_load[b * g + a], p)
    });

    let mut search = Search {
        topology,
        pi,
        movers,
        slots,
        nodes: 0,
        budget,
        stack: Vec::new(),
    };
    let mut res = Resources::new(slots);
    let verdict = search.dfs(0, &mut res);
    let witness = (verdict == Some(true)).then(|| {
        let mut frames = vec![SlotFrame::new(); slots];
        for plan in &search.stack {
            for &(s, from, to) in plan {
                // The packet id is the mover's source processor; for the
                // second hop of a two-move plan the sender is the park.
                let packet = plan[0].1;
                let c = topology.coupler_id(topology.group_of(to), topology.group_of(from));
                frames[s]
                    .transmissions
                    .push(Transmission::unicast(from, c, packet, to));
            }
        }
        Schedule { slots: frames }
    });
    (verdict, search.nodes, witness)
}

/// The exact minimum slot count of `pi` over two-hop strategies (`OPT₂`),
/// found by iterative deepening from 1 to the Theorem-2 bound (which is
/// always feasible, so the search always terminates when within budget).
///
/// # Panics
///
/// Same limits as [`routable_in`].
pub fn min_slots_two_hop(pi: &Permutation, topology: PopsTopology, budget: u64) -> SearchOutcome {
    let mut total_nodes = 0u64;
    if pi.is_identity() {
        return SearchOutcome {
            slots: Some(0),
            nodes: 0,
            schedule: Some(Schedule::new()),
        };
    }
    let ceiling = theorem2_slots(topology.d(), topology.g());
    for t in 1..=ceiling {
        let (verdict, nodes, witness) =
            routable_in_with_witness(pi, topology, t, budget.saturating_sub(total_nodes));
        total_nodes += nodes;
        match verdict {
            Some(true) => {
                return SearchOutcome {
                    slots: Some(t),
                    nodes: total_nodes,
                    schedule: witness,
                }
            }
            Some(false) => {}
            None => {
                return SearchOutcome {
                    slots: None,
                    nodes: total_nodes,
                    schedule: None,
                }
            }
        }
    }
    // Theorem 2's own schedule is a two-hop strategy in `ceiling` slots;
    // the loop above must have accepted at t = ceiling.
    unreachable!("2⌈d/g⌉ slots are always sufficient (Theorem 2)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::lower_bound;
    use crate::single_slot::is_single_slot_routable;
    use pops_permutation::families::{group_rotation, random_permutation, vector_reversal};
    use pops_permutation::{permutations_of, SplitMix64};

    const BUDGET: u64 = 50_000_000;

    #[test]
    fn identity_needs_zero_slots() {
        let t = PopsTopology::new(2, 2);
        let out = min_slots_two_hop(&Permutation::identity(4), t, BUDGET);
        assert_eq!(out.slots, Some(0));
    }

    #[test]
    fn single_slot_routable_iff_search_says_one() {
        // Cross-validate the search against the Gravenstreter–Melhem
        // characterization on every permutation of POPS(2, 2).
        let t = PopsTopology::new(2, 2);
        for pi in permutations_of(4) {
            let (verdict, _) = routable_in(&pi, t, 1, BUDGET);
            assert_eq!(
                verdict,
                Some(is_single_slot_routable(&pi, &t)),
                "π = {:?}",
                pi.as_slice()
            );
        }
    }

    #[test]
    fn optimum_brackets_hold_on_all_small_permutations() {
        for (d, g) in [(2usize, 2usize), (2, 3), (3, 2)] {
            let t = PopsTopology::new(d, g);
            let ceiling = theorem2_slots(d, g);
            for pi in permutations_of(d * g) {
                let out = min_slots_two_hop(&pi, t, BUDGET);
                let opt = out.slots.expect("budget is ample for n = 6");
                assert!(opt <= ceiling, "π = {:?}", pi.as_slice());
                assert!(
                    opt >= lower_bound(&pi, d, g),
                    "optimum below the Props 1–3 bound for π = {:?}",
                    pi.as_slice()
                );
            }
        }
    }

    #[test]
    fn vector_reversal_even_g_is_tight() {
        // Proposition 2: reversal with even g needs the full 2⌈d/g⌉ —
        // the search must agree exactly.
        let t = PopsTopology::new(2, 2);
        let out = min_slots_two_hop(&vector_reversal(4), t, BUDGET);
        assert_eq!(out.slots, Some(2));
        let t = PopsTopology::new(4, 2);
        let out = min_slots_two_hop(&vector_reversal(8), t, BUDGET);
        assert_eq!(out.slots, Some(4));
    }

    #[test]
    fn prop2_stated_form_refuted_on_pops_3_2() {
        // The paper's Proposition 2 claims the wholesale group swap on
        // POPS(3, 2) needs 2⌈3/2⌉ = 4 slots. The optimum is 3: ship one
        // packet each way per slot through c(1, 0) / c(0, 1) — confirmed
        // exactly by the search, matching the corrected ⌈d/(g−1)⌉ bound.
        let t = PopsTopology::new(3, 2);
        let pi = group_rotation(3, 2, 1);
        let out = min_slots_two_hop(&pi, t, BUDGET);
        assert_eq!(out.slots, Some(3));
        assert_eq!(lower_bound(&pi, 3, 2), 3); // corrected bound is tight
        assert_eq!(theorem2_slots(3, 2), 4); // Theorem 2 overshoots by 1 here
    }

    #[test]
    fn single_slot_spread_beats_the_theorem2_bound() {
        // A derangement whose demand matrix is all-ones is single-slot
        // routable, while Theorem 2 spends its uniform 2⌈d/g⌉.
        let t = PopsTopology::new(2, 3);
        let pi = Permutation::new(vec![2, 4, 0, 5, 1, 3]).unwrap();
        assert!(is_single_slot_routable(&pi, &t));
        let out = min_slots_two_hop(&pi, t, BUDGET);
        assert_eq!(out.slots, Some(1));
        assert_eq!(theorem2_slots(2, 3), 2);
    }

    #[test]
    fn witness_schedules_execute_and_deliver() {
        // Every optimum the search reports comes with a schedule; run each
        // on the machine-model simulator and check exact delivery.
        use pops_network::Simulator;
        let t = PopsTopology::new(3, 2);
        let mut rng = SplitMix64::new(2025);
        for _ in 0..25 {
            let pi = random_permutation(6, &mut rng);
            let out = min_slots_two_hop(&pi, t, BUDGET);
            let schedule = out.schedule.expect("witness accompanies the optimum");
            assert_eq!(schedule.slot_count(), out.slots.unwrap());
            let mut sim = Simulator::with_unit_packets(t);
            sim.execute_schedule(&schedule).expect("witness is legal");
            sim.verify_delivery(pi.as_slice())
                .expect("witness delivers");
        }
    }

    #[test]
    fn counterexample_witness_is_three_legal_slots() {
        use pops_network::Simulator;
        let t = PopsTopology::new(3, 2);
        let pi = group_rotation(3, 2, 1);
        let out = min_slots_two_hop(&pi, t, BUDGET);
        let schedule = out.schedule.expect("witness");
        assert_eq!(schedule.slot_count(), 3);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&schedule).expect("legal");
        sim.verify_delivery(pi.as_slice()).expect("delivers");
    }

    #[test]
    fn budget_exhaustion_is_reported_not_wrong() {
        // Group rotation concentrates demand, so deciding t = 1 already
        // needs more than a 3-node search.
        let t = PopsTopology::new(3, 3);
        let pi = group_rotation(3, 3, 1);
        let out = min_slots_two_hop(&pi, t, 3);
        assert!(out.slots.is_none());
        assert!(out.nodes >= 3);
    }

    #[test]
    fn random_9_processor_instances_solve_within_budget() {
        let t = PopsTopology::new(3, 3);
        let mut rng = SplitMix64::new(17);
        for _ in 0..20 {
            let pi = random_permutation(9, &mut rng);
            let out = min_slots_two_hop(&pi, t, BUDGET);
            let opt = out.slots.expect("budget should suffice at n = 9");
            assert!((1..=2).contains(&opt));
        }
    }

    #[test]
    #[should_panic(expected = "n ≤ 64")]
    fn oversized_instances_rejected() {
        let t = PopsTopology::new(9, 9);
        let _ = routable_in(&Permutation::identity(81), t, 1, 100);
    }
}
