//! Word-parallel alternating-chain edge colouring.
//!
//! The same algorithm as [`crate::coloring::alternating`] — insert edges
//! one at a time, resolve colour conflicts by flipping the maximal
//! `(a, b)`-alternating chain — but the per-node "which colours are in
//! use" state is tracked in **u64 bitset words** alongside the edge
//! tables. `first_free` then costs one `trailing_zeros` on the
//! complement word (one word covers Δ ≤ 64, which is every POPS shape up
//! to `max(d, g) = 64`) instead of a linear scan over up to Δ table
//! slots. The chain walk still follows the edge tables; only the
//! free-colour queries are word-parallel.
//!
//! Because `first_free` returns the *minimum* free colour — exactly what
//! the scalar scan returns — the kernel is **byte-identical** to
//! [`crate::coloring::alternating::color`] on every input: same colour
//! per edge, same `EdgeColoring`, and therefore identical downstream
//! schedules. The engine-equivalence suite pins this.

use crate::coloring::EdgeColoring;
use crate::graph::{BipartiteMultigraph, EdgeId};

const NONE: usize = usize::MAX;

/// Number of u64 words needed to hold one bit per colour.
// lint: hot-path
#[inline]
pub fn words_per_node(delta: usize) -> usize {
    delta.div_ceil(64)
}

/// The lowest colour `< delta` whose bit is clear in `used`, where
/// `used` is the node's colour mask (`words_per_node(delta)` words).
///
/// The caller guarantees such a colour exists (degrees stay below Δ
/// while the node still has an uncoloured incident edge). Padding bits
/// above `delta` in the last word must be kept **zero** by the caller;
/// they are masked out here anyway so a stray bit cannot yield a colour
/// `>= delta`.
// lint: hot-path
#[inline]
pub fn first_free_in(used: &[u64], delta: usize) -> usize {
    for (w, &word) in used.iter().enumerate() {
        let mut free = !word;
        // Mask the padding above Δ in the last word.
        let bits_here = delta - w * 64;
        if bits_here < 64 {
            free &= (1u64 << bits_here) - 1;
        }
        if free != 0 {
            return w * 64 + free.trailing_zeros() as usize;
        }
    }
    unreachable!("a colour below Δ is always free at an uncoloured-incident node")
}

/// Sets colour `c`'s bit in node `node`'s mask.
// lint: hot-path
#[inline]
pub fn mark_used(masks: &mut [u64], node: usize, words: usize, c: usize) {
    masks[node * words + c / 64] |= 1u64 << (c % 64);
}

/// Clears colour `c`'s bit in node `node`'s mask.
// lint: hot-path
#[inline]
pub fn mark_free(masks: &mut [u64], node: usize, words: usize, c: usize) {
    masks[node * words + c / 64] &= !(1u64 << (c % 64));
}

/// Properly colours `g` with `max_degree(g)` colours, byte-identically to
/// [`crate::coloring::alternating::color`].
// lint: hot-path
pub fn color(g: &BipartiteMultigraph) -> EdgeColoring {
    // lint: setup-begin
    let delta = g.max_degree();
    let mut colors = vec![NONE; g.edge_count()];
    if delta == 0 {
        return EdgeColoring {
            num_colors: 0,
            colors,
        };
    }
    let words = words_per_node(delta);

    // table[node * delta + c] = edge of colour c at node, or NONE; the
    // masks mirror the tables bit-for-bit (bit c set ⟺ table slot c used).
    let mut left_table = vec![NONE; g.left_count() * delta];
    let mut right_table = vec![NONE; g.right_count() * delta];
    let mut left_used = vec![0u64; g.left_count() * words];
    let mut right_used = vec![0u64; g.right_count() * words];

    let mut chain: Vec<EdgeId> = Vec::new();
    // lint: setup-end
    for (e, u, v) in g.edges() {
        let a = first_free_in(&left_used[u * words..u * words + words], delta);
        let b = first_free_in(&right_used[v * words..v * words + words], delta);
        if a == b {
            colors[e] = a;
            left_table[u * delta + a] = e;
            right_table[v * delta + a] = e;
            mark_used(&mut left_used, u, words, a);
            mark_used(&mut right_used, v, words, a);
            continue;
        }
        // Flip the (a, b)-alternating chain starting at v — identical walk
        // to the scalar colourer (see alternating.rs for the argument).
        let mut want = a;
        let mut at_right = true;
        let mut node = v;
        chain.clear();
        loop {
            let table = if at_right { &right_table } else { &left_table };
            let next = table[node * delta + want];
            if next == NONE {
                break;
            }
            chain.push(next);
            let (nu, nv) = g.endpoints(next);
            node = if at_right { nu } else { nv };
            at_right = !at_right;
            want = if want == a { b } else { a };
        }
        debug_assert!(at_right || node != u, "alternating chain reached u");
        // Two phases, clear then write, as in the scalar colourer:
        // consecutive chain edges share nodes.
        for &ce in chain.iter() {
            let (cu, cv) = g.endpoints(ce);
            let old = colors[ce];
            left_table[cu * delta + old] = NONE;
            right_table[cv * delta + old] = NONE;
            mark_free(&mut left_used, cu, words, old);
            mark_free(&mut right_used, cv, words, old);
        }
        for &ce in chain.iter() {
            let (cu, cv) = g.endpoints(ce);
            let new = if colors[ce] == a { b } else { a };
            colors[ce] = new;
            left_table[cu * delta + new] = ce;
            right_table[cv * delta + new] = ce;
            mark_used(&mut left_used, cu, words, new);
            mark_used(&mut right_used, cv, words, new);
        }
        colors[e] = a;
        left_table[u * delta + a] = e;
        right_table[v * delta + a] = e;
        mark_used(&mut left_used, u, words, a);
        mark_used(&mut right_used, v, words, a);
    }

    EdgeColoring {
        num_colors: delta,
        colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{alternating, verify_proper};
    use crate::generators::{random_bipartite, random_multigraph, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn byte_identical_to_scalar_on_regular_multigraphs() {
        let mut rng = SplitMix64::new(61);
        for (n, k) in [(1usize, 1usize), (4, 2), (8, 8), (16, 11), (9, 4), (64, 64)] {
            let g = random_regular_multigraph(n, k, &mut rng);
            let fast = color(&g);
            let slow = alternating::color(&g);
            assert_eq!(fast, slow, "n={n} k={k}");
            verify_proper(&g, &fast).unwrap();
        }
    }

    #[test]
    fn byte_identical_to_scalar_on_irregular_graphs() {
        let mut rng = SplitMix64::new(62);
        for _ in 0..20 {
            let g = random_multigraph(6, 9, 50, &mut rng);
            assert_eq!(color(&g), alternating::color(&g));
        }
        for _ in 0..10 {
            let g = random_bipartite(12, 12, 0.7, &mut rng);
            assert_eq!(color(&g), alternating::color(&g));
        }
    }

    #[test]
    fn handles_delta_above_one_word() {
        // Δ = 80 > 64 exercises the multi-word first_free path and the
        // padding mask in the final word.
        let g = BipartiteMultigraph::from_edges(1, 1, std::iter::repeat_n((0, 0), 80)).unwrap();
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 80);
        assert_eq!(coloring, alternating::color(&g));
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn empty_graph_needs_no_colors() {
        let g = BipartiteMultigraph::new(3, 3);
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 0);
        assert!(coloring.colors.is_empty());
    }

    #[test]
    fn first_free_skips_full_words() {
        // First word fully used: the free colour lives in word 1.
        let used = [u64::MAX, 0b101];
        assert_eq!(first_free_in(&used, 128), 65);
        // Padding above Δ never leaks back as a "free" colour.
        let used = [u64::MAX >> 1];
        assert_eq!(first_free_in(&used, 64), 63);
    }

    #[test]
    fn mark_round_trips() {
        let mut masks = vec![0u64; 4];
        mark_used(&mut masks, 1, 2, 70);
        assert_eq!(masks[3], 1u64 << 6);
        mark_free(&mut masks, 1, 2, 70);
        assert_eq!(masks, vec![0u64; 4]);
    }
}
