//! Divide-and-conquer edge colouring by Euler splitting (Gabow's scheme).
//!
//! To colour a `k`-regular bipartite multigraph with `k` colours:
//!
//! * `k = 0`: nothing to do;
//! * `k` even: [`crate::euler::euler_split`] halves every degree in `O(m)`,
//!   giving two `k/2`-regular halves to colour recursively with disjoint
//!   palettes;
//! * `k` odd: peel one perfect matching (Hopcroft–Karp), give it a fresh
//!   colour, recurse on the `(k−1)`-regular remainder.
//!
//! For `k` a power of two this is pure splitting, `O(m log k)` — the regime
//! the fast algorithms cited in Remark 1 of the paper (Kapoor–Rizzi 2000;
//! Rizzi 2001) build on. With odd levels the matching cost `O(m√n)` enters
//! at most `log k` times. This engine is the workspace default.

use crate::coloring::{color_via_regular_decomposition, EdgeColoring};
use crate::graph::{BipartiteMultigraph, EdgeId};
use crate::matching::perfect_matching;

/// Properly colours `g` with `max_degree(g)` colours (padding non-regular
/// inputs to regular first).
pub fn color(g: &BipartiteMultigraph) -> EdgeColoring {
    color_via_regular_decomposition(g, |graph, k| {
        let mut colors = vec![usize::MAX; graph.edge_count()];
        let all: Vec<EdgeId> = (0..graph.edge_count()).collect();
        let mut next_color = 0usize;
        solve(graph, all, k, &mut next_color, &mut colors);
        debug_assert_eq!(next_color, k);
        debug_assert!(colors.iter().all(|&c| c != usize::MAX));
        colors
    })
}

/// Colours the `k`-regular sub(multi)graph of `g` induced by `edge_ids`,
/// assigning colours `*next_color ..` and bumping the counter by `k`.
fn solve(
    g: &BipartiteMultigraph,
    edge_ids: Vec<EdgeId>,
    k: usize,
    next_color: &mut usize,
    colors: &mut [usize],
) {
    match k {
        0 => {
            debug_assert!(edge_ids.is_empty());
        }
        1 => {
            // A 1-regular graph is itself a perfect matching.
            let c = *next_color;
            *next_color += 1;
            for e in edge_ids {
                colors[e] = c;
            }
        }
        k if k % 2 == 0 => {
            let (sub, mapping) = g.edge_subgraph(&edge_ids);
            let split = crate::euler::euler_split(&sub).unwrap_or_else(|(side, node)| {
                unreachable!("even-regular graph has odd node ({side}, {node})")
            });
            let first: Vec<EdgeId> = split.first.iter().map(|&e| mapping[e]).collect();
            let second: Vec<EdgeId> = split.second.iter().map(|&e| mapping[e]).collect();
            solve(g, first, k / 2, next_color, colors);
            solve(g, second, k / 2, next_color, colors);
        }
        _ => {
            // Odd k > 1: peel one perfect matching, recurse on k-1.
            let (sub, mapping) = g.edge_subgraph(&edge_ids);
            let matching = perfect_matching(&sub).unwrap_or_else(|e| {
                unreachable!("{k}-regular graph must have a perfect matching: {e}")
            });
            let c = *next_color;
            *next_color += 1;
            let mut in_matching = vec![false; sub.edge_count()];
            for &e in &matching.edges {
                in_matching[e] = true;
                colors[mapping[e]] = c;
            }
            let rest: Vec<EdgeId> = mapping
                .iter()
                .enumerate()
                .filter(|&(sub_e, _)| !in_matching[sub_e])
                .map(|(_, &orig)| orig)
                .collect();
            solve(g, rest, k - 1, next_color, colors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::verify_proper;
    use crate::generators::random_regular_multigraph;
    use pops_permutation::SplitMix64;

    #[test]
    fn colors_power_of_two_degrees_by_pure_splitting() {
        let mut rng = SplitMix64::new(61);
        for k in [1usize, 2, 4, 8, 16] {
            let g = random_regular_multigraph(8, k, &mut rng);
            let coloring = color(&g);
            assert_eq!(coloring.num_colors, k);
            verify_proper(&g, &coloring).unwrap();
        }
    }

    #[test]
    fn colors_odd_degrees_via_matching_peel() {
        let mut rng = SplitMix64::new(62);
        for k in [3usize, 5, 7, 9, 15] {
            let g = random_regular_multigraph(6, k, &mut rng);
            let coloring = color(&g);
            assert_eq!(coloring.num_colors, k);
            verify_proper(&g, &coloring).unwrap();
        }
    }

    #[test]
    fn classes_are_perfect_matchings() {
        let mut rng = SplitMix64::new(63);
        let n = 12;
        let g = random_regular_multigraph(n, 6, &mut rng);
        let coloring = color(&g);
        for class in coloring.classes() {
            assert_eq!(class.len(), n);
            // No repeated endpoints.
            let mut seen_l = vec![false; n];
            let mut seen_r = vec![false; n];
            for &e in &class {
                let (u, v) = g.endpoints(e);
                assert!(!seen_l[u] && !seen_r[v]);
                seen_l[u] = true;
                seen_r[v] = true;
            }
        }
    }

    #[test]
    fn agrees_with_koenig_on_color_count() {
        let mut rng = SplitMix64::new(64);
        let g = random_regular_multigraph(7, 5, &mut rng);
        let a = color(&g);
        let b = crate::coloring::koenig::color(&g);
        assert_eq!(a.num_colors, b.num_colors);
    }
}
