//! Proper edge colouring of bipartite multigraphs with `Δ` colours.
//!
//! König's edge-colouring theorem: a bipartite multigraph with maximum
//! degree `Δ` has a proper edge colouring with exactly `Δ` colours. This is
//! the combinatorial heart of the paper's Theorem 1 (the colour of the edge
//! for list entry `(s, i)` *is* the fair-distribution target `f(s, i)`).
//!
//! Three engines are provided behind [`ColorerKind`]; all return an
//! [`EdgeColoring`] with `num_colors == max_degree`, verified by
//! [`verify_proper`]. Experiment T4 benchmarks them against each other.

pub mod alternating;
pub mod bitset;
pub mod euler_split;
pub mod greedy;
pub mod koenig;

use crate::graph::{BipartiteMultigraph, EdgeId};

/// A proper edge colouring: `colors[e]` is the colour of edge `e`, with all
/// colours `< num_colors` and no two edges of equal colour sharing a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Number of colours used (the palette is `0..num_colors`).
    pub num_colors: usize,
    /// Colour per edge id.
    pub colors: Vec<usize>,
}

impl EdgeColoring {
    /// Groups edge ids by colour: `classes()[c]` lists the edges coloured
    /// `c`.
    pub fn classes(&self) -> Vec<Vec<EdgeId>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (e, &c) in self.colors.iter().enumerate() {
            classes[c].push(e);
        }
        classes
    }

    /// CSR view of [`EdgeColoring::classes`]: two flat arrays instead of a
    /// `Vec<Vec<EdgeId>>`. The edges of colour `c` are
    /// `flat[offsets[c]..offsets[c + 1]]`, in ascending edge-id order;
    /// `offsets` has `num_colors + 1` entries. Two allocations total, used
    /// on the routing hot paths (h-relation phase decomposition, the
    /// engine) where the per-colour `Vec`s of `classes()` would churn.
    pub fn classes_flat(&self) -> (Vec<usize>, Vec<EdgeId>) {
        let mut offsets = vec![0usize; self.num_colors + 1];
        for &c in &self.colors {
            offsets[c + 1] += 1;
        }
        for c in 0..self.num_colors {
            offsets[c + 1] += offsets[c];
        }
        let mut flat = vec![0; self.colors.len()];
        let mut cursor = offsets.clone();
        for (e, &c) in self.colors.iter().enumerate() {
            flat[cursor[c]] = e;
            cursor[c] += 1;
        }
        (offsets, flat)
    }
}

/// A violation found by [`verify_proper`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringViolation {
    /// `colors` has a different length than the edge count.
    LengthMismatch {
        /// Edges in the graph.
        edges: usize,
        /// Entries in the colouring.
        entries: usize,
    },
    /// An edge's colour is `>= num_colors`.
    ColorOutOfRange {
        /// The edge.
        edge: EdgeId,
        /// Its colour.
        color: usize,
    },
    /// Two edges with the same colour share a node.
    Conflict {
        /// First edge.
        first: EdgeId,
        /// Second edge.
        second: EdgeId,
        /// The shared colour.
        color: usize,
    },
}

impl std::fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringViolation::LengthMismatch { edges, entries } => {
                write!(f, "colouring has {entries} entries for {edges} edges")
            }
            ColoringViolation::ColorOutOfRange { edge, color } => {
                write!(f, "edge {edge} has out-of-range colour {color}")
            }
            ColoringViolation::Conflict {
                first,
                second,
                color,
            } => write!(
                f,
                "edges {first} and {second} share colour {color} and a node"
            ),
        }
    }
}

impl std::error::Error for ColoringViolation {}

/// Checks that `coloring` is a proper edge colouring of `g`.
pub fn verify_proper(
    g: &BipartiteMultigraph,
    coloring: &EdgeColoring,
) -> Result<(), ColoringViolation> {
    if coloring.colors.len() != g.edge_count() {
        return Err(ColoringViolation::LengthMismatch {
            edges: g.edge_count(),
            entries: coloring.colors.len(),
        });
    }
    let k = coloring.num_colors;
    // seen_left[u][c] = Some(edge) if u already has an edge of colour c.
    let mut seen_left: Vec<Option<EdgeId>> = vec![None; g.left_count() * k];
    let mut seen_right: Vec<Option<EdgeId>> = vec![None; g.right_count() * k];
    for (e, u, v) in g.edges() {
        let c = coloring.colors[e];
        if c >= k {
            return Err(ColoringViolation::ColorOutOfRange { edge: e, color: c });
        }
        if let Some(prev) = seen_left[u * k + c] {
            return Err(ColoringViolation::Conflict {
                first: prev,
                second: e,
                color: c,
            });
        }
        seen_left[u * k + c] = Some(e);
        if let Some(prev) = seen_right[v * k + c] {
            return Err(ColoringViolation::Conflict {
                first: prev,
                second: e,
                color: c,
            });
        }
        seen_right[v * k + c] = Some(e);
    }
    Ok(())
}

/// Selects one of the three edge-colouring engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColorerKind {
    /// Repeated Hopcroft–Karp perfect matchings — the textbook constructive
    /// König proof. `O(Δ · m · √n)`.
    Koenig,
    /// One edge at a time with two-colour alternating-chain flips
    /// (bipartite Vizing). `O(n · m)` worst case, excellent in practice on
    /// sparse graphs.
    AlternatingPath,
    /// Divide and conquer by Euler split (Gabow's scheme, in the family of
    /// the Kapoor–Rizzi/Rizzi algorithms cited by Remark 1 of the paper):
    /// `O(m log Δ)` plus one perfect matching per odd level. **Default.**
    #[default]
    EulerSplit,
}

impl ColorerKind {
    /// All engines, for comparison sweeps (experiment T4).
    pub const ALL: [ColorerKind; 3] = [
        ColorerKind::Koenig,
        ColorerKind::AlternatingPath,
        ColorerKind::EulerSplit,
    ];

    /// Human-readable engine name.
    pub fn name(self) -> &'static str {
        match self {
            ColorerKind::Koenig => "koenig",
            ColorerKind::AlternatingPath => "alternating-path",
            ColorerKind::EulerSplit => "euler-split",
        }
    }

    /// Properly colours `g` with exactly `max_degree(g)` colours.
    ///
    /// Non-regular inputs are handled per engine: the alternating-path
    /// engine colours them directly; the decomposition engines pad to
    /// regular first ([`crate::regularize::pad_to_regular`]) and restrict
    /// the result.
    pub fn color(self, g: &BipartiteMultigraph) -> EdgeColoring {
        match self {
            ColorerKind::Koenig => koenig::color(g),
            ColorerKind::AlternatingPath => alternating::color(g),
            ColorerKind::EulerSplit => euler_split::color(g),
        }
    }
}

/// Colours a regular graph by decomposing it into perfect matchings with
/// `decompose`, which must fill `out.colors[e]` for every edge. Shared glue
/// for the König and Euler-split engines: pads non-regular inputs, runs the
/// decomposition on the padded graph, restricts to real edges.
pub(crate) fn color_via_regular_decomposition(
    g: &BipartiteMultigraph,
    decompose: impl FnOnce(&BipartiteMultigraph, usize) -> Vec<usize>,
) -> EdgeColoring {
    let delta = g.max_degree();
    if delta == 0 {
        return EdgeColoring {
            num_colors: 0,
            colors: Vec::new(),
        };
    }
    if g.regular_degree() == Some(delta) {
        let colors = decompose(g, delta);
        return EdgeColoring {
            num_colors: delta,
            colors,
        };
    }
    let padded = crate::regularize::pad_to_regular(g, delta);
    let mut colors = decompose(&padded.graph, delta);
    colors.truncate(padded.real_edge_count);
    EdgeColoring {
        num_colors: delta,
        colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_multigraph, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn all_engines_color_regular_multigraphs() {
        let mut rng = SplitMix64::new(31);
        for (n, k) in [(1usize, 1usize), (4, 2), (5, 3), (8, 8), (9, 4), (16, 11)] {
            let g = random_regular_multigraph(n, k, &mut rng);
            for kind in ColorerKind::ALL {
                let coloring = kind.color(&g);
                assert_eq!(coloring.num_colors, k, "{} n={n} k={k}", kind.name());
                verify_proper(&g, &coloring)
                    .unwrap_or_else(|v| panic!("{} n={n} k={k}: {v}", kind.name()));
                // Regular graph: every colour class is a perfect matching.
                for class in coloring.classes() {
                    assert_eq!(class.len(), n, "{} n={n} k={k}", kind.name());
                }
            }
        }
    }

    #[test]
    fn all_engines_color_irregular_graphs() {
        let mut rng = SplitMix64::new(32);
        for _ in 0..10 {
            let g = random_multigraph(6, 9, 40, &mut rng);
            let delta = g.max_degree();
            for kind in ColorerKind::ALL {
                let coloring = kind.color(&g);
                assert_eq!(coloring.num_colors, delta, "{}", kind.name());
                verify_proper(&g, &coloring).unwrap_or_else(|v| panic!("{}: {v}", kind.name()));
            }
        }
    }

    #[test]
    fn empty_graph_needs_no_colors() {
        let g = BipartiteMultigraph::new(4, 4);
        for kind in ColorerKind::ALL {
            let coloring = kind.color(&g);
            assert_eq!(coloring.num_colors, 0);
            assert!(coloring.colors.is_empty());
        }
    }

    #[test]
    fn verify_rejects_conflicts() {
        let g = BipartiteMultigraph::from_edges(1, 2, [(0, 0), (0, 1)]).unwrap();
        let bad = EdgeColoring {
            num_colors: 2,
            colors: vec![0, 0],
        };
        assert!(matches!(
            verify_proper(&g, &bad),
            Err(ColoringViolation::Conflict { color: 0, .. })
        ));
    }

    #[test]
    fn verify_rejects_out_of_range() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0)]).unwrap();
        let bad = EdgeColoring {
            num_colors: 1,
            colors: vec![3],
        };
        assert!(matches!(
            verify_proper(&g, &bad),
            Err(ColoringViolation::ColorOutOfRange { color: 3, .. })
        ));
    }

    #[test]
    fn verify_rejects_length_mismatch() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0)]).unwrap();
        let bad = EdgeColoring {
            num_colors: 1,
            colors: vec![],
        };
        assert!(matches!(
            verify_proper(&g, &bad),
            Err(ColoringViolation::LengthMismatch { .. })
        ));
    }

    #[test]
    fn classes_partition_edges() {
        let mut rng = SplitMix64::new(33);
        let g = random_regular_multigraph(6, 5, &mut rng);
        let coloring = ColorerKind::EulerSplit.color(&g);
        let mut all: Vec<EdgeId> = coloring.classes().concat();
        all.sort_unstable();
        assert_eq!(all, (0..g.edge_count()).collect::<Vec<_>>());
    }

    #[test]
    fn classes_flat_matches_classes() {
        let mut rng = SplitMix64::new(34);
        for kind in ColorerKind::ALL {
            let g = random_multigraph(5, 7, 30, &mut rng);
            let coloring = kind.color(&g);
            let nested = coloring.classes();
            let (offsets, flat) = coloring.classes_flat();
            assert_eq!(offsets.len(), coloring.num_colors + 1);
            assert_eq!(flat.len(), g.edge_count());
            for (c, class) in nested.iter().enumerate() {
                assert_eq!(
                    &flat[offsets[c]..offsets[c + 1]],
                    class.as_slice(),
                    "{} colour {c}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn classes_flat_on_empty_coloring() {
        let coloring = EdgeColoring {
            num_colors: 0,
            colors: vec![],
        };
        let (offsets, flat) = coloring.classes_flat();
        assert_eq!(offsets, vec![0]);
        assert!(flat.is_empty());
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0), (0, 0), (0, 0)]).unwrap();
        for kind in ColorerKind::ALL {
            let coloring = kind.color(&g);
            let mut cs = coloring.colors.clone();
            cs.sort_unstable();
            cs.dedup();
            assert_eq!(cs.len(), 3, "{}", kind.name());
        }
    }

    #[test]
    fn violation_display() {
        let v = ColoringViolation::Conflict {
            first: 1,
            second: 2,
            color: 0,
        };
        assert!(v.to_string().contains("share colour 0"));
    }
}
