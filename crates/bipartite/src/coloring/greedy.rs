//! First-fit greedy edge colouring — the *negative baseline* for
//! experiment T4.
//!
//! Greedy first-fit assigns each edge the smallest colour free at both
//! endpoints. It is fast and simple but only guarantees `2Δ − 1` colours —
//! **not** the `Δ` König's theorem promises. That gap is why the paper's
//! Theorem 1 needs a real 1-factorization: a fair distribution must use
//! exactly `n₂` targets with fibres of exactly `Δ₂`, and a colouring with
//! more than `n₂` colours does not even type-check as a fair distribution
//! (some colour classes would be too small, breaking equation (2), i.e.
//! overloading some intermediate group beyond its `d` processors).
//!
//! [`color_greedy`] is intentionally *not* a [`crate::coloring::ColorerKind`]
//! variant — its contract is different (colour count is an output, not a
//! guarantee).

use crate::coloring::EdgeColoring;
use crate::graph::BipartiteMultigraph;

const NONE: usize = usize::MAX;

/// First-fit greedy edge colouring in edge-id order. Returns a proper
/// colouring using at most `2Δ − 1` colours (and exactly however many the
/// instance forces; `num_colors` reports the count actually used).
pub fn color_greedy(g: &BipartiteMultigraph) -> EdgeColoring {
    let delta = g.max_degree();
    if delta == 0 {
        return EdgeColoring {
            num_colors: 0,
            colors: Vec::new(),
        };
    }
    let palette = 2 * delta - 1;
    let mut left_table = vec![NONE; g.left_count() * palette];
    let mut right_table = vec![NONE; g.right_count() * palette];
    let mut colors = vec![NONE; g.edge_count()];
    let mut used = 0usize;
    for (e, u, v) in g.edges() {
        let c = (0..palette)
            .find(|&c| left_table[u * palette + c] == NONE && right_table[v * palette + c] == NONE)
            .expect("2Δ−1 colours always suffice for first-fit");
        colors[e] = c;
        left_table[u * palette + c] = e;
        right_table[v * palette + c] = e;
        used = used.max(c + 1);
    }
    EdgeColoring {
        num_colors: used,
        colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{verify_proper, ColorerKind};
    use crate::generators::{random_multigraph, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn greedy_is_proper_and_bounded_on_regular_graphs() {
        let mut rng = SplitMix64::new(81);
        for _ in 0..50 {
            let g = random_regular_multigraph(8, 5, &mut rng);
            let greedy = color_greedy(&g);
            verify_proper(&g, &greedy).unwrap();
            assert!(greedy.num_colors < 2 * 5);
            assert!(greedy.num_colors >= 5, "cannot beat Δ");
            // The real engines never overshoot.
            assert_eq!(ColorerKind::EulerSplit.color(&g).num_colors, 5);
        }
    }

    #[test]
    fn greedy_overshoots_delta_on_an_adversarial_order() {
        // The classic forcing instance: after (x,p)→0, (r,s)→0, (r,y)→1,
        // the edge (x,y) sees colour 0 used at x and colour 1 at y, and
        // first-fit spends a THIRD colour although Δ = 2. This is exactly
        // why Theorem 1 needs a true 1-factorization, not a greedy pass.
        let g = BipartiteMultigraph::from_edges(2, 3, [(0, 0), (1, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.max_degree(), 2);
        let greedy = color_greedy(&g);
        verify_proper(&g, &greedy).unwrap();
        assert_eq!(greedy.num_colors, 3, "greedy forced over Δ");
        // Every real engine colours it with Δ = 2.
        for kind in ColorerKind::ALL {
            assert_eq!(kind.color(&g).num_colors, 2, "{}", kind.name());
        }
    }

    #[test]
    fn greedy_on_irregular_graphs() {
        let mut rng = SplitMix64::new(82);
        for _ in 0..20 {
            let g = random_multigraph(6, 9, 35, &mut rng);
            let coloring = color_greedy(&g);
            verify_proper(&g, &coloring).unwrap();
            assert!(coloring.num_colors < 2 * g.max_degree());
        }
    }

    #[test]
    fn greedy_empty_graph() {
        let g = BipartiteMultigraph::new(3, 3);
        assert_eq!(color_greedy(&g).num_colors, 0);
    }

    #[test]
    fn greedy_matches_delta_on_a_star() {
        // A star is interval-graph-easy: greedy is optimal there.
        let g = BipartiteMultigraph::from_edges(1, 4, (0..4).map(|v| (0, v))).unwrap();
        assert_eq!(color_greedy(&g).num_colors, 4);
    }
}
