//! König-style edge colouring by repeated perfect-matching removal.
//!
//! The constructive reading of König's 1916 theorem (the paper's citation
//! for Theorem 1): a `k`-regular bipartite multigraph is the disjoint union
//! of `k` perfect matchings. Peel one perfect matching per colour with
//! Hopcroft–Karp; after removing a perfect matching the remainder is
//! `(k−1)`-regular, so induction goes through.
//!
//! Complexity `O(k · m · √n)` — the slowest of the three engines but the
//! most direct transcription of the proof; kept both as a baseline for
//! experiment T4 and as a correctness oracle in tests.

use crate::coloring::{color_via_regular_decomposition, EdgeColoring};
use crate::graph::{BipartiteMultigraph, EdgeId};
use crate::matching::perfect_matching;

/// Properly colours `g` with `max_degree(g)` colours (padding non-regular
/// inputs to regular first).
pub fn color(g: &BipartiteMultigraph) -> EdgeColoring {
    color_via_regular_decomposition(g, decompose_regular)
}

/// Decomposes a `k`-regular multigraph into `k` perfect matchings,
/// returning the colour of every edge.
fn decompose_regular(g: &BipartiteMultigraph, k: usize) -> Vec<usize> {
    let mut colors = vec![usize::MAX; g.edge_count()];
    let mut remaining: Vec<EdgeId> = (0..g.edge_count()).collect();
    for color in 0..k {
        let (sub, mapping) = g.edge_subgraph(&remaining);
        let matching = perfect_matching(&sub).unwrap_or_else(|e| {
            unreachable!(
                "{}-regular remainder must have a perfect matching: {e}",
                k - color
            )
        });
        let mut in_matching = vec![false; sub.edge_count()];
        for &e in &matching.edges {
            in_matching[e] = true;
            colors[mapping[e]] = color;
        }
        remaining = mapping
            .iter()
            .enumerate()
            .filter(|&(sub_e, _)| !in_matching[sub_e])
            .map(|(_, &orig)| orig)
            .collect();
    }
    debug_assert!(remaining.is_empty());
    debug_assert!(colors.iter().all(|&c| c != usize::MAX));
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::verify_proper;
    use crate::generators::random_regular_multigraph;
    use pops_permutation::SplitMix64;

    #[test]
    fn decomposes_union_of_known_matchings() {
        // Identity matching + shift-by-one matching on 3+3 nodes.
        let g =
            BipartiteMultigraph::from_edges(3, 3, [(0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (2, 0)])
                .unwrap();
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 2);
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn each_class_is_a_perfect_matching_on_regular_input() {
        let mut rng = SplitMix64::new(41);
        let g = random_regular_multigraph(10, 7, &mut rng);
        let coloring = color(&g);
        for class in coloring.classes() {
            assert_eq!(class.len(), 10);
        }
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn one_regular_is_single_matching() {
        let mut rng = SplitMix64::new(42);
        let g = random_regular_multigraph(8, 1, &mut rng);
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 1);
        assert!(coloring.colors.iter().all(|&c| c == 0));
    }
}
