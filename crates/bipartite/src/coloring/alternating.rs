//! Edge colouring by alternating-chain insertion (bipartite Vizing).
//!
//! Insert edges one at a time. For a new edge `(u, v)` pick a colour `a`
//! missing at `u` and `b` missing at `v` (both exist: degrees are below
//! `Δ`, and we colour with `Δ` colours). If `a == b`, done. Otherwise flip
//! the maximal `(a, b)`-alternating chain starting at `v`: the chain cannot
//! end at `u` (it leaves `v` on a `a`-edge and, being alternating, could
//! only reach `u` on a `a`-edge — but `a` is missing at `u`; the parity
//! argument in a bipartite graph rules out the `b`-arrival too since `b`
//! was missing at `v`). After the flip `a` is free at both ends.
//!
//! `O(n)` per edge worst case, `O(n·m)` total — no padding needed, works
//! directly on irregular multigraphs, and is very fast on the sparse demand
//! graphs of small routing instances.

use crate::coloring::EdgeColoring;
use crate::graph::{BipartiteMultigraph, EdgeId};

const NONE: usize = usize::MAX;

/// Properly colours `g` with `max_degree(g)` colours.
pub fn color(g: &BipartiteMultigraph) -> EdgeColoring {
    let delta = g.max_degree();
    let mut colors = vec![NONE; g.edge_count()];
    if delta == 0 {
        return EdgeColoring {
            num_colors: 0,
            colors,
        };
    }

    // table[node * delta + c] = edge of colour c at node, or NONE.
    let mut left_table = vec![NONE; g.left_count() * delta];
    let mut right_table = vec![NONE; g.right_count() * delta];

    let first_free = |table: &[usize], node: usize| -> usize {
        (0..delta)
            .find(|&c| table[node * delta + c] == NONE)
            .expect("a colour below Δ is always free at an uncoloured-incident node")
    };

    for (e, u, v) in g.edges() {
        let a = first_free(&left_table, u);
        let b = first_free(&right_table, v);
        if a == b {
            colors[e] = a;
            left_table[u * delta + a] = e;
            right_table[v * delta + a] = e;
            continue;
        }
        // Flip the (a, b)-alternating chain starting at v. At v colour b is
        // free, so the chain leaves v along its a-edge (if any), then
        // alternates b, a, b, … Re-colouring swaps a and b along the chain;
        // it frees colour a at v without disturbing properness elsewhere.
        let mut want = a; // the colour of the next edge to follow
        let mut at_right = true; // current endpoint side
        let mut node = v;
        let mut chain: Vec<EdgeId> = Vec::new();
        loop {
            let table = if at_right { &right_table } else { &left_table };
            let next = table[node * delta + want];
            if next == NONE {
                break;
            }
            chain.push(next);
            let (nu, nv) = g.endpoints(next);
            node = if at_right { nu } else { nv };
            at_right = !at_right;
            want = if want == a { b } else { a };
        }
        // The chain can never even visit u: left nodes are only reached via
        // a-coloured edges, and a is missing at u.
        debug_assert!(at_right || node != u, "alternating chain reached u");
        // Swap colours along the chain (chain edges alternate a, b, a, …).
        // Two phases: clear every old entry first, then write the new ones —
        // consecutive chain edges share nodes, so interleaving the clears
        // and writes would erase freshly written entries.
        for &ce in &chain {
            let (cu, cv) = g.endpoints(ce);
            let old = colors[ce];
            left_table[cu * delta + old] = NONE;
            right_table[cv * delta + old] = NONE;
        }
        for &ce in &chain {
            let (cu, cv) = g.endpoints(ce);
            let new = if colors[ce] == a { b } else { a };
            colors[ce] = new;
            left_table[cu * delta + new] = ce;
            right_table[cv * delta + new] = ce;
        }
        debug_assert_eq!(left_table[u * delta + a], NONE);
        debug_assert_eq!(right_table[v * delta + a], NONE);
        colors[e] = a;
        left_table[u * delta + a] = e;
        right_table[v * delta + a] = e;
    }

    EdgeColoring {
        num_colors: delta,
        colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::verify_proper;
    use crate::generators::{random_bipartite, random_multigraph, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn colors_a_path_with_two_colors() {
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]).unwrap();
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 2);
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn colors_star_graphs() {
        // All edges share the left node: Δ colours, all distinct.
        let g = BipartiteMultigraph::from_edges(1, 5, (0..5).map(|v| (0, v))).unwrap();
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 5);
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn chain_flip_case_is_exercised() {
        // Triangle-ish: forces a != b on the last insert.
        // Edges: (0,0), (1,1), then (0,1) — at 0 colour 1 free? colour(0,0)
        // gets 0; (1,1) gets 0; inserting (0,1): free at 0 is 1, free at 1
        // is 1 — same. Add (1,0) to force a flip: free at L1 is 1, free at
        // R0 is 1 … craft a genuinely conflicting case instead:
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let coloring = color(&g);
        assert_eq!(coloring.num_colors, 2);
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn handles_dense_random_graphs() {
        let mut rng = SplitMix64::new(51);
        for _ in 0..10 {
            let g = random_bipartite(12, 12, 0.7, &mut rng);
            let coloring = color(&g);
            assert_eq!(coloring.num_colors, g.max_degree());
            verify_proper(&g, &coloring).unwrap();
        }
    }

    #[test]
    fn handles_multigraphs_with_heavy_parallel_bundles() {
        let mut rng = SplitMix64::new(52);
        let g = random_multigraph(3, 3, 60, &mut rng);
        let coloring = color(&g);
        verify_proper(&g, &coloring).unwrap();
    }

    #[test]
    fn regular_inputs_yield_perfect_matching_classes() {
        let mut rng = SplitMix64::new(53);
        let g = random_regular_multigraph(9, 6, &mut rng);
        let coloring = color(&g);
        for class in coloring.classes() {
            assert_eq!(class.len(), 9);
        }
    }
}
