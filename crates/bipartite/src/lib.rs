//! Bipartite multigraphs, matchings, Euler partitions, and edge colouring.
//!
//! This crate is the combinatorial substrate of the fair-distribution
//! construction in Theorem 1 of Mei & Rizzi, *Routing Permutations in
//! Partitioned Optical Passive Stars Networks* (IPPS 2002). The theorem's
//! proof reduces fair distribution to:
//!
//! 1. building the bipartite *demand* multigraph `G = (S, S′; E)` of a
//!    proper list system ([`BipartiteMultigraph`]),
//! 2. padding it to an `n₂`-regular multigraph with the auxiliary
//!    `(n₂, n₂−Δ₁)`-biregular graphs `H₁`, `H₂` ([`regularize`]),
//! 3. decomposing the padded graph into `n₂` perfect matchings — an edge
//!    colouring with `n₂` colours, which exists by König's theorem
//!    ([`coloring`]),
//! 4. discarding the pad edges, leaving exactly `Δ₂ = n₁Δ₁/n₂` real edges
//!    of every colour.
//!
//! Remark 1 of the paper observes the computational bottleneck is the
//! 1-factorization and cites Schrijver's O(Δm) algorithm and the
//! Kapoor–Rizzi/Rizzi O(m log Δ)-flavoured algorithms. This crate ships
//! three interchangeable engines spanning that design space (see
//! [`coloring::ColorerKind`]), benchmarked against each other in experiment
//! T4 of the reproduction:
//!
//! * [`coloring::koenig`] — repeated Hopcroft–Karp perfect matchings
//!   (the textbook constructive König proof),
//! * [`coloring::alternating`] — insert edges one at a time, flipping
//!   two-colour alternating chains (Vizing-style, exact for bipartite),
//! * [`coloring::euler_split`] — divide and conquer by Euler partition:
//!   halve even-degree graphs, peel one perfect matching at odd degrees
//!   (Gabow's scheme, the ancestor of the Rizzi-cited algorithms).
//!
//! All engines produce *proper* colourings with exactly `max_degree(G)`
//! colours on any bipartite multigraph (non-regular inputs are padded to
//! regular internally, per [`regularize::pad_to_regular`]).
//!
//! ```
//! use pops_bipartite::{BipartiteMultigraph, ColorerKind};
//! use pops_bipartite::coloring::verify_proper;
//!
//! // A 2-regular multigraph (a 4-cycle) 1-factorizes into 2 matchings.
//! let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
//! let coloring = ColorerKind::default().color(&g);
//! assert_eq!(coloring.num_colors, 2);
//! assert!(verify_proper(&g, &coloring).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod euler;
pub mod generators;
pub mod graph;
pub mod matching;
pub mod regularize;

pub use coloring::{ColorerKind, EdgeColoring};
pub use graph::{BipartiteMultigraph, EdgeId, GraphError};
pub use matching::Matching;
