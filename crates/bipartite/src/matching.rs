//! Maximum and perfect matchings in bipartite multigraphs (Hopcroft–Karp).
//!
//! König's 1-factorization theorem — the engine of the paper's Theorem 1 —
//! is proved constructively by peeling perfect matchings off a regular
//! multigraph. Every k-regular bipartite multigraph with `k ≥ 1` has a
//! perfect matching (Hall's condition holds by counting), so
//! [`perfect_matching`] never fails on the graphs the routing constructs.

use crate::graph::{BipartiteMultigraph, EdgeId};

/// A matching: a set of edges no two of which share a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// The matched edge incident to each left node, if any.
    pub left_match: Vec<Option<EdgeId>>,
    /// The matched edge incident to each right node, if any.
    pub right_match: Vec<Option<EdgeId>>,
    /// The matched edge ids (one per matched pair).
    pub edges: Vec<EdgeId>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the matching covers every node on both sides.
    pub fn is_perfect(&self, g: &BipartiteMultigraph) -> bool {
        self.size() == g.left_count() && self.size() == g.right_count()
    }

    /// Validates the matching invariants against the graph it came from.
    /// Used by tests and the property suites.
    pub fn validate(&self, g: &BipartiteMultigraph) -> Result<(), String> {
        let mut seen_left = vec![false; g.left_count()];
        let mut seen_right = vec![false; g.right_count()];
        for &e in &self.edges {
            if e >= g.edge_count() {
                return Err(format!("edge id {e} out of range"));
            }
            let (u, v) = g.endpoints(e);
            if seen_left[u] {
                return Err(format!("left node {u} matched twice"));
            }
            if seen_right[v] {
                return Err(format!("right node {v} matched twice"));
            }
            seen_left[u] = true;
            seen_right[v] = true;
            if self.left_match[u] != Some(e) || self.right_match[v] != Some(e) {
                return Err(format!("match arrays inconsistent at edge {e}"));
            }
        }
        Ok(())
    }
}

/// Computes a maximum matching with the Hopcroft–Karp algorithm in
/// `O(m·√n)` time. Parallel edges are handled naturally (at most one of a
/// parallel bundle can ever be matched).
pub fn maximum_matching(g: &BipartiteMultigraph) -> Matching {
    const UNREACHED: u32 = u32::MAX;

    let left_n = g.left_count();
    let adj = g.left_adjacency();

    let mut match_left: Vec<Option<EdgeId>> = vec![None; left_n];
    let mut match_right: Vec<Option<EdgeId>> = vec![None; g.right_count()];

    // Greedy initialization: halves the number of augmenting phases in
    // practice.
    for u in 0..left_n {
        for &e in &adj[u] {
            let (_, v) = g.endpoints(e);
            if match_right[v].is_none() {
                match_left[u] = Some(e);
                match_right[v] = Some(e);
                break;
            }
        }
    }

    let mut dist = vec![UNREACHED; left_n];
    let mut queue: Vec<usize> = Vec::with_capacity(left_n);
    // Iterative DFS stack: (left node, index into its adjacency list).
    let mut stack: Vec<(usize, usize)> = Vec::new();

    loop {
        // BFS phase: layer left nodes by alternating-path distance from the
        // set of free left nodes.
        queue.clear();
        for u in 0..left_n {
            if match_left[u].is_none() {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = UNREACHED;
            }
        }
        let mut found_augmenting_layer = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &e in &adj[u] {
                let (_, v) = g.endpoints(e);
                match match_right[v] {
                    None => found_augmenting_layer = true,
                    Some(me) => {
                        let (w, _) = g.endpoints(me);
                        if dist[w] == UNREACHED {
                            dist[w] = dist[u] + 1;
                            queue.push(w);
                        }
                    }
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths and flip them.
        for start in 0..left_n {
            if match_left[start].is_some() {
                continue;
            }
            // Iterative DFS from the free node `start` along layered edges.
            stack.clear();
            stack.push((start, 0));
            // Records the edge chosen out of each left node on the path.
            let mut path: Vec<EdgeId> = Vec::new();
            let mut augmented = false;
            while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
                if *idx >= adj[u].len() {
                    // Exhausted: retreat; mark unreachable so other DFS
                    // roots skip it this phase.
                    dist[u] = UNREACHED;
                    stack.pop();
                    path.pop();
                    continue;
                }
                let e = adj[u][*idx];
                *idx += 1;
                let (_, v) = g.endpoints(e);
                match match_right[v] {
                    None => {
                        // Augmenting path found: flip along it.
                        path.push(e);
                        for &pe in path.iter().rev() {
                            let (pu, pv) = g.endpoints(pe);
                            match_left[pu] = Some(pe);
                            match_right[pv] = Some(pe);
                        }
                        augmented = true;
                        break;
                    }
                    Some(me) => {
                        let (w, _) = g.endpoints(me);
                        if dist[w] == dist[u] + 1 {
                            path.push(e);
                            stack.push((w, 0));
                        }
                    }
                }
            }
            if augmented {
                // Nodes on the used path keep their dist; they are matched
                // now, so other roots won't reuse them as path interiors
                // (interior reuse requires following their *old* matched
                // edge, which no longer exists).
            }
        }
    }

    let edges: Vec<EdgeId> = match_left.iter().flatten().copied().collect();
    Matching {
        left_match: match_left,
        right_match: match_right,
        edges,
    }
}

/// Error returned by [`perfect_matching`] when none exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoPerfectMatching {
    /// Size of the maximum matching actually found.
    pub maximum_size: usize,
    /// Number of nodes per side that would need to be covered.
    pub required: usize,
}

impl std::fmt::Display for NoPerfectMatching {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no perfect matching: maximum matching covers {} of {} nodes",
            self.maximum_size, self.required
        )
    }
}

impl std::error::Error for NoPerfectMatching {}

/// Finds a perfect matching, or reports that none exists.
///
/// On the k-regular (k ≥ 1) multigraphs produced by the Theorem-1
/// construction this always succeeds.
pub fn perfect_matching(g: &BipartiteMultigraph) -> Result<Matching, NoPerfectMatching> {
    if g.left_count() != g.right_count() {
        return Err(NoPerfectMatching {
            maximum_size: 0,
            required: g.left_count().max(g.right_count()),
        });
    }
    let m = maximum_matching(g);
    if m.is_perfect(g) {
        Ok(m)
    } else {
        Err(NoPerfectMatching {
            maximum_size: m.size(),
            required: g.left_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_bipartite, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn perfect_matching_in_complete_bipartite() {
        let mut g = BipartiteMultigraph::new(4, 4);
        for u in 0..4 {
            for v in 0..4 {
                g.add_edge(u, v);
            }
        }
        let m = perfect_matching(&g).unwrap();
        assert_eq!(m.size(), 4);
        m.validate(&g).unwrap();
    }

    #[test]
    fn maximum_matching_in_path() {
        // Path L0 - R0 - L1 - R1: maximum matching has size 2.
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]).unwrap();
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 2);
        m.validate(&g).unwrap();
    }

    #[test]
    fn detects_no_perfect_matching() {
        // Two left nodes share a single right neighbour.
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (1, 0)]).unwrap();
        let err = perfect_matching(&g).unwrap_err();
        assert_eq!(err.maximum_size, 1);
        assert!(err.to_string().contains("covers 1 of 2"));
    }

    #[test]
    fn unequal_sides_never_perfect() {
        let g = BipartiteMultigraph::from_edges(1, 2, [(0, 0), (0, 1)]).unwrap();
        assert!(perfect_matching(&g).is_err());
    }

    #[test]
    fn parallel_edges_matched_at_most_once() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0), (0, 0), (0, 0)]).unwrap();
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 1);
        m.validate(&g).unwrap();
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteMultigraph::new(0, 0);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 0);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn isolated_nodes_are_skipped() {
        let g = BipartiteMultigraph::from_edges(3, 3, [(0, 0), (1, 1)]).unwrap();
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn regular_multigraphs_always_have_perfect_matchings() {
        let mut rng = SplitMix64::new(11);
        for (n, k) in [(3usize, 1usize), (5, 3), (8, 4), (16, 7), (32, 5), (10, 10)] {
            let g = random_regular_multigraph(n, k, &mut rng);
            let m = perfect_matching(&g).unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn maximum_matching_matches_brute_force_on_small_graphs() {
        // Exhaustive check on random graphs with <= 6+6 nodes.
        fn brute_force(g: &BipartiteMultigraph) -> usize {
            fn rec(
                g: &BipartiteMultigraph,
                adj: &[Vec<EdgeId>],
                u: usize,
                used_right: &mut Vec<bool>,
            ) -> usize {
                if u == g.left_count() {
                    return 0;
                }
                // Skip u.
                let mut best = rec(g, adj, u + 1, used_right);
                for &e in &adj[u] {
                    let (_, v) = g.endpoints(e);
                    if !used_right[v] {
                        used_right[v] = true;
                        best = best.max(1 + rec(g, adj, u + 1, used_right));
                        used_right[v] = false;
                    }
                }
                best
            }
            let adj = g.left_adjacency();
            rec(g, &adj, 0, &mut vec![false; g.right_count()])
        }

        let mut rng = SplitMix64::new(99);
        for _ in 0..40 {
            let g = random_bipartite(5, 6, 0.4, &mut rng);
            let hk = maximum_matching(&g);
            hk.validate(&g).unwrap();
            assert_eq!(hk.size(), brute_force(&g), "graph: {g:?}");
        }
    }
}
