//! Euler partitions and the *Euler split* of even-degree bipartite
//! multigraphs.
//!
//! The Euler split is the workhorse of the divide-and-conquer edge-colouring
//! family (Gabow 1976; Kapoor–Rizzi 2000; Rizzi 2001 — the algorithms cited
//! by Remark 1 of the paper): a multigraph in which every node has even
//! degree decomposes into closed trails; walking each trail and assigning
//! edges alternately to two buckets exactly halves every node's degree, so a
//! `2k`-regular graph splits into two `k`-regular ones in `O(m)` time.

use crate::graph::{BipartiteMultigraph, EdgeId};

/// The result of [`euler_split`]: a partition of all edge ids into two sets
/// such that each node's degree is exactly halved in each set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerSplit {
    /// First half of the edges.
    pub first: Vec<EdgeId>,
    /// Second half of the edges.
    pub second: Vec<EdgeId>,
}

/// Splits a bipartite multigraph in which **every node has even degree**
/// into two halves with exactly halved degrees.
///
/// Works by decomposing the graph into closed trails (Hierholzer's
/// algorithm, iterative) and assigning the edges of each trail alternately.
/// In a bipartite graph every closed trail has even length, so the
/// alternation is consistent around the trail and each visit to a node puts
/// one incident edge in each half.
///
/// Runs in `O(n + m)` time.
///
/// # Errors
///
/// Returns `Err(node_with_odd_degree)` if some node has odd degree; the node
/// is reported as `(side, index)` with `side == 0` for left.
pub fn euler_split(g: &BipartiteMultigraph) -> Result<EulerSplit, (usize, usize)> {
    let left_deg = g.left_degrees();
    if let Some(u) = left_deg.iter().position(|&dg| dg % 2 != 0) {
        return Err((0, u));
    }
    let right_deg = g.right_degrees();
    if let Some(v) = right_deg.iter().position(|&dg| dg % 2 != 0) {
        return Err((1, v));
    }

    // Unified node numbering: left nodes 0..L, right nodes L..L+R.
    let offset = g.left_count();
    let node_count = offset + g.right_count();
    let m = g.edge_count();

    // Incidence lists over unified nodes; each edge appears twice.
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); node_count];
    for (e, u, v) in g.edges() {
        incident[u].push(e);
        incident[offset + v].push(e);
    }
    // Cursor into each incidence list, skipping used edges lazily.
    let mut cursor = vec![0usize; node_count];
    let mut used = vec![false; m];

    let mut first = Vec::with_capacity(m / 2 + 1);
    let mut second = Vec::with_capacity(m / 2 + 1);

    // Hierholzer: from every node with unused incident edges, walk a closed
    // trail (even degrees guarantee we can only get stuck back at the
    // start), assigning alternately as we walk. Each closed trail in a
    // bipartite graph has even length, so alternation is globally
    // consistent at the trail's start node too.
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..node_count {
        loop {
            // Advance the cursor past used edges.
            while cursor[start] < incident[start].len() && used[incident[start][cursor[start]]] {
                cursor[start] += 1;
            }
            if cursor[start] == incident[start].len() {
                break; // node exhausted
            }
            // Walk one closed trail starting (and necessarily ending) here.
            // We collect the trail as edge ids, then assign alternately.
            stack.clear();
            let mut trail: Vec<EdgeId> = Vec::new();
            let mut cur = start;
            loop {
                while cursor[cur] < incident[cur].len() && used[incident[cur][cursor[cur]]] {
                    cursor[cur] += 1;
                }
                if cursor[cur] == incident[cur].len() {
                    // Dead end: with all-even degrees this can only be the
                    // start node, closing the trail.
                    break;
                }
                let e = incident[cur][cursor[cur]];
                used[e] = true;
                trail.push(e);
                let (eu, ev) = g.endpoints(e);
                let other = if eu == cur { offset + ev } else { eu };
                debug_assert!(eu == cur || offset + ev == cur);
                cur = other;
            }
            debug_assert_eq!(cur, start, "even degrees force a closed trail");
            debug_assert!(
                trail.len().is_multiple_of(2),
                "bipartite closed trails are even"
            );
            for (i, e) in trail.into_iter().enumerate() {
                if i % 2 == 0 {
                    first.push(e);
                } else {
                    second.push(e);
                }
            }
        }
    }

    debug_assert_eq!(first.len() + second.len(), m);
    Ok(EulerSplit { first, second })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_regular_multigraph;
    use pops_permutation::SplitMix64;

    fn degrees_of(g: &BipartiteMultigraph, edges: &[EdgeId]) -> (Vec<usize>, Vec<usize>) {
        let mut l = vec![0usize; g.left_count()];
        let mut r = vec![0usize; g.right_count()];
        for &e in edges {
            let (u, v) = g.endpoints(e);
            l[u] += 1;
            r[v] += 1;
        }
        (l, r)
    }

    #[test]
    fn splits_a_4_cycle() {
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let split = euler_split(&g).unwrap();
        assert_eq!(split.first.len(), 2);
        assert_eq!(split.second.len(), 2);
        let (l, r) = degrees_of(&g, &split.first);
        assert_eq!(l, vec![1, 1]);
        assert_eq!(r, vec![1, 1]);
    }

    #[test]
    fn splits_doubled_edges() {
        // Two parallel edges form a closed trail of length 2.
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0), (0, 0)]).unwrap();
        let split = euler_split(&g).unwrap();
        assert_eq!(split.first.len(), 1);
        assert_eq!(split.second.len(), 1);
    }

    #[test]
    fn rejects_odd_degrees() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0)]).unwrap();
        assert_eq!(euler_split(&g), Err((0, 0)));
    }

    #[test]
    fn reports_odd_right_node() {
        // Left degrees [2], right degrees [1, 1]: left is even, right odd.
        let g = BipartiteMultigraph::from_edges(1, 2, [(0, 0), (0, 1)]).unwrap();
        assert_eq!(euler_split(&g), Err((1, 0)));
    }

    #[test]
    fn empty_graph_splits_trivially() {
        let g = BipartiteMultigraph::new(3, 3);
        let split = euler_split(&g).unwrap();
        assert!(split.first.is_empty() && split.second.is_empty());
    }

    #[test]
    fn halves_regular_graphs_exactly() {
        let mut rng = SplitMix64::new(42);
        for (n, k) in [(4usize, 2usize), (6, 4), (8, 6), (5, 2), (16, 8)] {
            let g = random_regular_multigraph(n, k, &mut rng);
            let split = euler_split(&g).unwrap();
            for half in [&split.first, &split.second] {
                let (l, r) = degrees_of(&g, half);
                assert!(l.iter().all(|&dg| dg == k / 2), "n={n} k={k}");
                assert!(r.iter().all(|&dg| dg == k / 2), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn split_partitions_all_edges() {
        let mut rng = SplitMix64::new(7);
        let g = random_regular_multigraph(10, 6, &mut rng);
        let split = euler_split(&g).unwrap();
        let mut all: Vec<EdgeId> = split.first.iter().chain(&split.second).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..g.edge_count()).collect::<Vec<_>>());
    }

    #[test]
    fn disconnected_components_handled() {
        // Two disjoint 2-cycles (parallel edges).
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 0), (1, 1), (1, 1)]).unwrap();
        let split = euler_split(&g).unwrap();
        let (l1, _) = degrees_of(&g, &split.first);
        assert_eq!(l1, vec![1, 1]);
    }
}
