//! Padding bipartite multigraphs to regularity.
//!
//! Two paddings live here:
//!
//! * [`pad_to_regular`] — the generic embedding of an arbitrary bipartite
//!   multigraph into a `Δ`-regular one, used by the colouring engines so
//!   they can run their regular-graph decompositions on any input;
//! * [`theorem1_pad`] — the **exact padding from the proof of Theorem 1**
//!   of the paper: given the `Δ₁`-regular demand graph `G = (S, S′)` on
//!   `n₁ + n₁` nodes and a colour budget `n₂` (with `n₂ ≥ Δ₁` and
//!   `n₂ | n₁Δ₁`), add node sets `V`, `V′` of size `n₁ − Δ₂` each
//!   (`Δ₂ = n₁Δ₁/n₂`) and biregular pad graphs `H₁ = (V, S′)`,
//!   `H₂ = (V′, S)` with degrees `(n₂, n₂−Δ₁)`, so the union is
//!   `n₂`-regular. Crucially every pad edge touches **exactly one** pad
//!   node, so every perfect matching of the padded graph contains exactly
//!   `|V| + |V′|` pad edges and therefore exactly `Δ₂` real edges — the
//!   equal-colour-class-size property that makes the fair distribution
//!   *fair* (equation (2) of the paper).

use crate::graph::{BipartiteMultigraph, EdgeId};

/// A padded graph: the original edges keep their ids (`0..real_edge_count`),
/// pad edges are appended after them.
#[derive(Debug, Clone)]
pub struct Padded {
    /// The padded (regular) graph.
    pub graph: BipartiteMultigraph,
    /// Number of original edges; ids `>= real_edge_count` are pad edges.
    pub real_edge_count: usize,
    /// The degree the padded graph is regular with.
    pub degree: usize,
}

impl Padded {
    /// `true` iff `e` is one of the original (non-pad) edges.
    #[inline]
    pub fn is_real(&self, e: EdgeId) -> bool {
        e < self.real_edge_count
    }
}

/// Embeds an arbitrary bipartite multigraph into a `degree`-regular
/// multigraph on `N + N` nodes, `N = max(left, right, ceil(m/degree))`,
/// preserving original edge ids.
///
/// The original nodes keep their indices; new nodes are appended. Deficient
/// left and right nodes are connected greedily (the total deficits on the
/// two sides are equal, so the greedy pairing terminates with all degrees
/// exactly `degree`).
///
/// # Panics
///
/// Panics if `degree` is smaller than the maximum degree of `g`.
pub fn pad_to_regular(g: &BipartiteMultigraph, degree: usize) -> Padded {
    let max_deg = g.max_degree();
    assert!(
        degree >= max_deg,
        "cannot pad to degree {degree}: graph has a node of degree {max_deg}"
    );
    let m = g.edge_count();
    let min_nodes = if degree == 0 { 0 } else { m.div_ceil(degree) };
    let n = g.left_count().max(g.right_count()).max(min_nodes);

    let mut padded = BipartiteMultigraph::new(n, n);
    for (_, u, v) in g.edges() {
        padded.add_edge(u, v);
    }

    let mut left_deficit: Vec<usize> = {
        let mut d = g.left_degrees();
        d.resize(n, 0);
        d.iter().map(|&dg| degree - dg).collect()
    };
    let mut right_deficit: Vec<usize> = {
        let mut d = g.right_degrees();
        d.resize(n, 0);
        d.iter().map(|&dg| degree - dg).collect()
    };
    debug_assert_eq!(
        left_deficit.iter().sum::<usize>(),
        right_deficit.iter().sum::<usize>()
    );

    let mut ru = 0usize; // right cursor
    #[allow(clippy::needless_range_loop)] // u indexes a slice mutated in the body
    for u in 0..n {
        while left_deficit[u] > 0 {
            while ru < n && right_deficit[ru] == 0 {
                ru += 1;
            }
            debug_assert!(ru < n, "total deficits are equal");
            let take = left_deficit[u].min(right_deficit[ru]);
            for _ in 0..take {
                padded.add_edge(u, ru);
            }
            left_deficit[u] -= take;
            right_deficit[ru] -= take;
        }
    }

    debug_assert_eq!(padded.regular_degree(), Some(degree));
    Padded {
        graph: padded,
        real_edge_count: m,
        degree,
    }
}

/// The Theorem-1 padding (see module docs). `g` must be `Δ₁`-regular on
/// `n₁ + n₁` nodes; `colors` is the paper's `n₂`.
///
/// Returns a `colors`-regular multigraph on `(n₁ + p) + (n₁ + p)` nodes,
/// `p = n₁ − Δ₂`, in which every pad edge is incident to exactly one pad
/// node, so each colour class of any proper `colors`-colouring contains
/// exactly `Δ₂` real edges.
///
/// # Panics
///
/// Panics if `g` is not regular with equal sides, if `colors < Δ₁`, or if
/// `colors` does not divide `n₁ · Δ₁`.
pub fn theorem1_pad(g: &BipartiteMultigraph, colors: usize) -> Padded {
    let n1 = g.left_count();
    assert_eq!(
        n1,
        g.right_count(),
        "Theorem 1 demand graph has equal sides"
    );
    let delta1 = g
        .regular_degree()
        .expect("Theorem 1 demand graph must be regular");
    assert!(
        colors >= delta1,
        "colour budget n2={colors} below list length Δ1={delta1}"
    );
    if delta1 == 0 {
        // No real edges: pad to a `colors`-regular graph on pad nodes only
        // when colors > 0; with n1 nodes per side all deficient.
        let padded = pad_to_regular(g, colors);
        return Padded {
            real_edge_count: 0,
            degree: colors,
            graph: padded.graph,
        };
    }
    assert_eq!(
        (n1 * delta1) % colors,
        0,
        "properness requires n2 | n1·Δ1 (n1={n1}, Δ1={delta1}, n2={colors})"
    );
    let delta2 = n1 * delta1 / colors;
    assert!(delta2 <= n1, "Δ2 = n1Δ1/n2 exceeds n1; inconsistent sizes");
    let pad = n1 - delta2;

    // Node layout: left = S (0..n1) ++ V (n1..n1+pad);
    //              right = S' (0..n1) ++ V' (n1..n1+pad).
    let mut padded = BipartiteMultigraph::new(n1 + pad, n1 + pad);
    for (_, u, v) in g.edges() {
        padded.add_edge(u, v);
    }

    // H1 = (V, S'): V-degrees = colors, S'-degrees = colors - delta1.
    // Built by the round-robin degree-sequence pairing: list the V slots
    // (each pad node `colors` times) against the S' slots (each real right
    // node `colors − Δ1` times); both sequences have length pad·colors.
    add_biregular(
        &mut padded,
        (n1..n1 + pad).collect::<Vec<_>>(),
        colors,
        (0..n1).collect::<Vec<_>>(),
        colors - delta1,
        true,
    );
    // H2 = (V', S): symmetric, V' on the right.
    add_biregular(
        &mut padded,
        (n1..n1 + pad).collect::<Vec<_>>(),
        colors,
        (0..n1).collect::<Vec<_>>(),
        colors - delta1,
        false,
    );

    debug_assert_eq!(padded.regular_degree(), Some(colors));
    Padded {
        graph: padded,
        real_edge_count: g.edge_count(),
        degree: colors,
    }
}

/// Adds a biregular bipartite pad between `a_nodes` (degree `a_deg` each)
/// and `b_nodes` (degree `b_deg` each). When `a_on_left` is true the
/// `a_nodes` are left indices and `b_nodes` right indices; otherwise
/// swapped. Requires `|a|·a_deg == |b|·b_deg`.
fn add_biregular(
    g: &mut BipartiteMultigraph,
    a_nodes: Vec<usize>,
    a_deg: usize,
    b_nodes: Vec<usize>,
    b_deg: usize,
    a_on_left: bool,
) {
    debug_assert_eq!(a_nodes.len() * a_deg, b_nodes.len() * b_deg);
    let total = a_nodes.len() * a_deg;
    for slot in 0..total {
        let a = a_nodes[slot / a_deg.max(1)];
        let b = b_nodes[slot / b_deg.max(1)];
        if a_on_left {
            g.add_edge(a, b);
        } else {
            g.add_edge(b, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_multigraph, random_regular_multigraph};
    use pops_permutation::SplitMix64;

    #[test]
    fn pad_to_regular_basic() {
        let g = BipartiteMultigraph::from_edges(2, 3, [(0, 0), (0, 1), (1, 2)]).unwrap();
        let padded = pad_to_regular(&g, 2);
        assert_eq!(padded.graph.regular_degree(), Some(2));
        assert_eq!(padded.real_edge_count, 3);
        // Original edges keep ids and endpoints.
        for e in 0..3 {
            assert_eq!(padded.graph.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn pad_to_regular_on_random_inputs() {
        let mut rng = SplitMix64::new(10);
        for _ in 0..20 {
            let g = random_multigraph(5, 9, 30, &mut rng);
            let delta = g.max_degree();
            let padded = pad_to_regular(&g, delta);
            assert_eq!(padded.graph.regular_degree(), Some(delta));
        }
    }

    #[test]
    fn pad_already_regular_is_identity_shape() {
        let mut rng = SplitMix64::new(3);
        let g = random_regular_multigraph(6, 4, &mut rng);
        let padded = pad_to_regular(&g, 4);
        assert_eq!(padded.graph.edge_count(), g.edge_count());
        assert_eq!(padded.graph.left_count(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn pad_below_max_degree_panics() {
        let g = BipartiteMultigraph::from_edges(1, 1, [(0, 0), (0, 0)]).unwrap();
        let _ = pad_to_regular(&g, 1);
    }

    #[test]
    fn theorem1_pad_case_d_le_g() {
        // The d <= g routing case: n1 = g, Δ1 = d, n2 = g, Δ2 = d.
        let mut rng = SplitMix64::new(20);
        let (g_groups, d) = (7usize, 3usize);
        let demand = random_regular_multigraph(g_groups, d, &mut rng);
        let padded = theorem1_pad(&demand, g_groups);
        assert_eq!(padded.graph.regular_degree(), Some(g_groups));
        assert_eq!(padded.graph.left_count(), g_groups + (g_groups - d));
        assert_eq!(padded.real_edge_count, g_groups * d);
        // Pad edges touch exactly one pad node each.
        for (e, u, v) in padded.graph.edges() {
            if !padded.is_real(e) {
                let u_pad = u >= g_groups;
                let v_pad = v >= g_groups;
                assert!(
                    u_pad ^ v_pad,
                    "pad edge {e} must touch exactly one pad node"
                );
            }
        }
    }

    #[test]
    fn theorem1_pad_case_d_gt_g_is_trivial() {
        // d > g: n1 = g, Δ1 = d, n2 = d ⇒ Δ2 = g ⇒ no pad nodes.
        let mut rng = SplitMix64::new(21);
        let (g_groups, d) = (3usize, 8usize);
        let demand = random_regular_multigraph(g_groups, d, &mut rng);
        let padded = theorem1_pad(&demand, d);
        assert_eq!(padded.graph.left_count(), g_groups);
        assert_eq!(padded.graph.edge_count(), demand.edge_count());
        assert_eq!(padded.graph.regular_degree(), Some(d));
    }

    #[test]
    fn theorem1_pad_equal_budget_no_pad() {
        // Δ1 == n2: H graphs have degree 0, V empty.
        let mut rng = SplitMix64::new(22);
        let demand = random_regular_multigraph(5, 5, &mut rng);
        let padded = theorem1_pad(&demand, 5);
        assert_eq!(padded.graph.edge_count(), 25);
        assert_eq!(padded.graph.left_count(), 5);
    }

    #[test]
    #[should_panic(expected = "properness")]
    fn theorem1_pad_rejects_improper_sizes() {
        let mut rng = SplitMix64::new(23);
        // n1=4, Δ1=3, n2=5: 5 does not divide 12.
        let demand = random_regular_multigraph(4, 3, &mut rng);
        let _ = theorem1_pad(&demand, 5);
    }

    #[test]
    #[should_panic(expected = "must be regular")]
    fn theorem1_pad_rejects_irregular() {
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0)]).unwrap();
        let _ = theorem1_pad(&g, 2);
    }

    #[test]
    fn theorem1_pad_zero_degree() {
        let g = BipartiteMultigraph::new(3, 3);
        let padded = theorem1_pad(&g, 2);
        assert_eq!(padded.real_edge_count, 0);
        assert_eq!(padded.graph.regular_degree(), Some(2));
    }
}
