//! Random graph generators for tests, property suites, and the T4
//! colouring benchmarks.

use pops_permutation::{families::random_permutation, SplitMix64};

use crate::graph::BipartiteMultigraph;

/// A random `k`-regular bipartite multigraph on `n + n` nodes, built as the
/// union of `k` uniformly random perfect matchings (each a random
/// permutation). May contain parallel edges — exactly the regime the
/// Theorem-1 construction produces.
///
/// # Panics
///
/// Panics if `n == 0` and `k > 0`.
pub fn random_regular_multigraph(n: usize, k: usize, rng: &mut SplitMix64) -> BipartiteMultigraph {
    assert!(n > 0 || k == 0, "cannot build {k}-regular graph on 0 nodes");
    let mut g = BipartiteMultigraph::new(n, n);
    for _ in 0..k {
        let p = random_permutation(n, rng);
        for u in 0..n {
            g.add_edge(u, p.apply(u));
        }
    }
    g
}

/// A random bipartite (simple) graph: each of the `l·r` pairs is an edge
/// independently with probability `p`.
pub fn random_bipartite(l: usize, r: usize, p: f64, rng: &mut SplitMix64) -> BipartiteMultigraph {
    let mut g = BipartiteMultigraph::new(l, r);
    for u in 0..l {
        for v in 0..r {
            if rng.next_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random bipartite multigraph with `m` edges chosen uniformly with
/// replacement — arbitrary degree sequences, for exercising the padding
/// path of the colouring engines.
pub fn random_multigraph(
    l: usize,
    r: usize,
    m: usize,
    rng: &mut SplitMix64,
) -> BipartiteMultigraph {
    assert!(l > 0 && r > 0 || m == 0, "need nodes to place edges on");
    let mut g = BipartiteMultigraph::new(l, r);
    for _ in 0..m {
        let u = rng.next_below(l);
        let v = rng.next_below(r);
        g.add_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_generator_is_regular() {
        let mut rng = SplitMix64::new(1);
        for (n, k) in [(1usize, 3usize), (5, 0), (7, 4), (12, 12)] {
            let g = random_regular_multigraph(n, k, &mut rng);
            assert_eq!(g.regular_degree(), Some(k), "n={n} k={k}");
            assert_eq!(g.edge_count(), n * k);
        }
    }

    #[test]
    fn random_bipartite_respects_probability_extremes() {
        let mut rng = SplitMix64::new(2);
        assert_eq!(random_bipartite(5, 5, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(random_bipartite(5, 5, 1.0, &mut rng).edge_count(), 25);
    }

    #[test]
    fn random_multigraph_has_requested_edges() {
        let mut rng = SplitMix64::new(3);
        let g = random_multigraph(4, 7, 100, &mut rng);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.left_degrees().iter().sum::<usize>(), 100);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g1 = random_regular_multigraph(8, 3, &mut SplitMix64::new(5));
        let g2 = random_regular_multigraph(8, 3, &mut SplitMix64::new(5));
        assert_eq!(g1, g2);
    }
}
