//! The [`BipartiteMultigraph`] type: compact edge-list storage with
//! on-demand adjacency, supporting parallel edges.
//!
//! Parallel edges are essential here: the Theorem-1 demand multigraph has
//! `l(s, s′)` parallel edges between source `s` and the copy `s′` of each
//! list element — as many as the list of `s` mentions `s′`.

use std::fmt;

/// Identifier of an edge: its insertion index. Stable across the lifetime of
/// the graph (edges are never removed — algorithms work on edge-id subsets).
pub type EdgeId = usize;

/// Errors produced by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A left endpoint is `>= left_count`.
    LeftOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of left nodes.
        count: usize,
    },
    /// A right endpoint is `>= right_count`.
    RightOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of right nodes.
        count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::LeftOutOfRange { node, count } => {
                write!(f, "left node {node} out of range (left_count = {count})")
            }
            GraphError::RightOutOfRange { node, count } => {
                write!(f, "right node {node} out of range (right_count = {count})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A bipartite multigraph with `left_count` + `right_count` nodes.
///
/// Edges are stored as `(left, right)` pairs indexed by [`EdgeId`]; parallel
/// edges are distinct entries. Node indices are `u32` internally (the POPS
/// constructions never exceed a few million nodes) but the public API speaks
/// `usize`.
#[derive(Clone, PartialEq, Eq)]
pub struct BipartiteMultigraph {
    left_count: usize,
    right_count: usize,
    edges: Vec<(u32, u32)>,
}

impl fmt::Debug for BipartiteMultigraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BipartiteMultigraph(left={}, right={}, edges={}",
            self.left_count,
            self.right_count,
            self.edges.len()
        )?;
        if self.edges.len() <= 24 {
            write!(f, " {:?}", self.edges)?;
        }
        write!(f, ")")
    }
}

impl BipartiteMultigraph {
    /// Creates an empty graph with the given node counts.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        assert!(
            left_count <= u32::MAX as usize && right_count <= u32::MAX as usize,
            "node counts must fit in u32"
        );
        Self {
            left_count,
            right_count,
            edges: Vec::new(),
        }
    }

    /// Creates a graph from an edge list.
    pub fn from_edges(
        left_count: usize,
        right_count: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut g = Self::new(left_count, right_count);
        for (u, v) in edges {
            g.try_add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Removes every edge, keeping the node counts and the edge-list
    /// capacity — the reuse primitive for long-lived routing engines that
    /// rebuild a demand graph of the same shape on every query.
    pub fn clear(&mut self) {
        self.edges.clear();
    }

    /// Adds an edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, left: usize, right: usize) -> EdgeId {
        self.try_add_edge(left, right)
            .expect("edge endpoint out of range")
    }

    /// Adds an edge, returning an error if an endpoint is out of range.
    pub fn try_add_edge(&mut self, left: usize, right: usize) -> Result<EdgeId, GraphError> {
        if left >= self.left_count {
            return Err(GraphError::LeftOutOfRange {
                node: left,
                count: self.left_count,
            });
        }
        if right >= self.right_count {
            return Err(GraphError::RightOutOfRange {
                node: right,
                count: self.right_count,
            });
        }
        let id = self.edges.len();
        self.edges.push((left as u32, right as u32));
        Ok(id)
    }

    /// Number of left-side nodes.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right-side nodes.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of edges (counting multiplicities).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The `(left, right)` endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (usize, usize) {
        let (u, v) = self.edges[e];
        (u as usize, v as usize)
    }

    /// Iterator over `(edge_id, left, right)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, usize, usize)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e, u as usize, v as usize))
    }

    /// Degree sequence of the left side.
    pub fn left_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.left_count];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// Degree sequence of the right side.
    pub fn right_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.right_count];
        for &(_, v) in &self.edges {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Maximum degree over all nodes (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        let left_max = self.left_degrees().into_iter().max().unwrap_or(0);
        let right_max = self.right_degrees().into_iter().max().unwrap_or(0);
        left_max.max(right_max)
    }

    /// If the graph is `k`-regular (every node on both sides has degree
    /// exactly `k`), returns `Some(k)`; otherwise `None`.
    ///
    /// The empty graph on equal-size node sets is 0-regular; a graph with
    /// unequal side sizes and at least the possibility of edges can only be
    /// 0-regular if it has no nodes of nonzero degree requirement — we
    /// require `left_count == right_count` for `k > 0`.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.left_count != self.right_count {
            // k-regularity with k > 0 forces equal sides (k·L = m = k·R).
            let all_isolated = self.edges.is_empty();
            return if all_isolated { Some(0) } else { None };
        }
        if self.left_count == 0 {
            return Some(0);
        }
        let k = self.edge_count() / self.left_count;
        if self.edge_count() != k * self.left_count {
            return None;
        }
        let ok = self.left_degrees().iter().all(|&dg| dg == k)
            && self.right_degrees().iter().all(|&dg| dg == k);
        ok.then_some(k)
    }

    /// Per-left-node lists of incident edge ids.
    pub fn left_adjacency(&self) -> Vec<Vec<EdgeId>> {
        let mut adj = vec![Vec::new(); self.left_count];
        for (e, &(u, _)) in self.edges.iter().enumerate() {
            adj[u as usize].push(e);
        }
        adj
    }

    /// Per-right-node lists of incident edge ids.
    pub fn right_adjacency(&self) -> Vec<Vec<EdgeId>> {
        let mut adj = vec![Vec::new(); self.right_count];
        for (e, &(_, v)) in self.edges.iter().enumerate() {
            adj[v as usize].push(e);
        }
        adj
    }

    /// The subgraph induced by a set of edge ids, together with the mapping
    /// from new edge ids back to the originals (`mapping[new] == old`).
    /// Node sets are unchanged.
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (BipartiteMultigraph, Vec<EdgeId>) {
        let mut g = BipartiteMultigraph::new(self.left_count, self.right_count);
        let mut mapping = Vec::with_capacity(edge_ids.len());
        for &e in edge_ids {
            let (u, v) = self.endpoints(e);
            g.add_edge(u, v);
            mapping.push(e);
        }
        (g, mapping)
    }

    /// Multiplicity of the `(left, right)` node pair — the `l(s, s′)` of the
    /// paper's list systems.
    pub fn multiplicity(&self, left: usize, right: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(u, v)| u as usize == left && v as usize == right)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4_minus() -> BipartiteMultigraph {
        // 2x2 with a doubled edge: degrees L = [2, 2], R = [3, 1].
        BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 0), (1, 0), (1, 1)]).unwrap()
    }

    #[test]
    fn degrees_count_multiplicities() {
        let g = k4_minus();
        assert_eq!(g.left_degrees(), vec![2, 2]);
        assert_eq!(g.right_degrees(), vec![3, 1]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.multiplicity(0, 0), 2);
        assert_eq!(g.multiplicity(1, 1), 1);
        assert_eq!(g.multiplicity(0, 1), 0);
    }

    #[test]
    fn regular_detection() {
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        assert_eq!(g.regular_degree(), Some(2));
        assert_eq!(k4_minus().regular_degree(), None);
    }

    #[test]
    fn regular_multigraph_with_parallel_edges() {
        let g = BipartiteMultigraph::from_edges(2, 2, [(0, 0), (0, 0), (1, 1), (1, 1)]).unwrap();
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn empty_graph_is_zero_regular() {
        assert_eq!(BipartiteMultigraph::new(3, 3).regular_degree(), Some(0));
        assert_eq!(BipartiteMultigraph::new(0, 0).regular_degree(), Some(0));
        assert_eq!(BipartiteMultigraph::new(2, 3).regular_degree(), Some(0));
    }

    #[test]
    fn unequal_sides_with_edges_not_regular() {
        let g = BipartiteMultigraph::from_edges(1, 2, [(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    fn adjacency_lists_match_edges() {
        let g = k4_minus();
        let ladj = g.left_adjacency();
        assert_eq!(ladj[0], vec![0, 1]);
        assert_eq!(ladj[1], vec![2, 3]);
        let radj = g.right_adjacency();
        assert_eq!(radj[0], vec![0, 1, 2]);
        assert_eq!(radj[1], vec![3]);
    }

    #[test]
    fn edge_subgraph_preserves_endpoints() {
        let g = k4_minus();
        let (sub, mapping) = g.edge_subgraph(&[1, 3]);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.endpoints(0), g.endpoints(1));
        assert_eq!(sub.endpoints(1), g.endpoints(3));
        assert_eq!(mapping, vec![1, 3]);
    }

    #[test]
    fn clear_keeps_shape_and_capacity() {
        let mut g = k4_minus();
        let cap = g.edges.capacity();
        g.clear();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.edges.capacity(), cap);
        assert_eq!(g.add_edge(1, 1), 0);
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let mut g = BipartiteMultigraph::new(1, 1);
        assert!(matches!(
            g.try_add_edge(1, 0),
            Err(GraphError::LeftOutOfRange { node: 1, count: 1 })
        ));
        assert!(matches!(
            g.try_add_edge(0, 2),
            Err(GraphError::RightOutOfRange { node: 2, count: 1 })
        ));
    }

    #[test]
    fn error_display() {
        let e = GraphError::LeftOutOfRange { node: 5, count: 2 };
        assert!(e.to_string().contains("left node 5"));
    }

    #[test]
    fn debug_is_compact_for_large_graphs() {
        let mut g = BipartiteMultigraph::new(10, 10);
        for i in 0..10 {
            for j in 0..10 {
                g.add_edge(i, j);
            }
        }
        let s = format!("{g:?}");
        assert!(s.contains("edges=100"));
        assert!(!s.contains("(0, 0)"));
    }
}
