//! Canonical communication patterns from §1 of the paper.
//!
//! Beyond permutation routing (the subject of the paper, implemented in
//! `pops-core`), the POPS network supports several one-slot primitives that
//! the introduction walks through; they are reproduced here and exercised
//! by experiment F1 and the quickstart example.

use crate::slot::{PacketId, SlotFrame, Transmission};
use crate::topology::{PopsTopology, ProcessorId};

/// The one-slot **one-to-all** broadcast of §1: the `speaker` sends
/// `packet` to all couplers `c(a, group(speaker))`, `a ∈ {0, …, g−1}`, and
/// every processor (speaker's group included, speaker itself included)
/// reads the coupler fed by the speaker's group.
pub fn one_to_all(topology: &PopsTopology, speaker: ProcessorId, packet: PacketId) -> SlotFrame {
    let src_group = topology.group_of(speaker);
    let transmissions = (0..topology.g())
        .map(|dest_group| Transmission {
            sender: speaker,
            coupler: topology.coupler_id(dest_group, src_group),
            packet,
            receivers: topology.processors_of(dest_group).collect(),
        })
        .collect();
    SlotFrame { transmissions }
}

/// A one-slot **point-to-point** send exploiting the diameter-1 property of
/// §1: `src` reaches `dst` through the unique coupler
/// `c(group(dst), group(src))`.
pub fn point_to_point(
    topology: &PopsTopology,
    src: ProcessorId,
    dst: ProcessorId,
    packet: PacketId,
) -> SlotFrame {
    SlotFrame {
        transmissions: vec![Transmission::unicast(
            src,
            topology.coupler_between(src, dst),
            packet,
            dst,
        )],
    }
}

/// The **all-to-all broadcast** (each processor's packet replicated to
/// every processor): `n` one-to-all slots, one speaker per slot.
///
/// This is slot-optimal up to a constant: every processor must receive
/// `n − 1` foreign packets and can read at most one coupler per slot, so
/// at least `n − 1` slots are necessary; the schedule below uses `n`.
pub fn all_to_all_broadcast(topology: &PopsTopology) -> crate::slot::Schedule {
    let slots = (0..topology.n())
        .map(|speaker| one_to_all(topology, speaker, speaker))
        .collect();
    crate::slot::Schedule { slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;

    #[test]
    fn one_to_all_reaches_everyone_in_one_slot() {
        let t = PopsTopology::new(3, 3);
        let mut sim = Simulator::with_unit_packets(t);
        let frame = one_to_all(&t, 4, 4);
        sim.execute_frame(&frame).unwrap();
        let mut holders: Vec<_> = sim.holders_of(4).to_vec();
        holders.sort_unstable();
        assert_eq!(holders, (0..9).collect::<Vec<_>>());
        assert_eq!(sim.slots_elapsed(), 1);
    }

    #[test]
    fn one_to_all_uses_g_couplers() {
        let t = PopsTopology::new(4, 5);
        let frame = one_to_all(&t, 0, 0);
        assert_eq!(frame.couplers_used(), 5);
        assert_eq!(frame.deliveries(), t.n());
    }

    #[test]
    fn figure1_coupler_semantics() {
        // Figure 1: a 4x4 OPS coupler — model as POPS(4, 1): source m
        // broadcasts to all four destinations in one slot.
        let t = PopsTopology::new(4, 1);
        let mut sim = Simulator::with_unit_packets(t);
        let frame = one_to_all(&t, 2, 2);
        sim.execute_frame(&frame).unwrap();
        assert_eq!(sim.holders_of(2).len(), 4);
    }

    #[test]
    fn point_to_point_single_slot() {
        let t = PopsTopology::new(3, 2);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_frame(&point_to_point(&t, 1, 5, 1)).unwrap();
        assert_eq!(sim.holders_of(1), &[5]);
    }

    #[test]
    fn point_to_point_within_group() {
        let t = PopsTopology::new(3, 2);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_frame(&point_to_point(&t, 0, 2, 0)).unwrap();
        assert_eq!(sim.holders_of(0), &[2]);
    }

    #[test]
    fn all_to_all_broadcast_replicates_everything() {
        let t = PopsTopology::new(2, 3);
        let n = t.n();
        let mut sim = Simulator::with_unit_packets(t);
        let schedule = all_to_all_broadcast(&t);
        assert_eq!(schedule.slot_count(), n);
        sim.execute_schedule(&schedule).unwrap();
        for packet in 0..n {
            assert_eq!(sim.holders_of(packet).len(), n, "packet {packet}");
        }
        // Every processor holds all n packets.
        for p in 0..n {
            let mut held = sim.packets_at(p).to_vec();
            held.sort_unstable();
            assert_eq!(held, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_to_all_broadcast_delivery_volume() {
        let t = PopsTopology::new(3, 3);
        let schedule = all_to_all_broadcast(&t);
        assert_eq!(schedule.total_deliveries(), t.n() * t.n());
    }
}
