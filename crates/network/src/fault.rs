//! Coupler fault injection.
//!
//! The paper's model assumes a fully healthy POPS(d, g); an optical star
//! coupler, however, is a single physical device, and coupler failure is
//! the natural fault unit of the architecture (a failed `c(b, a)` severs
//! the one-hop path from group `a` to group `b` but nothing else — the
//! diameter-1 property degrades gracefully to multi-hop paths through
//! intermediate groups).
//!
//! [`FaultSet`] records which couplers are down. The simulator, when given
//! a fault set ([`crate::Simulator::with_unit_packets_and_faults`] /
//! [`crate::Simulator::inject_faults`]), rejects any transmission on a
//! failed coupler — so fault-aware routing (in `pops-core`) is refereed
//! exactly like healthy routing. Group-level reachability over the alive
//! couplers is computed here ([`FaultSet::group_distances`]) because both
//! the router and the experiments need it.

use crate::topology::{CouplerId, GroupId, PopsTopology};

/// Distance marker for unreachable group pairs.
pub const UNREACHABLE: usize = usize::MAX;

/// A set of failed couplers of a POPS(d, g) network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSet {
    g: usize,
    failed: Vec<bool>,
}

impl FaultSet {
    /// No faults on a `g`-group network.
    pub fn none(topology: &PopsTopology) -> Self {
        Self {
            g: topology.g(),
            failed: vec![false; topology.coupler_count()],
        }
    }

    /// Marks coupler `c` failed.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn fail_coupler(&mut self, c: CouplerId) {
        assert!(c < self.failed.len(), "coupler {c} out of range");
        self.failed[c] = true;
    }

    /// Marks the coupler `c(dest_group, src_group)` failed.
    pub fn fail_group_pair(
        &mut self,
        topology: &PopsTopology,
        dest_group: GroupId,
        src_group: GroupId,
    ) {
        self.fail_coupler(topology.coupler_id(dest_group, src_group));
    }

    /// Whether coupler `c` is failed.
    #[inline]
    pub fn is_failed(&self, c: CouplerId) -> bool {
        self.failed.get(c).copied().unwrap_or(false)
    }

    /// Number of failed couplers.
    pub fn failed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// `true` iff no coupler is failed.
    pub fn is_empty(&self) -> bool {
        self.failed_count() == 0
    }

    /// The failed coupler ids, ascending.
    pub fn iter_failed(&self) -> impl Iterator<Item = CouplerId> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(c, &f)| f.then_some(c))
    }

    /// Group-level shortest-hop distances over the **alive** couplers.
    ///
    /// Entry `[a][b]` is the minimum number of slots a packet needs to get
    /// from (any processor of) group `a` into group `b`; `[a][a]` is `0`.
    /// Alive coupler `c(b, a)` contributes the directed edge `a → b` (note
    /// a self-loop `c(a, a)` exists per group and may also fail).
    /// Unreachable pairs get [`UNREACHABLE`].
    pub fn group_distances(&self, topology: &PopsTopology) -> Vec<Vec<usize>> {
        let g = topology.g();
        assert_eq!(g, self.g, "fault set built for a different group count");
        let mut dist = vec![vec![UNREACHABLE; g]; g];
        // Adjacency: a → b iff c(b, a) alive.
        let alive_out: Vec<Vec<GroupId>> = (0..g)
            .map(|a| {
                (0..g)
                    .filter(|&b| !self.is_failed(topology.coupler_id(b, a)))
                    .collect()
            })
            .collect();
        for (start, row) in dist.iter_mut().enumerate() {
            row[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(a) = queue.pop_front() {
                for &b in &alive_out[a] {
                    if row[b] == UNREACHABLE {
                        row[b] = row[a] + 1;
                        queue.push_back(b);
                    }
                }
            }
        }
        dist
    }

    /// Shortest **non-empty** path length from group `a` to group `b` over
    /// alive couplers — the number of slots a packet at the wrong processor
    /// of its destination group still needs (it must traverse at least one
    /// coupler to move at all). [`UNREACHABLE`] if no such path exists.
    pub fn group_distance_ge1(
        &self,
        topology: &PopsTopology,
        dist: &[Vec<usize>],
        a: GroupId,
        b: GroupId,
    ) -> usize {
        let g = topology.g();
        (0..g)
            .filter(|&r| !self.is_failed(topology.coupler_id(r, a)))
            .map(|r| dist[r][b].saturating_add(1))
            .min()
            .unwrap_or(UNREACHABLE)
    }

    /// `true` iff every ordered group pair can still communicate (the
    /// network remains routable for arbitrary permutations), including
    /// every group reaching *back into itself* through at least one
    /// coupler (needed for intra-group traffic).
    pub fn fully_routable(&self, topology: &PopsTopology) -> bool {
        let dist = self.group_distances(topology);
        let g = topology.g();
        (0..g).all(|a| {
            (0..g).all(|b| {
                dist[a][b] != UNREACHABLE
                    && self.group_distance_ge1(topology, &dist, a, b) != UNREACHABLE
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_all_distances_at_most_one() {
        let t = PopsTopology::new(2, 4);
        let f = FaultSet::none(&t);
        assert!(f.is_empty());
        let dist = f.group_distances(&t);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(dist[a][b], usize::from(a != b));
                assert_eq!(f.group_distance_ge1(&t, &dist, a, b), 1);
            }
        }
        assert!(f.fully_routable(&t));
    }

    #[test]
    fn single_failure_forces_a_two_hop_detour() {
        let t = PopsTopology::new(2, 3);
        let mut f = FaultSet::none(&t);
        f.fail_group_pair(&t, 1, 0); // c(1, 0): group 0 can no longer reach 1 directly
        assert_eq!(f.failed_count(), 1);
        let dist = f.group_distances(&t);
        assert_eq!(dist[0][1], 2); // 0 → 2 → 1 (or 0 → 0 → 1)
        assert_eq!(dist[1][0], 1); // reverse direction unaffected
        assert!(f.fully_routable(&t));
    }

    #[test]
    fn failed_self_loop_still_routable_via_detour() {
        let t = PopsTopology::new(3, 2);
        let mut f = FaultSet::none(&t);
        f.fail_group_pair(&t, 0, 0); // intra-group coupler of group 0
        let dist = f.group_distances(&t);
        assert_eq!(dist[0][0], 0); // "already there" costs nothing…
        assert_eq!(f.group_distance_ge1(&t, &dist, 0, 0), 2); // …but moving within group 0 now takes 2 hops
        assert!(f.fully_routable(&t));
    }

    #[test]
    fn severing_all_inbound_couplers_disconnects() {
        let t = PopsTopology::new(2, 3);
        let mut f = FaultSet::none(&t);
        for src in 0..3 {
            f.fail_group_pair(&t, 1, src); // nothing can enter group 1
        }
        let dist = f.group_distances(&t);
        assert_eq!(dist[0][1], UNREACHABLE);
        assert!(!f.fully_routable(&t));
    }

    #[test]
    fn pops_g1_with_failed_coupler_is_dead() {
        let t = PopsTopology::new(4, 1);
        let mut f = FaultSet::none(&t);
        f.fail_coupler(0);
        assert!(!f.fully_routable(&t));
    }

    #[test]
    fn iter_failed_lists_exactly_the_failures() {
        let t = PopsTopology::new(2, 3);
        let mut f = FaultSet::none(&t);
        f.fail_coupler(2);
        f.fail_coupler(7);
        assert_eq!(f.iter_failed().collect::<Vec<_>>(), vec![2, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coupler_rejected() {
        let t = PopsTopology::new(2, 2);
        let mut f = FaultSet::none(&t);
        f.fail_coupler(100);
    }
}
