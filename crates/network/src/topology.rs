//! The POPS(d, g) topology: groups, couplers, and their wiring.
//!
//! §1 of the paper: `n = d·g` processors are partitioned into `g` groups of
//! `d` (processor `i` in group `⌊i/d⌋`). For every *ordered* pair of groups
//! `(b, a)` there is an optical passive star coupler `c(b, a)` whose
//! **sources** are the `d` processors of group `a` and whose
//! **destinations** are the `d` processors of group `b` — `g²` couplers in
//! total. Every processor therefore has `g` transmitters (to the couplers
//! `c(·, group(i))`) and `g` receivers (from the couplers `c(group(i), ·)`).

use std::fmt;

/// Index of a processor, `0 .. n`.
pub type ProcessorId = usize;
/// Index of a group, `0 .. g`.
pub type GroupId = usize;
/// Index of a coupler, `0 .. g²`; see [`PopsTopology::coupler_id`].
pub type CouplerId = usize;

/// The static structure of a POPS(d, g) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopsTopology {
    d: usize,
    g: usize,
}

impl fmt::Display for PopsTopology {
    /// Prints the paper's `POPS(d, g)` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POPS({}, {})", self.d, self.g)
    }
}

impl PopsTopology {
    /// Creates a POPS(d, g) topology.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `g == 0`, or `d·g` overflows.
    pub fn new(d: usize, g: usize) -> Self {
        assert!(d > 0, "group size d must be positive");
        assert!(g > 0, "group count g must be positive");
        d.checked_mul(g).expect("network size d*g overflows usize");
        g.checked_mul(g).expect("coupler count g*g overflows usize");
        Self { d, g }
    }

    /// Group size `d` (processors per group; also coupler fan-in/out).
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Group count `g`.
    #[inline]
    pub fn g(&self) -> usize {
        self.g
    }

    /// Total processor count `n = d·g`.
    #[inline]
    pub fn n(&self) -> usize {
        self.d * self.g
    }

    /// Total coupler count `g²`.
    #[inline]
    pub fn coupler_count(&self) -> usize {
        self.g * self.g
    }

    /// The paper's *diameter-1* property: any two processors are connected
    /// through exactly one coupler, so this is always 1. Kept as an explicit
    /// queryable property (asserted by tests against the wiring).
    #[inline]
    pub fn diameter(&self) -> usize {
        1
    }

    /// The group of processor `i` — the paper's `group(i) = ⌊i/d⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[inline]
    pub fn group_of(&self, i: ProcessorId) -> GroupId {
        assert!(i < self.n(), "processor {i} out of range for {self}");
        i / self.d
    }

    /// The offset of processor `i` inside its group.
    #[inline]
    pub fn offset_of(&self, i: ProcessorId) -> usize {
        assert!(i < self.n(), "processor {i} out of range for {self}");
        i % self.d
    }

    /// The processor at `offset` within `group`.
    #[inline]
    pub fn processor(&self, group: GroupId, offset: usize) -> ProcessorId {
        assert!(group < self.g, "group {group} out of range for {self}");
        assert!(offset < self.d, "offset {offset} out of range for {self}");
        group * self.d + offset
    }

    /// The processors of `group`, as a range.
    pub fn processors_of(&self, group: GroupId) -> std::ops::Range<ProcessorId> {
        assert!(group < self.g, "group {group} out of range for {self}");
        group * self.d..(group + 1) * self.d
    }

    /// The id of coupler `c(dest_group, src_group)` — the coupler whose
    /// sources are `src_group` and destinations `dest_group`. Matches the
    /// paper's `c(b, a)` with `b = dest_group`, `a = src_group`.
    #[inline]
    pub fn coupler_id(&self, dest_group: GroupId, src_group: GroupId) -> CouplerId {
        assert!(dest_group < self.g, "dest group {dest_group} out of range");
        assert!(src_group < self.g, "source group {src_group} out of range");
        dest_group * self.g + src_group
    }

    /// The destination group `b` of coupler `c(b, a)`.
    #[inline]
    pub fn coupler_dest_group(&self, c: CouplerId) -> GroupId {
        assert!(c < self.coupler_count(), "coupler {c} out of range");
        c / self.g
    }

    /// The source group `a` of coupler `c(b, a)`.
    #[inline]
    pub fn coupler_src_group(&self, c: CouplerId) -> GroupId {
        assert!(c < self.coupler_count(), "coupler {c} out of range");
        c % self.g
    }

    /// The couplers processor `i` can transmit on: `c(a, group(i))` for all
    /// `a` — one per destination group (the processor's `g` transmitters).
    pub fn transmitters_of(&self, i: ProcessorId) -> impl Iterator<Item = CouplerId> + '_ {
        let src = self.group_of(i);
        (0..self.g).map(move |dest| self.coupler_id(dest, src))
    }

    /// The couplers processor `i` can receive from: `c(group(i), b)` for
    /// all `b` (the processor's `g` receivers).
    pub fn receivers_of(&self, i: ProcessorId) -> impl Iterator<Item = CouplerId> + '_ {
        let dest = self.group_of(i);
        (0..self.g).map(move |src| self.coupler_id(dest, src))
    }

    /// The unique coupler connecting `src` to `dst` — the diameter-1
    /// property of §1: `c(group(dst), group(src))`.
    #[inline]
    pub fn coupler_between(&self, src: ProcessorId, dst: ProcessorId) -> CouplerId {
        self.coupler_id(self.group_of(dst), self.group_of(src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_pops_3_2() {
        // Figure 2 of the paper: POPS(3, 2), 6 processors, 4 couplers.
        let t = PopsTopology::new(3, 2);
        assert_eq!(t.n(), 6);
        assert_eq!(t.coupler_count(), 4);
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(2), 0);
        assert_eq!(t.group_of(3), 1);
        assert_eq!(t.group_of(5), 1);
        assert_eq!(format!("{t}"), "POPS(3, 2)");
    }

    #[test]
    fn coupler_id_roundtrip() {
        let t = PopsTopology::new(2, 5);
        for b in 0..5 {
            for a in 0..5 {
                let c = t.coupler_id(b, a);
                assert_eq!(t.coupler_dest_group(c), b);
                assert_eq!(t.coupler_src_group(c), a);
            }
        }
    }

    #[test]
    fn transmitters_cover_all_dest_groups() {
        let t = PopsTopology::new(3, 4);
        let tx: Vec<_> = t.transmitters_of(5).collect(); // processor 5, group 1
        assert_eq!(tx.len(), 4);
        for (dest, c) in tx.into_iter().enumerate() {
            assert_eq!(t.coupler_src_group(c), 1);
            assert_eq!(t.coupler_dest_group(c), dest);
        }
    }

    #[test]
    fn receivers_cover_all_src_groups() {
        let t = PopsTopology::new(3, 4);
        let rx: Vec<_> = t.receivers_of(9).collect(); // group 3
        assert_eq!(rx.len(), 4);
        for (src, c) in rx.into_iter().enumerate() {
            assert_eq!(t.coupler_dest_group(c), 3);
            assert_eq!(t.coupler_src_group(c), src);
        }
    }

    #[test]
    fn coupler_between_is_consistent_with_wiring() {
        let t = PopsTopology::new(2, 3);
        for src in 0..t.n() {
            for dst in 0..t.n() {
                let c = t.coupler_between(src, dst);
                // src can transmit on c, dst can receive from c.
                assert!(t.transmitters_of(src).any(|x| x == c));
                assert!(t.receivers_of(dst).any(|x| x == c));
            }
        }
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn processors_of_partitions_index_space() {
        let t = PopsTopology::new(4, 3);
        let mut all: Vec<usize> = Vec::new();
        for grp in 0..3 {
            all.extend(t.processors_of(grp));
        }
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn processor_offset_roundtrip() {
        let t = PopsTopology::new(4, 3);
        for i in 0..t.n() {
            assert_eq!(t.processor(t.group_of(i), t.offset_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_d_rejected() {
        let _ = PopsTopology::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_processor_rejected() {
        PopsTopology::new(2, 2).group_of(4);
    }

    #[test]
    fn extreme_shapes() {
        // POPS(n, 1): single coupler.
        let t = PopsTopology::new(8, 1);
        assert_eq!(t.coupler_count(), 1);
        // POPS(1, n): fully interconnected, n^2 couplers.
        let t = PopsTopology::new(1, 8);
        assert_eq!(t.coupler_count(), 64);
        assert_eq!(t.n(), 8);
    }
}
