//! Per-slot records and aggregate schedule statistics.
//!
//! The paper's cost measure is the slot count; the statistics here also
//! expose coupler utilization (packets moved per slot against the `g²`
//! ceiling used by the counting lower bounds of Propositions 1 and 3).

use crate::topology::PopsTopology;

/// What happened in one executed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRecord {
    /// Couplers driven this slot (each by exactly one sender).
    pub couplers_used: usize,
    /// Packet deliveries (receiver reads) this slot.
    pub deliveries: usize,
}

/// Aggregate statistics of an executed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Number of slots executed.
    pub slots: usize,
    /// Total couplers driven, summed over slots.
    pub total_transmissions: usize,
    /// Total deliveries, summed over slots.
    pub total_deliveries: usize,
    /// Peak couplers driven in any one slot.
    pub peak_couplers_used: usize,
    /// Mean coupler utilization per slot: driven couplers / `g²`, averaged
    /// over slots. 0.0 for an empty history.
    pub mean_coupler_utilization: f64,
}

/// Per-coupler transmission totals over a whole schedule — the hot-spot
/// profile. A direct routing of a group-concentrated permutation piles its
/// load onto one coupler (the serialization Proposition 2's class forces);
/// the Theorem-2 routing spreads it evenly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplerLoad {
    /// Transmissions carried by each coupler, indexed by coupler id.
    pub per_coupler: Vec<usize>,
}

impl CouplerLoad {
    /// Tallies a schedule's transmissions per coupler.
    pub fn from_schedule(topology: &PopsTopology, schedule: &crate::slot::Schedule) -> Self {
        let mut per_coupler = vec![0usize; topology.coupler_count()];
        for frame in &schedule.slots {
            for t in &frame.transmissions {
                per_coupler[t.coupler] += 1;
            }
        }
        Self { per_coupler }
    }

    /// The busiest coupler and its load, if any coupler was used.
    pub fn hottest(&self) -> Option<(usize, usize)> {
        self.per_coupler
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(c, load)| (load, usize::MAX - c))
            .filter(|&(_, load)| load > 0)
    }

    /// Max/mean load ratio — 1.0 for perfectly balanced schedules, higher
    /// for hot-spotted ones. 0.0 for an empty schedule.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.per_coupler.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.per_coupler.len() as f64;
        let max = *self.per_coupler.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

impl ScheduleStats {
    /// Aggregates a slice of slot records against a topology.
    pub fn from_records(topology: &PopsTopology, records: &[SlotRecord]) -> Self {
        let slots = records.len();
        let total_transmissions = records.iter().map(|r| r.couplers_used).sum();
        let total_deliveries = records.iter().map(|r| r.deliveries).sum();
        let peak_couplers_used = records.iter().map(|r| r.couplers_used).max().unwrap_or(0);
        let mean_coupler_utilization = if slots == 0 {
            0.0
        } else {
            total_transmissions as f64 / (slots as f64 * topology.coupler_count() as f64)
        };
        Self {
            slots,
            total_transmissions,
            total_deliveries,
            peak_couplers_used,
            mean_coupler_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_simple_history() {
        let t = PopsTopology::new(2, 2); // 4 couplers
        let records = [
            SlotRecord {
                couplers_used: 4,
                deliveries: 4,
            },
            SlotRecord {
                couplers_used: 2,
                deliveries: 2,
            },
        ];
        let s = ScheduleStats::from_records(&t, &records);
        assert_eq!(s.slots, 2);
        assert_eq!(s.total_transmissions, 6);
        assert_eq!(s.total_deliveries, 6);
        assert_eq!(s.peak_couplers_used, 4);
        assert!((s.mean_coupler_utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_history() {
        let t = PopsTopology::new(2, 2);
        let s = ScheduleStats::from_records(&t, &[]);
        assert_eq!(s.slots, 0);
        assert_eq!(s.mean_coupler_utilization, 0.0);
        assert_eq!(s.peak_couplers_used, 0);
    }

    #[test]
    fn coupler_load_tallies_and_finds_hotspot() {
        use crate::slot::{Schedule, SlotFrame, Transmission};
        let t = PopsTopology::new(2, 2);
        let hot = t.coupler_id(1, 0);
        let slots = (0..3)
            .map(|i| SlotFrame {
                transmissions: vec![Transmission::unicast(i % 2, hot, i, 2 + (i % 2))],
            })
            .collect();
        let load = CouplerLoad::from_schedule(&t, &Schedule { slots });
        assert_eq!(load.per_coupler[hot], 3);
        assert_eq!(load.hottest(), Some((hot, 3)));
        // 3 transmissions over 4 couplers → mean 0.75, max 3 → ratio 4.
        assert!((load.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn coupler_load_empty_schedule() {
        use crate::slot::Schedule;
        let t = PopsTopology::new(2, 2);
        let load = CouplerLoad::from_schedule(&t, &Schedule::new());
        assert_eq!(load.hottest(), None);
        assert_eq!(load.imbalance(), 0.0);
    }

    #[test]
    fn theorem2_style_full_slots_are_balanced() {
        use crate::slot::{Schedule, SlotFrame, Transmission};
        // Hand-build a schedule driving every coupler once per slot.
        let t = PopsTopology::new(1, 2);
        let frame = SlotFrame {
            transmissions: vec![
                Transmission::unicast(0, t.coupler_id(0, 0), 0, 0),
                Transmission::unicast(0, t.coupler_id(1, 0), 0, 1),
                Transmission::unicast(1, t.coupler_id(0, 1), 1, 0),
                Transmission::unicast(1, t.coupler_id(1, 1), 1, 1),
            ],
        };
        let load = CouplerLoad::from_schedule(
            &t,
            &Schedule {
                slots: vec![frame.clone(), frame],
            },
        );
        assert!((load.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_utilization_is_one() {
        let t = PopsTopology::new(3, 3);
        let records = [SlotRecord {
            couplers_used: 9,
            deliveries: 9,
        }];
        let s = ScheduleStats::from_records(&t, &records);
        assert!((s.mean_coupler_utilization - 1.0).abs() < 1e-12);
    }
}
