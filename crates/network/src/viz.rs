//! ASCII rendering of POPS networks and packet placements — textual
//! reproductions of Figures 2 and 3 of the paper.

use crate::simulator::Simulator;
use crate::topology::PopsTopology;

/// Renders the wiring of a POPS(d, g) network in the style of Figure 2:
/// one line per coupler listing its source and destination processors.
///
/// ```
/// use pops_network::{topology::PopsTopology, viz::render_topology};
/// let text = render_topology(&PopsTopology::new(3, 2));
/// assert!(text.contains("c(1, 0)"));
/// ```
pub fn render_topology(topology: &PopsTopology) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{topology}: {} processors, {} couplers\n",
        topology.n(),
        topology.coupler_count()
    ));
    for grp in 0..topology.g() {
        let procs: Vec<String> = topology.processors_of(grp).map(|p| p.to_string()).collect();
        out.push_str(&format!("group {grp}: processors [{}]\n", procs.join(", ")));
    }
    for b in 0..topology.g() {
        for a in 0..topology.g() {
            let c = topology.coupler_id(b, a);
            out.push_str(&format!(
                "c({b}, {a}) [id {c}]: sources group {a} -> destinations group {b}\n"
            ));
        }
    }
    out
}

/// Renders the current packet placement of a simulator in the style of
/// Figure 3: for each group, each processor with the packets it holds,
/// each packet annotated `xy` where `y` is its destination processor and
/// `x` the destination group (requires the destination vector).
pub fn render_placement(sim: &Simulator, destinations: &[usize]) -> String {
    let topology = sim.topology();
    let mut out = String::new();
    for grp in 0..topology.g() {
        out.push_str(&format!("group {grp}:\n"));
        for p in topology.processors_of(grp) {
            let labels: Vec<String> = sim
                .packets_at(p)
                .iter()
                .map(|&pk| {
                    let dest = destinations.get(pk).copied();
                    match dest {
                        Some(dst) => {
                            format!("p{pk}[{}{}]", topology.group_of(dst), dst)
                        }
                        None => format!("p{pk}[?]"),
                    }
                })
                .collect();
            out.push_str(&format!(
                "  proc {p}: {}\n",
                if labels.is_empty() {
                    "-".to_string()
                } else {
                    labels.join(" ")
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_rendering_mentions_every_coupler() {
        let t = PopsTopology::new(3, 2);
        let text = render_topology(&t);
        for b in 0..2 {
            for a in 0..2 {
                assert!(text.contains(&format!("c({b}, {a})")), "missing c({b},{a})");
            }
        }
        assert!(text.contains("POPS(3, 2)"));
    }

    #[test]
    fn placement_rendering_shows_figure3_labels() {
        // Figure 3's POPS(3, 3) with the paper's permutation: packet 0 has
        // destination 5 (group 1) -> label "15".
        let t = PopsTopology::new(3, 3);
        let sim = Simulator::with_unit_packets(t);
        let dests = [5usize, 1, 7, 2, 0, 6, 3, 8, 4];
        let text = render_placement(&sim, &dests);
        assert!(text.contains("p0[15]"), "{text}");
        assert!(text.contains("p2[27]"), "{text}");
        assert!(text.contains("p8[14]"), "{text}");
    }

    #[test]
    fn empty_processors_render_dash() {
        let t = PopsTopology::new(2, 2);
        let sim = Simulator::with_placement(t, &[0]);
        let text = render_placement(&sim, &[3]);
        assert!(text.contains("proc 1: -"));
    }

    #[test]
    fn placement_tracks_movement() {
        use crate::slot::{SlotFrame, Transmission};
        let t = PopsTopology::new(3, 2);
        let mut sim = Simulator::with_unit_packets(t);
        let before = render_placement(&sim, &[4, 1, 2, 3, 0, 5]);
        assert!(before.contains("proc 0: p0[14]"), "{before}");
        sim.execute_frame(&SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 0, 4)],
        })
        .unwrap();
        let after = render_placement(&sim, &[4, 1, 2, 3, 0, 5]);
        assert!(after.contains("proc 0: -"), "{after}");
        assert!(
            after.contains("p4[00] p0[14]") || after.contains("p0[14] p4[00]"),
            "{after}"
        );
    }

    #[test]
    fn unknown_destination_renders_question_mark() {
        let t = PopsTopology::new(2, 2);
        let sim = Simulator::with_unit_packets(t);
        // Destination vector shorter than the packet set.
        let text = render_placement(&sim, &[0, 1]);
        assert!(text.contains("p2[?]"), "{text}");
    }

    #[test]
    fn every_group_and_processor_listed() {
        let t = PopsTopology::new(2, 4);
        let sim = Simulator::with_unit_packets(t);
        let topo_text = render_topology(&t);
        let place_text = render_placement(&sim, &(0..8).collect::<Vec<_>>());
        for g in 0..4 {
            assert!(topo_text.contains(&format!("group {g}:")));
            assert!(place_text.contains(&format!("group {g}:")));
        }
        for p in 0..8 {
            assert!(place_text.contains(&format!("proc {p}:")));
        }
        assert!(topo_text.contains("8 processors, 16 couplers"));
    }
}
