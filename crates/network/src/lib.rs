//! Slot-level simulator of the Partitioned Optical Passive Stars (POPS)
//! network of Chiarulli et al. (1994), as modelled by §1 of Mei & Rizzi,
//! *Routing Permutations in Partitioned Optical Passive Stars Networks*
//! (IPPS 2002).
//!
//! A POPS(d, g) machine has `n = d·g` processors in `g` groups of `d` and
//! one `d × d` optical passive star coupler `c(b, a)` for every ordered
//! group pair — `g²` couplers. In one *slot* each processor sends one
//! packet to any subset of its `g` transmitters and reads at most one of
//! its `g` receivers; no coupler may be driven by two senders.
//!
//! The crate provides:
//!
//! * [`topology::PopsTopology`] — the static wiring (groups, couplers,
//!   transmitter/receiver fan-out, the diameter-1 property);
//! * [`slot`] — [`slot::Transmission`], [`slot::SlotFrame`], and
//!   [`slot::Schedule`], the machine-level description of a routing;
//! * [`simulator::Simulator`] — transactional slot execution with complete
//!   conflict detection (coupler contention, receive contention, wiring,
//!   packet possession) and end-to-end delivery verification;
//! * [`patterns`] — the one-slot primitives of §1 (one-to-all broadcast,
//!   diameter-1 point-to-point);
//! * [`fault`] — coupler fault injection ([`fault::FaultSet`]) and
//!   alive-coupler group reachability, enforced by the simulator;
//! * [`stats`] — slot counts and coupler-utilization aggregates;
//! * [`viz`] — ASCII renderings of the wiring (Figure 2) and of packet
//!   placements (Figure 3).
//!
//! The simulator is the *referee* of this reproduction: every schedule the
//! routing algorithms produce is executed here, and the slot counts the
//! experiments report are counts of successfully executed slots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod patterns;
pub mod simulator;
pub mod slot;
pub mod stats;
pub mod topology;
pub mod viz;

pub use fault::{FaultSet, UNREACHABLE};
pub use simulator::{DeliveryError, SimError, Simulator};
pub use slot::{PacketId, Receivers, Schedule, SlotFrame, Transmission};
pub use stats::{CouplerLoad, ScheduleStats, SlotRecord};
pub use topology::{CouplerId, GroupId, PopsTopology, ProcessorId};
