//! The slot-level POPS simulator: executes [`SlotFrame`]s against the
//! machine model of §1 of the paper, detecting every conflict the model
//! forbids.
//!
//! The legality rules enforced per slot:
//!
//! 1. **Coupler contention** — at most one processor sends on each coupler
//!    ("there shouldn't be any pair of processors sending a packet to the
//!    same coupler");
//! 2. **One packet per sender** — a processor sends (the same) one packet to
//!    a *subset of its transmitters*; driving two couplers with different
//!    packets in one slot is impossible in the SIMD model;
//! 3. **Receive contention** — each processor receives from at most one of
//!    its receivers per slot;
//! 4. **Wiring** — a coupler's sender must be in its source group and every
//!    reader in its destination group;
//! 5. **Possession** — the sender must actually hold the packet it sends.
//!
//! Execution is transactional: a frame either validates completely and is
//! applied, or the simulator state is untouched and the violation returned.

use std::collections::HashMap;
use std::fmt;

use crate::fault::FaultSet;
use crate::slot::{PacketId, Schedule, SlotFrame};
use crate::stats::{ScheduleStats, SlotRecord};
use crate::topology::{CouplerId, PopsTopology, ProcessorId};

/// A violation of the POPS slot rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Two transmissions drive the same coupler.
    CouplerContention {
        /// The contended coupler.
        coupler: CouplerId,
        /// First offending sender.
        first_sender: ProcessorId,
        /// Second offending sender.
        second_sender: ProcessorId,
    },
    /// One processor sends two *different* packets in the same slot.
    MultiplePacketsFromSender {
        /// The offending sender.
        sender: ProcessorId,
        /// First packet sent.
        first_packet: PacketId,
        /// Second, different, packet sent.
        second_packet: PacketId,
    },
    /// A processor reads more than one coupler in the same slot.
    ReceiveContention {
        /// The offending receiver.
        receiver: ProcessorId,
    },
    /// The sender is not wired to the coupler (wrong source group).
    SenderNotInSourceGroup {
        /// The offending sender.
        sender: ProcessorId,
        /// The coupler it tried to drive.
        coupler: CouplerId,
    },
    /// A receiver is not wired to the coupler (wrong destination group).
    ReceiverNotInDestGroup {
        /// The offending receiver.
        receiver: ProcessorId,
        /// The coupler it tried to read.
        coupler: CouplerId,
    },
    /// The sender does not hold the packet it tries to send.
    PacketNotHeld {
        /// The offending sender.
        sender: ProcessorId,
        /// The packet it does not hold.
        packet: PacketId,
    },
    /// A transmission lists no receivers — the packet would vanish.
    NoReceivers {
        /// The sender of the receiver-less transmission.
        sender: ProcessorId,
        /// The coupler driven.
        coupler: CouplerId,
    },
    /// A packet id outside `0..packet_count`.
    UnknownPacket {
        /// The unknown packet id.
        packet: PacketId,
    },
    /// A transmission drives a coupler marked failed by the injected
    /// [`FaultSet`].
    FailedCoupler {
        /// The sender that tried to drive it.
        sender: ProcessorId,
        /// The failed coupler.
        coupler: CouplerId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CouplerContention {
                coupler,
                first_sender,
                second_sender,
            } => write!(
                f,
                "coupler {coupler} driven by both processor {first_sender} and {second_sender}"
            ),
            SimError::MultiplePacketsFromSender {
                sender,
                first_packet,
                second_packet,
            } => write!(
                f,
                "processor {sender} sends two different packets ({first_packet}, {second_packet}) in one slot"
            ),
            SimError::ReceiveContention { receiver } => {
                write!(f, "processor {receiver} reads more than one coupler in one slot")
            }
            SimError::SenderNotInSourceGroup { sender, coupler } => {
                write!(f, "processor {sender} has no transmitter on coupler {coupler}")
            }
            SimError::ReceiverNotInDestGroup { receiver, coupler } => {
                write!(f, "processor {receiver} has no receiver on coupler {coupler}")
            }
            SimError::PacketNotHeld { sender, packet } => {
                write!(f, "processor {sender} does not hold packet {packet}")
            }
            SimError::NoReceivers { sender, coupler } => write!(
                f,
                "transmission from {sender} on coupler {coupler} has no receivers"
            ),
            SimError::UnknownPacket { packet } => write!(f, "unknown packet id {packet}"),
            SimError::FailedCoupler { sender, coupler } => {
                write!(f, "processor {sender} drives failed coupler {coupler}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The simulator: topology plus the current placement of every packet.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: PopsTopology,
    /// Packets currently held by each processor (a processor may hold
    /// several — e.g. mid-round in the `d > g` routing the not-yet-moved
    /// original plus a received intermediate would violate the paper's
    /// invariant, which is why the router assigns receivers among the
    /// processors that just sent; the simulator itself permits it and the
    /// tests assert the router never triggers it).
    holdings: Vec<Vec<PacketId>>,
    /// Current holder(s) of each packet (broadcast may replicate a packet).
    locations: Vec<Vec<ProcessorId>>,
    history: Vec<SlotRecord>,
    faults: FaultSet,
}

impl Simulator {
    /// Creates a simulator with packet `i` initially at processor `i` — the
    /// permutation-routing initial condition (`n` packets).
    pub fn with_unit_packets(topology: PopsTopology) -> Self {
        let n = topology.n();
        Self {
            topology,
            holdings: (0..n).map(|i| vec![i]).collect(),
            locations: (0..n).map(|i| vec![i]).collect(),
            history: Vec::new(),
            faults: FaultSet::none(&topology),
        }
    }

    /// Creates a simulator with an explicit initial placement:
    /// `placement[p]` is the processor initially holding packet `p`.
    ///
    /// # Panics
    ///
    /// Panics if a placement is out of processor range.
    pub fn with_placement(topology: PopsTopology, placement: &[ProcessorId]) -> Self {
        let n = topology.n();
        let mut holdings: Vec<Vec<PacketId>> = vec![Vec::new(); n];
        let mut locations = Vec::with_capacity(placement.len());
        for (packet, &proc) in placement.iter().enumerate() {
            assert!(proc < n, "placement of packet {packet} out of range");
            holdings[proc].push(packet);
            locations.push(vec![proc]);
        }
        Self {
            topology,
            holdings,
            locations,
            history: Vec::new(),
            faults: FaultSet::none(&topology),
        }
    }

    /// Creates a unit-packet simulator with `faults` injected from slot 0.
    pub fn with_unit_packets_and_faults(topology: PopsTopology, faults: FaultSet) -> Self {
        let mut sim = Self::with_unit_packets(topology);
        sim.faults = faults;
        sim
    }

    /// Injects (replaces) the fault set; subsequent frames driving a failed
    /// coupler are rejected with [`SimError::FailedCoupler`].
    pub fn inject_faults(&mut self, faults: FaultSet) {
        self.faults = faults;
    }

    /// The currently injected fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The topology simulated.
    pub fn topology(&self) -> &PopsTopology {
        &self.topology
    }

    /// Number of distinct packets tracked.
    pub fn packet_count(&self) -> usize {
        self.locations.len()
    }

    /// Packets currently held by `proc`.
    pub fn packets_at(&self, proc: ProcessorId) -> &[PacketId] {
        &self.holdings[proc]
    }

    /// Current holders of `packet` (more than one after a broadcast).
    pub fn holders_of(&self, packet: PacketId) -> &[ProcessorId] {
        &self.locations[packet]
    }

    /// Number of slots executed so far.
    pub fn slots_elapsed(&self) -> usize {
        self.history.len()
    }

    /// Per-slot records of everything executed so far.
    pub fn history(&self) -> &[SlotRecord] {
        &self.history
    }

    /// Aggregated statistics over the executed history.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats::from_records(&self.topology, &self.history)
    }

    /// Validates `frame` against the slot rules without changing state.
    pub fn validate_frame(&self, frame: &SlotFrame) -> Result<(), SimError> {
        let mut coupler_sender: HashMap<CouplerId, ProcessorId> = HashMap::new();
        let mut sender_packet: HashMap<ProcessorId, PacketId> = HashMap::new();
        let mut receiver_seen: HashMap<ProcessorId, ()> = HashMap::new();

        for t in &frame.transmissions {
            if t.packet >= self.locations.len() {
                return Err(SimError::UnknownPacket { packet: t.packet });
            }
            // Fault rule: a failed coupler carries no signal.
            if self.faults.is_failed(t.coupler) {
                return Err(SimError::FailedCoupler {
                    sender: t.sender,
                    coupler: t.coupler,
                });
            }
            // Rule 4a: sender wiring.
            if self.topology.group_of(t.sender) != self.topology.coupler_src_group(t.coupler) {
                return Err(SimError::SenderNotInSourceGroup {
                    sender: t.sender,
                    coupler: t.coupler,
                });
            }
            // Rule 1: coupler contention (the same sender driving the same
            // coupler twice is also contention — the coupler carries one
            // signal per slot).
            if let Some(&prev) = coupler_sender.get(&t.coupler) {
                return Err(SimError::CouplerContention {
                    coupler: t.coupler,
                    first_sender: prev,
                    second_sender: t.sender,
                });
            }
            coupler_sender.insert(t.coupler, t.sender);
            // Rule 2: one packet per sender.
            if let Some(&prev) = sender_packet.get(&t.sender) {
                if prev != t.packet {
                    return Err(SimError::MultiplePacketsFromSender {
                        sender: t.sender,
                        first_packet: prev,
                        second_packet: t.packet,
                    });
                }
            } else {
                sender_packet.insert(t.sender, t.packet);
            }
            // Rule 5: possession.
            if !self.holdings[t.sender].contains(&t.packet) {
                return Err(SimError::PacketNotHeld {
                    sender: t.sender,
                    packet: t.packet,
                });
            }
            // Receivers: wiring + contention + non-emptiness.
            if t.receivers.is_empty() {
                return Err(SimError::NoReceivers {
                    sender: t.sender,
                    coupler: t.coupler,
                });
            }
            for &r in &t.receivers {
                if self.topology.group_of(r) != self.topology.coupler_dest_group(t.coupler) {
                    return Err(SimError::ReceiverNotInDestGroup {
                        receiver: r,
                        coupler: t.coupler,
                    });
                }
                if receiver_seen.insert(r, ()).is_some() {
                    return Err(SimError::ReceiveContention { receiver: r });
                }
            }
        }
        Ok(())
    }

    /// Validates and executes one slot. On error the state is unchanged.
    pub fn execute_frame(&mut self, frame: &SlotFrame) -> Result<&SlotRecord, SimError> {
        self.validate_frame(frame)?;

        // Phase 1: packets leave their senders (each distinct sender emits
        // its one packet once, even when driving several couplers).
        let mut emitted: HashMap<ProcessorId, PacketId> = HashMap::new();
        for t in &frame.transmissions {
            emitted.entry(t.sender).or_insert(t.packet);
        }
        for (&sender, &packet) in &emitted {
            let pos = self.holdings[sender]
                .iter()
                .position(|&p| p == packet)
                .expect("validated possession");
            self.holdings[sender].swap_remove(pos);
            let lpos = self.locations[packet]
                .iter()
                .position(|&h| h == sender)
                .expect("locations mirror holdings");
            self.locations[packet].swap_remove(lpos);
        }

        // Phase 2: packets arrive at their readers.
        for t in &frame.transmissions {
            for &r in &t.receivers {
                self.holdings[r].push(t.packet);
                self.locations[t.packet].push(r);
            }
        }

        self.history.push(SlotRecord {
            couplers_used: frame.couplers_used(),
            deliveries: frame.deliveries(),
        });
        Ok(self.history.last().expect("just pushed"))
    }

    /// Executes a whole schedule, stopping at the first violation.
    /// Returns the number of slots executed on success.
    pub fn execute_schedule(&mut self, schedule: &Schedule) -> Result<usize, (usize, SimError)> {
        for (idx, frame) in schedule.slots.iter().enumerate() {
            self.execute_frame(frame).map_err(|e| (idx, e))?;
        }
        Ok(schedule.slots.len())
    }

    /// Checks that packet `p` sits exactly at `destinations[p]` for all `p`
    /// (single copy each) — the success criterion of a permutation routing.
    pub fn verify_delivery(&self, destinations: &[ProcessorId]) -> Result<(), DeliveryError> {
        if destinations.len() != self.locations.len() {
            return Err(DeliveryError::CountMismatch {
                packets: self.locations.len(),
                destinations: destinations.len(),
            });
        }
        for (packet, &want) in destinations.iter().enumerate() {
            let holders = &self.locations[packet];
            if holders.len() != 1 || holders[0] != want {
                return Err(DeliveryError::Misplaced {
                    packet,
                    expected: want,
                    actual: holders.clone(),
                });
            }
        }
        Ok(())
    }

    /// `true` iff every processor holds at most one packet — the invariant
    /// the paper notes for the Theorem-2 routing ("at each step of
    /// computation each processor stores exactly one packet").
    pub fn at_most_one_packet_each(&self) -> bool {
        self.holdings.iter().all(|h| h.len() <= 1)
    }

    /// `true` iff every processor holds at most one packet that is **not**
    /// already at its final destination (`destinations[p]` per packet).
    ///
    /// This is the storage invariant of the multi-round (`d > g`) routing:
    /// a processor may accumulate its own not-yet-sent packet alongside
    /// packets *delivered* to it, but never two packets still in transit.
    pub fn in_transit_at_most_one(&self, destinations: &[ProcessorId]) -> bool {
        self.holdings.iter().enumerate().all(|(proc, held)| {
            held.iter()
                .filter(|&&pkt| destinations.get(pkt) != Some(&proc))
                .count()
                <= 1
        })
    }
}

/// Failure of the end-of-routing delivery check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryError {
    /// Destination vector length differs from packet count.
    CountMismatch {
        /// Tracked packets.
        packets: usize,
        /// Provided destinations.
        destinations: usize,
    },
    /// A packet is not (only) at its destination.
    Misplaced {
        /// The packet.
        packet: PacketId,
        /// Where it should be.
        expected: ProcessorId,
        /// Where it actually is.
        actual: Vec<ProcessorId>,
    },
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::CountMismatch {
                packets,
                destinations,
            } => write!(f, "{destinations} destinations for {packets} packets"),
            DeliveryError::Misplaced {
                packet,
                expected,
                actual,
            } => write!(
                f,
                "packet {packet} expected at {expected}, found at {actual:?}"
            ),
        }
    }
}

impl std::error::Error for DeliveryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::Transmission;

    fn pops32() -> PopsTopology {
        PopsTopology::new(3, 2)
    }

    #[test]
    fn single_hop_delivery() {
        // Figure 2 network: send packet 0 from processor 0 (group 0) to
        // processor 4 (group 1) through coupler c(1, 0).
        let t = pops32();
        let mut sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 0, 4)],
        };
        sim.execute_frame(&frame).unwrap();
        // Processor 4 keeps its own packet 4 and gains packet 0.
        assert_eq!(sim.packets_at(4), &[4, 0]);
        assert!(sim.packets_at(0).is_empty());
        assert_eq!(sim.holders_of(0), &[4]);
        assert_eq!(sim.slots_elapsed(), 1);
    }

    #[test]
    fn coupler_contention_detected() {
        let t = pops32();
        let mut sim = Simulator::with_unit_packets(t);
        let c = t.coupler_id(1, 0);
        let frame = SlotFrame {
            transmissions: vec![
                Transmission::unicast(0, c, 0, 3),
                Transmission::unicast(1, c, 1, 4),
            ],
        };
        let err = sim.execute_frame(&frame).unwrap_err();
        assert!(matches!(err, SimError::CouplerContention { coupler, .. } if coupler == c));
        // Transactional: nothing moved.
        assert_eq!(sim.packets_at(0), &[0]);
        assert_eq!(sim.slots_elapsed(), 0);
    }

    #[test]
    fn receive_contention_detected() {
        let t = pops32();
        let mut sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![
                Transmission::unicast(0, t.coupler_id(1, 0), 0, 4),
                Transmission::unicast(3, t.coupler_id(1, 1), 3, 4),
            ],
        };
        let err = sim.execute_frame(&frame).unwrap_err();
        assert_eq!(err, SimError::ReceiveContention { receiver: 4 });
    }

    #[test]
    fn wiring_violations_detected() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        // Sender 0 (group 0) cannot drive coupler c(0, 1) (sources group 1).
        let bad_tx = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(0, 1), 0, 1)],
        };
        assert!(matches!(
            sim.validate_frame(&bad_tx),
            Err(SimError::SenderNotInSourceGroup { sender: 0, .. })
        ));
        // Receiver 4 (group 1) cannot read coupler c(0, 0).
        let bad_rx = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(0, 0), 0, 4)],
        };
        assert!(matches!(
            sim.validate_frame(&bad_rx),
            Err(SimError::ReceiverNotInDestGroup { receiver: 4, .. })
        ));
    }

    #[test]
    fn possession_enforced() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 2, 4)],
        };
        assert!(matches!(
            sim.validate_frame(&frame),
            Err(SimError::PacketNotHeld {
                sender: 0,
                packet: 2
            })
        ));
    }

    #[test]
    fn one_packet_per_sender_enforced() {
        let t = pops32();
        let mut sim = Simulator::with_placement(t, &[0, 0]);
        // Processor 0 holds packets 0 and 1; it cannot send both.
        let frame = SlotFrame {
            transmissions: vec![
                Transmission::unicast(0, t.coupler_id(0, 0), 0, 1),
                Transmission::unicast(0, t.coupler_id(1, 0), 1, 4),
            ],
        };
        let err = sim.execute_frame(&frame).unwrap_err();
        assert!(matches!(
            err,
            SimError::MultiplePacketsFromSender { sender: 0, .. }
        ));
    }

    #[test]
    fn same_packet_to_multiple_couplers_is_legal() {
        // One-to-all style: one sender drives several couplers with the
        // same packet.
        let t = pops32();
        let mut sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![
                Transmission {
                    sender: 0,
                    coupler: t.coupler_id(0, 0),
                    packet: 0,
                    receivers: vec![1, 2].into(),
                },
                Transmission {
                    sender: 0,
                    coupler: t.coupler_id(1, 0),
                    packet: 0,
                    receivers: vec![3, 4, 5].into(),
                },
            ],
        };
        sim.execute_frame(&frame).unwrap();
        // Packet 0 now replicated at five processors, gone from 0.
        assert_eq!(sim.holders_of(0).len(), 5);
        assert!(sim.packets_at(0).is_empty());
    }

    #[test]
    fn no_receivers_rejected() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![Transmission {
                sender: 0,
                coupler: t.coupler_id(1, 0),
                packet: 0,
                receivers: vec![].into(),
            }],
        };
        assert!(matches!(
            sim.validate_frame(&frame),
            Err(SimError::NoReceivers { .. })
        ));
    }

    #[test]
    fn unknown_packet_rejected() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        let frame = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 99, 4)],
        };
        assert!(matches!(
            sim.validate_frame(&frame),
            Err(SimError::UnknownPacket { packet: 99 })
        ));
    }

    #[test]
    fn verify_delivery_catches_misplacement() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        // Identity placement: packet i at i.
        let identity: Vec<usize> = (0..6).collect();
        sim.verify_delivery(&identity).unwrap();
        let shifted: Vec<usize> = (0..6).map(|i| (i + 1) % 6).collect();
        assert!(matches!(
            sim.verify_delivery(&shifted),
            Err(DeliveryError::Misplaced { packet: 0, .. })
        ));
    }

    #[test]
    fn invariant_query() {
        let t = pops32();
        let sim = Simulator::with_unit_packets(t);
        assert!(sim.at_most_one_packet_each());
        let sim2 = Simulator::with_placement(t, &[2, 2, 2]);
        assert!(!sim2.at_most_one_packet_each());
    }

    #[test]
    fn schedule_execution_reports_failing_slot() {
        let t = pops32();
        let mut sim = Simulator::with_unit_packets(t);
        let ok = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 0, 4)],
        };
        let bad = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(1, 0), 0, 4)],
        };
        let schedule = Schedule {
            slots: vec![ok, bad],
        };
        let (idx, err) = sim.execute_schedule(&schedule).unwrap_err();
        assert_eq!(idx, 1);
        assert!(matches!(err, SimError::PacketNotHeld { .. }));
        assert_eq!(sim.slots_elapsed(), 1);
    }

    #[test]
    fn failed_coupler_rejected_and_transactional() {
        let t = pops32();
        let mut faults = crate::fault::FaultSet::none(&t);
        let c = t.coupler_id(1, 0);
        faults.fail_coupler(c);
        let mut sim = Simulator::with_unit_packets_and_faults(t, faults);
        let frame = SlotFrame {
            transmissions: vec![Transmission::unicast(0, c, 0, 4)],
        };
        let err = sim.execute_frame(&frame).unwrap_err();
        assert_eq!(
            err,
            SimError::FailedCoupler {
                sender: 0,
                coupler: c
            }
        );
        assert_eq!(sim.slots_elapsed(), 0);
        // The sibling coupler c(0, 0) still works.
        let ok = SlotFrame {
            transmissions: vec![Transmission::unicast(0, t.coupler_id(0, 0), 0, 1)],
        };
        sim.execute_frame(&ok).unwrap();
    }

    #[test]
    fn error_displays_are_informative() {
        let e = SimError::CouplerContention {
            coupler: 2,
            first_sender: 0,
            second_sender: 1,
        };
        assert!(e.to_string().contains("coupler 2"));
        let d = DeliveryError::Misplaced {
            packet: 3,
            expected: 1,
            actual: vec![],
        };
        assert!(d.to_string().contains("packet 3"));
    }
}
