//! Slots, transmissions, and schedules — the unit of time of the POPS
//! machine.
//!
//! §1 of the paper: during one *slot* every processor, in parallel, sends a
//! packet to a subset of its `g` transmitters and receives a packet from
//! (at most) one of its `g` receivers. A [`SlotFrame`] is the complete
//! description of one slot's optical activity; a [`Schedule`] is a sequence
//! of slots. The legality rules (one sender per coupler, one receive per
//! processor, wiring constraints) are enforced by the simulator
//! ([`crate::simulator`]).

use crate::topology::{CouplerId, ProcessorId};

/// Identifier of a packet. Permutation routing uses the packet's source
/// processor as its id (`packet p_i` of the paper).
pub type PacketId = usize;

/// One optical transmission: `sender` drives `coupler` with `packet`, and
/// each processor in `receivers` reads the coupler.
///
/// The coupler physically broadcasts to all `d` processors of its
/// destination group; `receivers` lists the processors that *choose to
/// read* this coupler in this slot. Permutation routing uses exactly one
/// receiver per transmission; the one-to-all pattern of §1 uses up to `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmission {
    /// The sending processor (must be in the coupler's source group).
    pub sender: ProcessorId,
    /// The coupler driven.
    pub coupler: CouplerId,
    /// The packet transmitted.
    pub packet: PacketId,
    /// The processors reading the coupler (each in the destination group).
    pub receivers: Vec<ProcessorId>,
}

impl Transmission {
    /// Convenience constructor for the common single-receiver case.
    pub fn unicast(
        sender: ProcessorId,
        coupler: CouplerId,
        packet: PacketId,
        receiver: ProcessorId,
    ) -> Self {
        Self {
            sender,
            coupler,
            packet,
            receivers: vec![receiver],
        }
    }
}

/// All transmissions of one slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotFrame {
    /// The slot's transmissions, in no particular order.
    pub transmissions: Vec<Transmission>,
}

impl SlotFrame {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of couplers driven this slot.
    pub fn couplers_used(&self) -> usize {
        self.transmissions.len()
    }

    /// Number of packet *deliveries* (receiver reads) this slot.
    pub fn deliveries(&self) -> usize {
        self.transmissions.iter().map(|t| t.receivers.len()).sum()
    }
}

/// A routing schedule: a sequence of slots to execute in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The slots, executed front to back.
    pub slots: Vec<SlotFrame>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots — the routing cost measure of the paper.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total transmissions across all slots.
    pub fn total_transmissions(&self) -> usize {
        self.slots.iter().map(|s| s.couplers_used()).sum()
    }

    /// Total deliveries across all slots. Equals `n` for a direct routing
    /// of a permutation and `2n` for a two-hop routing.
    pub fn total_deliveries(&self) -> usize {
        self.slots.iter().map(|s| s.deliveries()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_has_one_receiver() {
        let t = Transmission::unicast(0, 3, 7, 5);
        assert_eq!(t.receivers, vec![5]);
        assert_eq!(t.packet, 7);
    }

    #[test]
    fn slot_counts() {
        let mut slot = SlotFrame::new();
        slot.transmissions.push(Transmission::unicast(0, 0, 0, 1));
        slot.transmissions.push(Transmission {
            sender: 2,
            coupler: 1,
            packet: 2,
            receivers: vec![3, 4],
        });
        assert_eq!(slot.couplers_used(), 2);
        assert_eq!(slot.deliveries(), 3);
    }

    #[test]
    fn schedule_totals() {
        let slot_a = SlotFrame {
            transmissions: vec![Transmission::unicast(0, 0, 0, 1)],
        };
        let slot_b = SlotFrame {
            transmissions: vec![
                Transmission::unicast(1, 1, 0, 0),
                Transmission::unicast(2, 2, 2, 3),
            ],
        };
        let schedule = Schedule {
            slots: vec![slot_a, slot_b],
        };
        assert_eq!(schedule.slot_count(), 2);
        assert_eq!(schedule.total_transmissions(), 3);
        assert_eq!(schedule.total_deliveries(), 3);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.slot_count(), 0);
        assert_eq!(s.total_deliveries(), 0);
    }
}
