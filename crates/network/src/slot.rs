//! Slots, transmissions, and schedules — the unit of time of the POPS
//! machine.
//!
//! §1 of the paper: during one *slot* every processor, in parallel, sends a
//! packet to a subset of its `g` transmitters and receives a packet from
//! (at most) one of its `g` receivers. A [`SlotFrame`] is the complete
//! description of one slot's optical activity; a [`Schedule`] is a sequence
//! of slots. The legality rules (one sender per coupler, one receive per
//! processor, wiring constraints) are enforced by the simulator
//! ([`crate::simulator`]).

use crate::topology::{CouplerId, ProcessorId};

/// Identifier of a packet. Permutation routing uses the packet's source
/// processor as its id (`packet p_i` of the paper).
pub type PacketId = usize;

/// The receiver set of a [`Transmission`].
///
/// Permutation routing emits `2n` transmissions per plan, each with
/// exactly one receiver; storing that receiver inline instead of in a
/// one-element `Vec` removes two heap allocations per processor from the
/// schedule-emission hot path. True multicasts (the one-to-all patterns
/// of §1) still carry their receiver list on the heap.
///
/// The type dereferences to `[ProcessorId]`, so reading code treats it
/// exactly like the `Vec<ProcessorId>` it replaces: indexing, `len`,
/// `iter`, and `for &r in &t.receivers` all work unchanged. Equality is
/// slice equality — `One(5)` and `Many(vec![5])` compare equal, so
/// schedules survive encode/decode round-trips that rebuild the heap
/// representation.
#[derive(Clone)]
pub enum Receivers {
    /// Exactly one reading processor — every permutation-routing
    /// transmission. Stored inline, no allocation.
    One(ProcessorId),
    /// A general receiver set (multicast, or empty for a blind send).
    /// Boxed slice rather than `Vec`: schedules hold `2n` transmissions,
    /// so the 8 bytes of unused capacity field are worth shaving.
    Many(Box<[ProcessorId]>),
}

impl Receivers {
    /// The receivers as a slice, whatever the representation.
    pub fn as_slice(&self) -> &[ProcessorId] {
        match self {
            Receivers::One(r) => std::slice::from_ref(r),
            Receivers::Many(v) => v,
        }
    }
}

impl std::ops::Deref for Receivers {
    type Target = [ProcessorId];

    fn deref(&self) -> &[ProcessorId] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Receivers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for Receivers {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Receivers {}

impl PartialEq<Vec<ProcessorId>> for Receivers {
    fn eq(&self, other: &Vec<ProcessorId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<ProcessorId>> for Receivers {
    fn from(v: Vec<ProcessorId>) -> Self {
        Receivers::Many(v.into_boxed_slice())
    }
}

impl FromIterator<ProcessorId> for Receivers {
    fn from_iter<I: IntoIterator<Item = ProcessorId>>(iter: I) -> Self {
        Receivers::Many(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Receivers {
    type Item = &'a ProcessorId;
    type IntoIter = std::slice::Iter<'a, ProcessorId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One optical transmission: `sender` drives `coupler` with `packet`, and
/// each processor in `receivers` reads the coupler.
///
/// The coupler physically broadcasts to all `d` processors of its
/// destination group; `receivers` lists the processors that *choose to
/// read* this coupler in this slot. Permutation routing uses exactly one
/// receiver per transmission; the one-to-all pattern of §1 uses up to `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmission {
    /// The sending processor (must be in the coupler's source group).
    pub sender: ProcessorId,
    /// The coupler driven.
    pub coupler: CouplerId,
    /// The packet transmitted.
    pub packet: PacketId,
    /// The processors reading the coupler (each in the destination group).
    pub receivers: Receivers,
}

impl Transmission {
    /// Convenience constructor for the common single-receiver case.
    /// Allocation-free: the receiver is stored inline.
    pub fn unicast(
        sender: ProcessorId,
        coupler: CouplerId,
        packet: PacketId,
        receiver: ProcessorId,
    ) -> Self {
        Self {
            sender,
            coupler,
            packet,
            receivers: Receivers::One(receiver),
        }
    }
}

/// All transmissions of one slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotFrame {
    /// The slot's transmissions, in no particular order.
    pub transmissions: Vec<Transmission>,
}

impl SlotFrame {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of couplers driven this slot.
    pub fn couplers_used(&self) -> usize {
        self.transmissions.len()
    }

    /// Number of packet *deliveries* (receiver reads) this slot.
    pub fn deliveries(&self) -> usize {
        self.transmissions.iter().map(|t| t.receivers.len()).sum()
    }
}

/// A routing schedule: a sequence of slots to execute in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The slots, executed front to back.
    pub slots: Vec<SlotFrame>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots — the routing cost measure of the paper.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total transmissions across all slots.
    pub fn total_transmissions(&self) -> usize {
        self.slots.iter().map(|s| s.couplers_used()).sum()
    }

    /// Total deliveries across all slots. Equals `n` for a direct routing
    /// of a permutation and `2n` for a two-hop routing.
    pub fn total_deliveries(&self) -> usize {
        self.slots.iter().map(|s| s.deliveries()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_has_one_receiver() {
        let t = Transmission::unicast(0, 3, 7, 5);
        assert_eq!(t.receivers, vec![5]);
        assert_eq!(t.packet, 7);
    }

    #[test]
    fn slot_counts() {
        let mut slot = SlotFrame::new();
        slot.transmissions.push(Transmission::unicast(0, 0, 0, 1));
        slot.transmissions.push(Transmission {
            sender: 2,
            coupler: 1,
            packet: 2,
            receivers: vec![3, 4].into(),
        });
        assert_eq!(slot.couplers_used(), 2);
        assert_eq!(slot.deliveries(), 3);
    }

    #[test]
    fn schedule_totals() {
        let slot_a = SlotFrame {
            transmissions: vec![Transmission::unicast(0, 0, 0, 1)],
        };
        let slot_b = SlotFrame {
            transmissions: vec![
                Transmission::unicast(1, 1, 0, 0),
                Transmission::unicast(2, 2, 2, 3),
            ],
        };
        let schedule = Schedule {
            slots: vec![slot_a, slot_b],
        };
        assert_eq!(schedule.slot_count(), 2);
        assert_eq!(schedule.total_transmissions(), 3);
        assert_eq!(schedule.total_deliveries(), 3);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.slot_count(), 0);
        assert_eq!(s.total_deliveries(), 0);
    }
}
