//! Resolving a permutation from command-line options.
//!
//! Accepted forms (on a POPS(d, g) with `n = d·g`):
//!
//! * `--perm 5,4,3,2,1,0` — an explicit image vector;
//! * `--family NAME [--seed S] [--shift K] [--stage B]` — one of the named
//!   families of the paper's §2 plus the random generators.

use pops_permutation::families::{
    bit_reversal, group_rotation, hypercube_exchange, matrix_transpose, perfect_shuffle,
    random_derangement, random_group_deranged, random_permutation, rotation, vector_reversal,
};
use pops_permutation::{Permutation, SplitMix64};

use crate::opts::{err, CliError, Opts};

/// The families `--family` understands, with the options they read.
pub const FAMILY_HELP: &str = "\
  identity                      the identity permutation
  reversal                      vector reversal pi(i) = n-1-i        (§2)
  transpose                     matrix transpose (n must be a square) (§2)
  shuffle                       perfect shuffle (n a power of two)    (§2)
  bit-reversal                  index bit reversal (n a power of two) (§2)
  hypercube --stage B           exchange along hypercube dimension B  (§2)
  rotation --shift K            pi(i) = (i+K) mod n
  group-rotation --shift K      shifts whole groups: worst-case demand
  random --seed S               uniform random permutation
  derangement --seed S          uniform random fixed-point-free
  group-deranged --seed S       random group-uniform, group-deranged";

/// Builds the permutation requested by `opts` for an `n`-processor,
/// `d`-per-group network.
pub fn resolve(opts: &Opts, d: usize, g: usize) -> Result<Permutation, CliError> {
    let n = d * g;
    if let Some(image) = opts.usize_list("perm")? {
        if image.len() != n {
            return Err(err(format!(
                "--perm has {} entries but n = d*g = {n}",
                image.len()
            )));
        }
        return Permutation::new(image).map_err(|e| err(format!("--perm: {e}")));
    }
    let family = opts.get("family").unwrap_or("random");
    let seed = opts.u64_or("seed", 42)?;
    let mut rng = SplitMix64::new(seed);
    let is_pow2 = n.is_power_of_two();
    match family {
        "identity" => Ok(Permutation::identity(n)),
        "reversal" => Ok(vector_reversal(n)),
        "transpose" => {
            let side = (n as f64).sqrt().round() as usize;
            if side * side != n {
                return Err(err(format!("transpose needs square n, got {n}")));
            }
            Ok(matrix_transpose(side, side))
        }
        "shuffle" => {
            if !is_pow2 {
                return Err(err(format!("shuffle needs a power-of-two n, got {n}")));
            }
            Ok(perfect_shuffle(n))
        }
        "bit-reversal" => {
            if !is_pow2 {
                return Err(err(format!("bit-reversal needs a power-of-two n, got {n}")));
            }
            Ok(bit_reversal(n))
        }
        "hypercube" => {
            if !is_pow2 {
                return Err(err(format!("hypercube needs a power-of-two n, got {n}")));
            }
            let dims = n.trailing_zeros();
            let stage = opts.usize_or("stage", 0)? as u32;
            if stage >= dims {
                return Err(err(format!("--stage must be < {dims}")));
            }
            Ok(hypercube_exchange(dims, stage))
        }
        "rotation" => Ok(rotation(n, opts.usize_or("shift", 1)?)),
        "group-rotation" => Ok(group_rotation(d, g, opts.usize_or("shift", 1)?)),
        "random" => Ok(random_permutation(n, &mut rng)),
        "derangement" => Ok(random_derangement(n, &mut rng)),
        "group-deranged" => Ok(random_group_deranged(d, g, &mut rng)),
        other => Err(err(format!(
            "unknown family '{other}'; known families:\n{FAMILY_HELP}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(words: &[&str]) -> Opts {
        Opts::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn explicit_perm_wins() {
        let o = opts(&["route", "--perm", "1,0,3,2", "--family", "reversal"]);
        let pi = resolve(&o, 2, 2).unwrap();
        assert_eq!(pi.as_slice(), &[1, 0, 3, 2]);
    }

    #[test]
    fn explicit_perm_length_checked() {
        let o = opts(&["route", "--perm", "1,0"]);
        assert!(resolve(&o, 2, 2).unwrap_err().0.contains("n = d*g"));
    }

    #[test]
    fn families_build() {
        for fam in [
            "identity",
            "reversal",
            "rotation",
            "group-rotation",
            "random",
            "derangement",
            "group-deranged",
        ] {
            let o = opts(&["route", "--family", fam]);
            let pi = resolve(&o, 2, 3).unwrap();
            assert_eq!(pi.len(), 6, "{fam}");
        }
    }

    #[test]
    fn power_of_two_families_guarded() {
        let o = opts(&["route", "--family", "shuffle"]);
        assert!(resolve(&o, 2, 3).is_err());
        assert!(resolve(&o, 2, 4).is_ok());
    }

    #[test]
    fn transpose_needs_square() {
        let o = opts(&["route", "--family", "transpose"]);
        assert!(resolve(&o, 2, 3).is_err());
        assert_eq!(resolve(&o, 2, 2).unwrap().len(), 4);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = resolve(&opts(&["r", "--family", "random", "--seed", "7"]), 3, 3).unwrap();
        let b = resolve(&opts(&["r", "--family", "random", "--seed", "7"]), 3, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_family_lists_help() {
        let o = opts(&["route", "--family", "nope"]);
        assert!(resolve(&o, 2, 2).unwrap_err().0.contains("known families"));
    }

    #[test]
    fn hypercube_stage_bounds() {
        let o = opts(&["r", "--family", "hypercube", "--stage", "9"]);
        assert!(resolve(&o, 2, 4).is_err());
        let o = opts(&["r", "--family", "hypercube", "--stage", "2"]);
        assert_eq!(resolve(&o, 2, 4).unwrap().apply(0), 4);
    }
}
