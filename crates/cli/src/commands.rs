//! The CLI subcommands. Every command renders into a `String` so the unit
//! tests can assert on output without capturing stdout.

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{TcpListener, ToSocketAddrs as _};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pops_baselines::compare;
use pops_bipartite::ColorerKind;
use pops_core::bounds::{proposition1, proposition2, proposition3};
use pops_core::diagnostics::render_plan;
use pops_core::engine::RoutingEngine;
use pops_core::fault_routing::route_with_faults;
use pops_core::optimal::min_slots_two_hop;
use pops_core::route_batch_with;
use pops_core::{lower_bound, theorem2_slots};
use pops_network::{viz, FaultSet, PopsTopology, Simulator};
use pops_permutation::families::random_permutation;
use pops_permutation::SplitMix64;
use pops_service::{
    read_trace, record_proxy, run_replay, serve_router, synth_trace, BatchItem, Json,
    ReplayOptions, ServerConfig, ServiceClient, ServiceConfig, SloGates, TopologyRouter,
    TopologyRouterConfig, TraceRecorder,
};

use crate::opts::{err, CliError, Opts};
use crate::spec;

/// Top-level help text.
pub const HELP: &str = "\
pops — Partitioned Optical Passive Stars permutation routing
       (Mei & Rizzi, IPPS 2002 — full reproduction)

USAGE: pops <command> [--option value]...

COMMANDS
  topology  --d D --g G                      render the wiring (Figure 2 style)
  route     --d D --g G [perm] [--engine E]  route a permutation (Theorem 2)
            [--schedule] [--compare] [--gantt]
  bounds    --d D --g G [perm]               Propositions 1-3 lower bounds
  optimal   --d D --g G [perm] [--budget B]  exact minimum slots (tiny n)
  faults    --d D --g G [perm] --fail a,b,c  route around failed couplers
  sweep     [--max-d D] [--max-g G]          Theorem-2 slot-count sweep
  batch     --d D --g G [--count N]          route a batch of random perms
            [--threads T] [--no-artefacts]   (engine-per-worker fast path)
  serve     --d D --g G [--port P]           start the TCP/JSON routing service
            [--topology DxG]...              pre-warm (and pin) more topologies; requests
                                             may select any shape up to --max-topologies
            [--max-topologies N]             topology registry bound (default 8, LRU)
            [--shards S] [--cache C] [--max-in-flight M]
            [--phase-cache C]                level-2 per-phase plan cache (default 1024)
            [--cache-shards N]               lock shards per cache level
            [--cache-dir DIR]                warm-start dir: load on boot, spill on shutdown
                                             (one file per topology; foreign files skipped)
            [--read-timeout-ms T] [--write-timeout-ms T]   (0 disables; defaults 30000)
            [--max-line-bytes B]             request-line cap (default 16 MiB)
            [--max-conns N] [--nodelay]      connection cap (default 256), TCP_NODELAY
            [--max-batch-items N]            wire-batch item cap (default 1024)
            [--max-batch-topologies N]       distinct shapes per batch (default 8)
            [--overload-watermark N]         shed route/batch work beyond N in flight
                                             (typed 'overloaded' error, retry-after-ms)
            [--quota-rps N] [--quota-burst B]  per-client-IP token-bucket quota
            [--slow-ms T]                    trace requests slower than T ms to stderr
                                             (rate-limited; ids echoed on responses)
            [--metrics-port P]               Prometheus sidecar listener; the main
                                             port answers GET /metrics regardless
            [--fault DxG:c1,c2,...]          baseline failed couplers for one topology,
                                             composed into every route for that shape
                                             (must leave every group pair routable)
            [--record FILE]                  tee every decoded route/batch/cache request
                                             to an append-only JSONL trace (see replay)
  request   --addr HOST:PORT [perm]          route one request via a server
            [--d D --g G]                    select a topology (multi-topology servers)
            [--kind K] [--stats] [--shutdown]
            [--fault c1,c2,...]              treat couplers as failed for this request;
                                             the schedule is refereed on a simulator
                                             with the same couplers down
            [--batch-file FILE]              send one wire batch op from a JSON-lines file
                                             (each line: perm with optional d/g fields)
            [--cache save|load|stats]        plan-cache op (save/load need --cache-dir serve)
            [--binary]                       negotiate the length-prefixed binary framing
            [--timeout-ms T]                 client timeout (default 30000, 0 disables)
  stats     --addr HOST:PORT                 one-line operational summary of a server
            [--watch N]                      resample every N seconds, printing deltas
                                             (plans/s, hit rate, sheds) until interrupted
            [--samples M]                    stop after M watch lines (default: forever)
            [--timeout-ms T]                 client timeout (default 30000, 0 disables)
  record    --addr HOST:PORT --out FILE      recording proxy: forward wire traffic to a
            [--port P]                       server, teeing decoded requests to a JSONL
                                             trace (stops when a shutdown op passes through)
  replay    --addr HOST:PORT                 drive a recorded trace back over real TCP,
            (--trace FILE | --synth SPEC)    re-refereeing every schedule on the simulator
            [--rate-multiplier R]            arrival-time speedup (default 1.0)
            [--clients M]                    concurrent client threads (default 4)
            [--duration SECS] [--loop]       wall-clock bound / repeat the trace
            [--count N] [--seed S]           synthetic-trace size (default 256) and seed
                                             (--synth mixed:DxG[,DxG...] when no recording)
            [--no-verify]                    skip the simulator referee (raw latency only)
            [--soak]                         loop with SLO gates; exits non-zero on breach
            [--slo-p99-ms MS]                gate: p99 latency of successful requests
            [--slo-shed-pct PCT]             gate: shed percentage of attempted requests
            [--slo-verify-failures N]        gate: verification failures (soak default 0)
            [--slo-failures N]               gate: hard failures (soak default 0)
            [--timeout-ms T]                 client timeout (default 10000, 0 disables)
  collectives --d D --g G                    slot costs vs lower bounds
  families                                   list the permutation families
  help                                       this message

PERMUTATION SELECTION ([perm] above)
  --perm 5,4,3,2,1,0       explicit image vector (length d*g)
  --family NAME            a named family (see `pops families`)
  --seed S                 seed for the random families (default 42)

ENGINES (--engine): koenig | alternating | euler (default)
";

/// Dispatches a parsed command line.
pub fn run(opts: &Opts) -> Result<String, CliError> {
    match opts.command.as_str() {
        "topology" => cmd_topology(opts),
        "route" => cmd_route(opts),
        "bounds" => cmd_bounds(opts),
        "optimal" => cmd_optimal(opts),
        "faults" => cmd_faults(opts),
        "sweep" => cmd_sweep(opts),
        "batch" => cmd_batch(opts),
        "serve" => cmd_serve(opts),
        "request" => cmd_request(opts),
        "stats" => cmd_stats(opts),
        "record" => cmd_record(opts),
        "replay" => cmd_replay(opts),
        "collectives" => cmd_collectives(opts),
        "families" => Ok(format!("families:\n{}\n", spec::FAMILY_HELP)),
        "" | "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(err(format!("unknown command '{other}'; try `pops help`"))),
    }
}

fn shape(opts: &Opts) -> Result<PopsTopology, CliError> {
    let d = opts.usize_req("d")?;
    let g = opts.usize_req("g")?;
    if d == 0 || g == 0 {
        return Err(err("--d and --g must be positive"));
    }
    if d * g > 1 << 20 {
        return Err(err("network too large (n > 2^20)"));
    }
    Ok(PopsTopology::new(d, g))
}

fn engine(opts: &Opts) -> Result<ColorerKind, CliError> {
    match opts.get("engine").unwrap_or("euler") {
        "koenig" => Ok(ColorerKind::Koenig),
        "alternating" => Ok(ColorerKind::AlternatingPath),
        "euler" => Ok(ColorerKind::EulerSplit),
        other => Err(err(format!(
            "unknown engine '{other}' (koenig|alternating|euler)"
        ))),
    }
}

fn cmd_topology(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    let mut out = viz::render_topology(&t);
    let _ = writeln!(
        out,
        "n = {} processors, {} couplers, diameter {}, theorem-2 permutation cost {} slot(s)",
        t.n(),
        t.coupler_count(),
        t.diameter(),
        theorem2_slots(t.d(), t.g())
    );
    Ok(out)
}

fn cmd_route(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    let pi = spec::resolve(opts, t.d(), t.g())?;
    let kind = engine(opts)?;
    let plan = RoutingEngine::with_colorer(t, kind)
        .emit_artefacts(true)
        .plan_theorem2(&pi);
    let mut sim = Simulator::with_unit_packets(t);
    sim.execute_schedule(&plan.schedule)
        .map_err(|(slot, e)| err(format!("schedule illegal at slot {slot}: {e}")))?;
    sim.verify_delivery(pi.as_slice())
        .map_err(|e| err(format!("misdelivery: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "{t}: routed in {} slot(s)", plan.schedule.slot_count());
    let _ = writeln!(
        out,
        "theorem-2 bound: {}   lower bound: {}   engine: {}",
        theorem2_slots(t.d(), t.g()),
        lower_bound(&pi, t.d(), t.g()),
        kind.name()
    );
    let _ = writeln!(out, "delivery verified on the slot-level simulator");
    if opts.flag("compare") {
        let c = compare(&pi, t.d(), t.g());
        let _ = writeln!(
            out,
            "direct (single-hop) routing: {} slot(s){}",
            c.direct_slots,
            if c.single_slot_routable {
                " — single-slot routable"
            } else {
                ""
            }
        );
        if let Some(s) = c.structured_slots {
            let _ = writeln!(out, "structured (Sahni-style) routing: {s} slot(s)");
        }
    }
    if opts.flag("schedule") {
        let _ = writeln!(out, "\n{}", render_plan(&plan, &pi));
    }
    if opts.flag("gantt") {
        let _ = writeln!(
            out,
            "\n{}",
            pops_core::diagnostics::render_gantt(&plan.schedule, &t)
        );
    }
    Ok(out)
}

fn cmd_bounds(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    let (d, g) = (t.d(), t.g());
    let pi = spec::resolve(opts, d, g)?;
    let fmt = |p: Option<usize>| p.map_or("n/a (hypothesis fails)".into(), |x| x.to_string());
    let mut out = String::new();
    let _ = writeln!(out, "{t}, n = {}", t.n());
    let _ = writeln!(
        out,
        "proposition 1 (derangement counting) : {}",
        fmt(proposition1(&pi, d, g))
    );
    let _ = writeln!(
        out,
        "proposition 2 (corrected, inter-group): {}",
        fmt(proposition2(&pi, d, g))
    );
    let _ = writeln!(
        out,
        "proposition 3 (two-hop counting)      : {}",
        fmt(proposition3(&pi, d, g))
    );
    let _ = writeln!(
        out,
        "combined lower bound                  : {}",
        lower_bound(&pi, d, g)
    );
    let _ = writeln!(
        out,
        "theorem-2 upper bound                 : {}",
        theorem2_slots(d, g)
    );
    Ok(out)
}

fn cmd_optimal(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    if t.n() > 12 {
        return Err(err(format!(
            "exact search is exponential; n = {} > 12 (use --d/--g smaller)",
            t.n()
        )));
    }
    let pi = spec::resolve(opts, t.d(), t.g())?;
    let budget = opts.u64_or("budget", 50_000_000)?;
    let out = min_slots_two_hop(&pi, t, budget);
    let mut s = String::new();
    match out.slots {
        Some(opt) => {
            let _ = writeln!(
                s,
                "{t}: exact minimum (two-hop class) = {opt} slot(s)   [{} nodes searched]",
                out.nodes
            );
            let _ = writeln!(
                s,
                "theorem-2 spends {}; combined lower bound {}",
                theorem2_slots(t.d(), t.g()),
                lower_bound(&pi, t.d(), t.g())
            );
        }
        None => {
            let _ = writeln!(
                s,
                "budget exhausted after {} nodes — raise --budget",
                out.nodes
            );
        }
    }
    Ok(s)
}

fn cmd_faults(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    let pi = spec::resolve(opts, t.d(), t.g())?;
    let failed = opts
        .usize_list("fail")?
        .ok_or_else(|| err("--fail a,b,c is required (coupler ids)"))?;
    let mut faults = FaultSet::none(&t);
    for c in failed {
        if c >= t.coupler_count() {
            return Err(err(format!(
                "coupler {c} out of range (couplers: 0..{})",
                t.coupler_count()
            )));
        }
        faults.fail_coupler(c);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{t} with {} failed coupler(s): {:?}",
        faults.failed_count(),
        faults.iter_failed().collect::<Vec<_>>()
    );
    match route_with_faults(&pi, t, &faults) {
        Ok(routing) => {
            let mut sim = Simulator::with_unit_packets_and_faults(t, faults.clone());
            sim.execute_schedule(&routing.schedule)
                .map_err(|(slot, e)| err(format!("schedule illegal at slot {slot}: {e}")))?;
            sim.verify_delivery(pi.as_slice())
                .map_err(|e| err(format!("misdelivery: {e}")))?;
            let _ = writeln!(
                out,
                "routed in {} slot(s), longest detour {} hop(s) (healthy theorem-2: {})",
                routing.slots(),
                routing.max_hops(),
                theorem2_slots(t.d(), t.g())
            );
            let _ = writeln!(out, "delivery verified with the faults injected");
        }
        Err(e) => {
            let _ = writeln!(out, "unroutable: {e}");
        }
    }
    Ok(out)
}

fn cmd_sweep(opts: &Opts) -> Result<String, CliError> {
    let max_d = opts.usize_or("max-d", 8)?;
    let max_g = opts.usize_or("max-g", 8)?;
    let seed = opts.u64_or("seed", 42)?;
    if max_d == 0 || max_g == 0 {
        return Err(err("--max-d and --max-g must be positive"));
    }
    if max_d * max_g > 4096 {
        return Err(err("sweep too large; keep max-d * max-g <= 4096"));
    }
    let mut rng = SplitMix64::new(seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>4} {:>6} {:>7} {:>10} {:>9}",
        "d", "g", "n", "slots", "theorem2", "verified"
    );
    for d in 1..=max_d {
        for g in 1..=max_g {
            let t = PopsTopology::new(d, g);
            let pi = random_permutation(t.n(), &mut rng);
            let plan = RoutingEngine::with_colorer(t, ColorerKind::default()).plan_theorem2(&pi);
            let mut sim = Simulator::with_unit_packets(t);
            sim.execute_schedule(&plan.schedule)
                .map_err(|(slot, e)| err(format!("slot {slot}: {e}")))?;
            sim.verify_delivery(pi.as_slice())
                .map_err(|e| err(format!("misdelivery: {e}")))?;
            let slots = plan.schedule.slot_count();
            let _ = writeln!(
                out,
                "{:>4} {:>4} {:>6} {:>7} {:>10} {:>9}",
                d,
                g,
                t.n(),
                slots,
                theorem2_slots(d, g),
                if slots == theorem2_slots(d, g) {
                    "ok"
                } else {
                    "MISMATCH"
                }
            );
        }
    }
    Ok(out)
}

/// `pops batch`: the CLI fast path onto [`route_batch_with`] — routes a
/// batch of random permutations with explicit thread and artefact control,
/// so scripted throughput runs stop paying the per-plan artefact clones.
fn cmd_batch(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    let kind = engine(opts)?;
    let count = opts.usize_or("count", 64)?;
    if count == 0 {
        return Err(err("--count must be positive"));
    }
    if count.checked_mul(t.n()).is_none_or(|total| total > 1 << 26) {
        return Err(err("batch too large; keep count * n <= 2^26"));
    }
    let seed = opts.u64_or("seed", 42)?;
    let threads = match opts.usize_or("threads", 0)? {
        0 => None, // auto: available parallelism
        n => NonZeroUsize::new(n),
    };
    let emit_artefacts = !opts.flag("no-artefacts");
    let mut rng = SplitMix64::new(seed);
    let perms: Vec<_> = (0..count)
        .map(|_| random_permutation(t.n(), &mut rng))
        .collect();

    let start = Instant::now();
    let plans = route_batch_with(&perms, t, kind, threads, emit_artefacts);
    let elapsed = start.elapsed();

    // Referee spot-check: first and last plan execute and deliver.
    for idx in [0, count.saturating_sub(1)] {
        let (Some(plan), Some(perm)) = (plans.get(idx), perms.get(idx)) else {
            continue;
        };
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&plan.schedule)
            .map_err(|(slot, e)| err(format!("plan {idx} illegal at slot {slot}: {e}")))?;
        sim.verify_delivery(perm.as_slice())
            .map_err(|e| err(format!("plan {idx} misdelivery: {e}")))?;
    }

    let slots: usize = plans.iter().map(|p| p.schedule.slot_count()).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routed {count} random permutation(s) on {t} in {elapsed:.2?}"
    );
    let _ = writeln!(
        out,
        "threads: {}   artefacts: {}   engine: {}",
        threads.map_or("auto".to_string(), |n| n.to_string()),
        if emit_artefacts { "on" } else { "off" },
        kind.name()
    );
    let _ = writeln!(
        out,
        "throughput: {:.0} plans/s ({:.0} slots/s)",
        count as f64 / secs,
        slots as f64 / secs
    );
    let _ = writeln!(
        out,
        "spot-check: first and last schedules verified on the simulator"
    );
    Ok(out)
}

/// Parses a `--*-ms` option where 0 means "disabled".
fn timeout_ms(opts: &Opts, key: &str, default_ms: u64) -> Result<Option<Duration>, CliError> {
    Ok(match opts.u64_or(key, default_ms)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    })
}

/// Parses one `--topology DxG` value (e.g. `2x8`).
fn parse_topology_flag(value: &str) -> Result<(usize, usize), CliError> {
    let (d, g) = value
        .split_once(['x', 'X'])
        .ok_or_else(|| err(format!("--topology expects DxG (e.g. 4x4), got '{value}'")))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| err(format!("--topology '{value}': '{s}' is not an integer")))
    };
    let (d, g) = (parse(d)?, parse(g)?);
    if d == 0 || g == 0 {
        return Err(err(format!(
            "--topology '{value}': dimensions must be positive"
        )));
    }
    Ok((d, g))
}

/// Parses one `--fault DxG:c1,c2,...` value (e.g. `4x4:1,5`): an
/// operator-declared baseline fault set for one topology. Ids are
/// sorted, deduped, and bounds-checked against the g^2 couplers.
fn parse_fault_flag(value: &str) -> Result<((usize, usize), Vec<usize>), CliError> {
    let (shape, list) = value.split_once(':').ok_or_else(|| {
        err(format!(
            "--fault expects DxG:c1,c2,... (e.g. 4x4:1,5), got '{value}'"
        ))
    })?;
    let (d, g) = shape
        .split_once(['x', 'X'])
        .ok_or_else(|| err(format!("--fault '{value}': expected a DxG topology prefix")))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| err(format!("--fault '{value}': '{s}' is not an integer")))
    };
    let (d, g) = (parse(d)?, parse(g)?);
    if d == 0 || g == 0 {
        return Err(err(format!(
            "--fault '{value}': dimensions must be positive"
        )));
    }
    if d.checked_mul(g).is_none_or(|n| n > 1 << 20) {
        return Err(err(format!(
            "--fault '{value}': network too large (n > 2^20)"
        )));
    }
    let mut ids = list
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(parse)
        .collect::<Result<Vec<usize>, _>>()?;
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return Err(err(format!(
            "--fault '{value}': give at least one coupler id"
        )));
    }
    let couplers = g * g;
    for &c in &ids {
        if c >= couplers {
            return Err(err(format!(
                "--fault '{value}': coupler {c} out of range \
                 (POPS({d}, {g}) has {couplers} couplers)"
            )));
        }
    }
    Ok(((d, g), ids))
}

/// Parses a `--fault c1,c2,...` request-side value against one topology.
fn parse_request_faults(opts: &Opts, t: &PopsTopology) -> Result<Vec<usize>, CliError> {
    let Some(list) = opts.get("fault") else {
        return Ok(Vec::new());
    };
    let mut ids = list
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| err(format!("--fault: '{s}' is not an integer")))
        })
        .collect::<Result<Vec<usize>, _>>()?;
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return Err(err("--fault: give at least one coupler id"));
    }
    for &c in &ids {
        if c >= t.coupler_count() {
            return Err(err(format!(
                "--fault: coupler {c} out of range ({t} has {} couplers)",
                t.coupler_count()
            )));
        }
    }
    Ok(ids)
}

/// `pops serve`: the TCP/JSON-lines routing service. Prints the listening
/// address immediately (stdout, flushed) so scripts can scrape an
/// ephemeral port (`--port 0`), then blocks until a client sends a
/// shutdown op — at which point in-flight handlers are drained (joined),
/// so every accepted request gets its complete response before the
/// process exits; the returned string is the exit summary.
///
/// One process serves **many topologies**: `--d`/`--g` name the default
/// shape, repeated `--topology DxG` flags pre-warm (and pin) more, and
/// requests may select any shape up to the `--max-topologies` LRU bound.
fn cmd_serve(opts: &Opts) -> Result<String, CliError> {
    let t = shape(opts)?;
    // The service defaults to the alternating-path colourer — the one with
    // the zero-allocation warm-engine implementation — unlike the one-shot
    // commands, which keep the legacy euler default.
    let kind = match opts.get("engine") {
        None => ColorerKind::AlternatingPath,
        Some(_) => engine(opts)?,
    };
    let port = opts.usize_or("port", 0)?;
    if port > u16::MAX as usize {
        return Err(err("--port must be at most 65535"));
    }
    let defaults = ServiceConfig::default();
    let shards = opts.usize_or("shards", defaults.shards)?;
    if shards == 0 {
        return Err(err("--shards must be positive"));
    }
    let cache_capacity = opts.usize_or("cache", defaults.cache_capacity)?;
    let phase_cache_capacity = opts.usize_or("phase-cache", defaults.phase_cache_capacity)?;
    let cache_shards = opts.usize_or("cache-shards", defaults.cache_shards)?;
    if cache_shards == 0 {
        return Err(err("--cache-shards must be positive"));
    }
    let cache_dir = opts.get("cache-dir").map(std::path::PathBuf::from);
    let max_in_flight = opts.usize_or("max-in-flight", defaults.max_in_flight)?;
    let server_defaults = ServerConfig::default();
    // Baseline fault sets: operator-declared failed couplers the server
    // composes into every theorem2/faults route for their topology. A
    // baseline that disconnects a group pair is refused at boot — such a
    // server could never answer a route request for that shape.
    let mut baseline_faults: Vec<((usize, usize), Vec<usize>)> = Vec::new();
    for value in opts.get_all("fault") {
        let ((d, g), ids) = parse_fault_flag(value)?;
        match baseline_faults
            .iter_mut()
            .find(|((bd, bg), _)| (*bd, *bg) == (d, g))
        {
            Some((_, existing)) => {
                existing.extend(ids);
                existing.sort_unstable();
                existing.dedup();
            }
            None => baseline_faults.push(((d, g), ids)),
        }
    }
    // Repeated --fault flags for one shape union; the union is what must
    // stay routable, so validate after merging.
    for ((d, g), ids) in &baseline_faults {
        let topology = PopsTopology::new(*d, *g);
        let mut set = FaultSet::none(&topology);
        for &c in ids.iter().filter(|&&c| c < topology.coupler_count()) {
            set.fail_coupler(c);
        }
        if !set.fully_routable(&topology) {
            return Err(err(format!(
                "--fault {d}x{g}:... disconnects POPS({d}, {g}); a baseline \
                 fault set must leave every group pair routable"
            )));
        }
    }
    // Defaults come from ServerConfig::default() (one source of truth);
    // 0 on the command line disables a timeout.
    let as_ms = |t: Option<Duration>| t.map_or(0, |d| d.as_millis() as u64);
    let server_config = ServerConfig {
        baseline_faults,
        read_timeout: timeout_ms(opts, "read-timeout-ms", as_ms(server_defaults.read_timeout))?,
        write_timeout: timeout_ms(
            opts,
            "write-timeout-ms",
            as_ms(server_defaults.write_timeout),
        )?,
        max_line_bytes: opts.usize_or("max-line-bytes", server_defaults.max_line_bytes)?,
        max_connections: opts.usize_or("max-conns", server_defaults.max_connections)?,
        tcp_nodelay: opts.flag("nodelay"),
        cache_dir: cache_dir.clone(),
        max_batch_items: opts.usize_or("max-batch-items", server_defaults.max_batch_items)?,
        max_batch_topologies: opts
            .usize_or("max-batch-topologies", server_defaults.max_batch_topologies)?,
        // All four observability/overload knobs are presence-gated: absent
        // flags keep the ServerConfig defaults (everything off), so the
        // serving hot path is byte-identical to previous releases.
        overload_watermark: opts
            .get("overload-watermark")
            .map(|_| opts.usize_or("overload-watermark", 0))
            .transpose()?,
        quota_rps: opts
            .get("quota-rps")
            .map(|_| opts.u64_or("quota-rps", 0))
            .transpose()?,
        quota_burst: opts
            .get("quota-burst")
            .map(|_| opts.u64_or("quota-burst", 0))
            .transpose()?,
        slow_threshold: opts
            .get("slow-ms")
            .map(|_| opts.u64_or("slow-ms", 0).map(Duration::from_millis))
            .transpose()?,
        metrics_port: match opts.get("metrics-port") {
            None => None,
            Some(_) => {
                let port = opts.usize_or("metrics-port", 0)?;
                if port == 0 || port > u16::MAX as usize {
                    return Err(err(
                        "--metrics-port must be 1..=65535 (an ephemeral sidecar \
                         port would not be discoverable by scrapers)",
                    ));
                }
                Some(port as u16)
            }
        },
        record_path: opts.get("record").map(std::path::PathBuf::from),
    };
    if server_config.quota_rps == Some(0) {
        return Err(err("--quota-rps must be positive"));
    }
    if server_config.quota_burst.is_some() && server_config.quota_rps.is_none() {
        return Err(err("--quota-burst needs --quota-rps"));
    }
    if server_config.quota_burst == Some(0) {
        return Err(err("--quota-burst must be positive"));
    }
    if server_config.max_line_bytes == 0 {
        return Err(err("--max-line-bytes must be positive"));
    }
    if server_config.max_connections == 0 {
        return Err(err("--max-conns must be positive"));
    }
    if server_config.max_batch_items == 0 {
        return Err(err("--max-batch-items must be positive"));
    }
    if server_config.max_batch_topologies == 0 {
        return Err(err("--max-batch-topologies must be positive"));
    }
    let mut prewarm: Vec<(usize, usize)> = opts
        .get_all("topology")
        .iter()
        .map(|v| parse_topology_flag(v))
        .collect::<Result<_, _>>()?;
    prewarm.sort_unstable();
    prewarm.dedup();
    let router_defaults = TopologyRouterConfig::default();
    let max_topologies = opts.usize_or("max-topologies", router_defaults.max_topologies)?;
    // The default topology plus every distinct pre-warm must fit the
    // registry (repeated or default-equal --topology flags are harmless).
    let pinned = 1 + prewarm
        .iter()
        .filter(|&&(d, g)| (d, g) != (t.d(), t.g()))
        .count();
    if max_topologies < pinned {
        return Err(err(format!(
            "--max-topologies {max_topologies} is too small for {pinned} pinned \
             topolog{} (--d/--g plus every --topology)",
            if pinned == 1 { "y" } else { "ies" }
        )));
    }
    let listener = TcpListener::bind(("127.0.0.1", port as u16))
        .map_err(|e| err(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| err(format!("cannot read bound address: {e}")))?;
    let router = Arc::new(TopologyRouter::new(
        t,
        TopologyRouterConfig {
            service: ServiceConfig {
                shards,
                cache_capacity,
                phase_cache_capacity,
                cache_shards,
                max_in_flight,
                colorer: kind,
            },
            max_topologies,
            ..router_defaults
        },
    ));
    for &(d, g) in &prewarm {
        router
            .pin(d, g)
            .map_err(|e| err(format!("cannot pre-warm --topology {d}x{g}: {e}")))?;
    }
    // Warm start: restore previous spills before accepting traffic. A
    // missing or empty directory is a cold start; files for topologies
    // this server does not pin, or corrupt files, are skipped with a
    // warning — a stale --cache-dir must not turn the warm-start
    // optimization into a startup outage.
    let mut warm_note = String::new();
    if let Some(dir) = &cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| err(format!("cannot create --cache-dir {}: {e}", dir.display())))?;
        let report = router
            .load_dir(dir)
            .map_err(|e| err(format!("cannot read --cache-dir {}: {e}", dir.display())))?;
        for (path, reason) in &report.skipped {
            eprintln!("warning: skipping cache file {}: {reason}", path.display());
        }
        if !report.loaded.is_empty() {
            warm_note = format!(
                ", warm-started: {} plan(s) + {} phase(s) across {} topolog{}",
                report.l1_entries(),
                report.l2_entries(),
                report.loaded.len(),
                if report.loaded.len() == 1 { "y" } else { "ies" },
            );
        } else if !report.skipped.is_empty() {
            warm_note = ", cache files skipped (see warnings), starting cold".into();
        }
    }
    let shapes: Vec<String> = router
        .services()
        .iter()
        .map(|(topology, _)| format!("{}x{}", topology.d(), topology.g()))
        .collect();
    let fmt_ms =
        |t: Option<Duration>| t.map_or("off".to_string(), |d| format!("{}ms", d.as_millis()));
    let mut obs_note = String::new();
    if let Some(w) = server_config.overload_watermark {
        let _ = write!(obs_note, ", watermark {w}");
    }
    if let Some(rps) = server_config.quota_rps {
        let burst = server_config.quota_burst.unwrap_or(rps).max(1);
        let _ = write!(obs_note, ", quota {rps}/s (burst {burst})");
    }
    if let Some(slow) = server_config.slow_threshold {
        let _ = write!(obs_note, ", slow log {}ms", slow.as_millis());
    }
    if let Some(port) = server_config.metrics_port {
        let _ = write!(obs_note, ", metrics sidecar on port {port}");
    }
    if let Some(path) = &server_config.record_path {
        let _ = write!(obs_note, ", recording to {}", path.display());
    }
    if !server_config.baseline_faults.is_empty() {
        let rendered: Vec<String> = server_config
            .baseline_faults
            .iter()
            .map(|((d, g), ids)| {
                let ids: Vec<String> = ids.iter().map(usize::to_string).collect();
                format!("{d}x{g}:{}", ids.join(","))
            })
            .collect();
        let _ = write!(obs_note, ", baseline faults [{}]", rendered.join(" "));
    }
    println!(
        "pops-service listening on {addr} ({t} default, topologies [{}] of max {max_topologies}, \
         {shards} shard(s), cache {cache_capacity}, \
         phase cache {phase_cache_capacity}, {cache_shards} cache shard(s), \
         max in-flight {max_in_flight}, engine {}, read timeout {}, write timeout {}, \
         line cap {} bytes, max conns {}, batch cap {} item(s){obs_note}{warm_note})",
        shapes.join(", "),
        kind.name(),
        fmt_ms(server_config.read_timeout),
        fmt_ms(server_config.write_timeout),
        server_config.max_line_bytes,
        server_config.max_connections,
        server_config.max_batch_items,
    );
    let _ = std::io::stdout().flush();
    let summary = serve_router(listener, router.clone(), server_config)
        .map_err(|e| err(format!("serve failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "shutdown after {} connection(s), {} request(s); all handlers drained",
        summary.connections, summary.requests
    );
    // Spill every topology on the way out so the next boot starts warm.
    if let Some(dir) = &cache_dir {
        match router.save_all(dir) {
            Ok(written) => {
                for (topology, saved) in &written {
                    let _ = writeln!(
                        out,
                        "spilled {} plan(s) + {} phase(s) to {}",
                        saved.l1_entries,
                        saved.l2_entries,
                        pops_service::persist::topology_file_path(dir, topology.d(), topology.g())
                            .display()
                    );
                }
            }
            Err(e) => {
                let _ = writeln!(out, "cache spill to {} failed: {e}", dir.display());
            }
        }
    }
    // Per-topology traffic lines, then the fleet-wide aggregate.
    for (topology, service) in router.services() {
        let snap = service.metrics();
        let _ = writeln!(
            out,
            "{topology}: {} request(s), {} hit(s), {} miss(es), {} error(s)",
            snap.requests(),
            snap.hits,
            snap.misses,
            snap.errors
        );
    }
    let _ = write!(out, "{}", summary.metrics);
    Ok(out)
}

/// `pops request`: a client for `pops serve`. Resolves the permutation
/// against the server's own topology (via the `info` op), routes it, and
/// re-verifies the returned schedule on the local simulator referee. A
/// client-side timeout (default 30 s, `--timeout-ms`, 0 disables) bounds
/// the connect and every read/write, so a hung server cannot hang us.
fn cmd_request(opts: &Opts) -> Result<String, CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| err("--addr HOST:PORT is required"))?;
    let timeout = timeout_ms(opts, "timeout-ms", 30_000)?;
    let mut client = ServiceClient::connect_with_timeout(addr, timeout)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    // --binary upgrades the connection before the first real request;
    // every op below then rides the length-prefixed framing.
    if opts.flag("binary") {
        client
            .set_format(pops_service::WireFormat::Binary)
            .map_err(|e| err(format!("binary negotiation failed: {e}")))?;
    }

    if opts.flag("shutdown") {
        client
            .shutdown()
            .map_err(|e| err(format!("shutdown failed: {e}")))?;
        return Ok(format!("server at {addr} acknowledged shutdown\n"));
    }
    if opts.flag("stats") {
        let stats = client.stats().map_err(|e| err(e.to_string()))?;
        let count = |name: &str| stats.get(name).and_then(Json::as_u64).unwrap_or(0);
        let level = |name: &str, field: &str| {
            stats
                .get("cache")
                .and_then(|c| c.get(name))
                .and_then(|l| l.get(field))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hits: {}   misses: {}   errors: {}   slots emitted: {}",
            count("hits"),
            count("misses"),
            count("errors"),
            count("slots_emitted")
        );
        let _ = writeln!(
            out,
            "L1 {}/{} entries   L2 (phases): {} hits, {} misses, {}/{} entries",
            level("l1", "entries"),
            level("l1", "capacity"),
            level("l2", "hits"),
            level("l2", "misses"),
            level("l2", "entries"),
            level("l2", "capacity"),
        );
        let _ = writeln!(out, "raw: {stats}");
        return Ok(out);
    }
    if let Some(action) = opts.get("cache") {
        let doc = client.cache_op(action).map_err(|e| err(e.to_string()))?;
        let mut out = String::new();
        match action {
            "save" | "load" => {
                let count = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "cache {action}: {} plan(s) + {} phase(s) at {addr} \
                     ({} file(s) skipped)",
                    count("l1_entries"),
                    count("l2_entries"),
                    count("skipped_files"),
                );
            }
            _ => {
                let _ = writeln!(out, "cache stats from {addr}: {doc}");
            }
        }
        return Ok(out);
    }
    if let Some(path) = opts.get("batch-file") {
        return request_batch_file(&mut client, addr, path);
    }

    let info = client.info().map_err(|e| err(e.to_string()))?;
    // --d/--g select a topology on a multi-topology server; absent flags
    // fall back to the server's default shape, field by field.
    let d = opts.usize_or("d", info.d)?;
    let g = opts.usize_or("g", info.g)?;
    if d == 0 || g == 0 {
        return Err(err("--d and --g must be positive"));
    }
    // Same size cap as every other subcommand — without it, huge values
    // would overflow-panic in PopsTopology::new or try to build a
    // multi-GB permutation locally before the server could refuse.
    if d.checked_mul(g).is_none_or(|n| n > 1 << 20) {
        return Err(err("network too large (n > 2^20)"));
    }
    let t = PopsTopology::new(d, g);
    let pi = spec::resolve(opts, d, g)?;
    let kind = opts.get("kind").unwrap_or("theorem2");
    let faults = parse_request_faults(opts, &t)?;
    let reply = if faults.is_empty() {
        client.route_permutation_on(kind, &pi, Some((d, g)))
    } else {
        client.route_permutation_with_faults(kind, &pi, Some((d, g)), &faults)
    }
    .map_err(|e| err(e.to_string()))?;

    // Referee: the returned schedule must execute and deliver locally —
    // with the same couplers failed, so a degraded plan that leans on
    // dead hardware is caught right here.
    let mut sim = if faults.is_empty() {
        Simulator::with_unit_packets(t)
    } else {
        let mut set = FaultSet::none(&t);
        for &c in faults.iter().filter(|&&c| c < t.coupler_count()) {
            set.fail_coupler(c);
        }
        Simulator::with_unit_packets_and_faults(t, set)
    };
    sim.execute_schedule(&reply.schedule)
        .map_err(|(slot, e)| err(format!("returned schedule illegal at slot {slot}: {e}")))?;
    sim.verify_delivery(pi.as_slice())
        .map_err(|e| err(format!("returned schedule misdelivers: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{t} served by {addr} ({} shard(s), cache {}, {} topolog{} resident)",
        info.shards,
        info.cache_capacity,
        info.topologies.len(),
        if info.topologies.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    let _ = writeln!(
        out,
        "verified {}-slot schedule (kind {kind}, cache {}, {} µs server-side{})",
        reply.slots,
        if reply.cache_hit { "hit" } else { "miss" },
        reply.micros,
        if reply.degraded {
            ", degraded: planned around the fault set"
        } else {
            ""
        },
    );
    Ok(out)
}

/// Walks a dotted path into a stats document; absent fields read as 0 so
/// the watcher keeps working against older servers.
fn stats_field(doc: &Json, path: &[&str]) -> u64 {
    let mut node = Some(doc);
    for key in path {
        node = node.and_then(|n| n.get(key));
    }
    node.and_then(Json::as_u64).unwrap_or(0)
}

/// Renders one `pops stats` line. With a previous sample the line leads
/// with the deltas (plans/s over the elapsed window); without one it is a
/// point-in-time summary.
fn stats_watch_line(prev: Option<&Json>, cur: &Json, elapsed: Duration) -> String {
    let plans = |doc: &Json| stats_field(doc, &["hits"]) + stats_field(doc, &["misses"]);
    let rate = |hits: u64, misses: u64| {
        if hits + misses == 0 {
            0.0
        } else {
            100.0 * hits as f64 / (hits + misses) as f64
        }
    };
    let (hits, misses) = (stats_field(cur, &["hits"]), stats_field(cur, &["misses"]));
    let errors = stats_field(cur, &["errors"]);
    let sheds = stats_field(cur, &["sheds", "total"]);
    let conns = stats_field(cur, &["connections", "active"]);
    match prev {
        None => format!(
            "plans {}   hit rate {:.1}%   errors {errors}   sheds {sheds}   conns {conns}",
            plans(cur),
            rate(hits, misses),
        ),
        Some(prev) => {
            let d_plans = plans(cur).saturating_sub(plans(prev));
            let d_hits = hits.saturating_sub(stats_field(prev, &["hits"]));
            let d_misses = misses.saturating_sub(stats_field(prev, &["misses"]));
            let d_errors = errors.saturating_sub(stats_field(prev, &["errors"]));
            let d_sheds = sheds.saturating_sub(stats_field(prev, &["sheds", "total"]));
            let secs = elapsed.as_secs_f64().max(1e-9);
            format!(
                "plans +{d_plans} ({:.1}/s)   hit rate {:.1}%   errors +{d_errors}   \
                 sheds +{d_sheds}   conns {conns}",
                d_plans as f64 / secs,
                rate(d_hits, d_misses),
            )
        }
    }
}

/// `pops stats`: a one-line operational summary of a running server.
/// Point-in-time by default; `--watch N` keeps the connection open and
/// prints a **delta** line every N seconds (plans/s, windowed hit rate,
/// shed and error increments) until interrupted — `--samples M` bounds
/// the line count for scripting.
fn cmd_stats(opts: &Opts) -> Result<String, CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| err("--addr HOST:PORT is required"))?;
    let timeout = timeout_ms(opts, "timeout-ms", 30_000)?;
    let mut client = ServiceClient::connect_with_timeout(addr, timeout)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    let interval = match opts.get("watch") {
        None => None,
        Some(_) => Some(Duration::from_secs(opts.u64_or("watch", 2)?)),
    };
    let samples = opts.u64_or("samples", 0)?;
    let Some(interval) = interval else {
        let doc = client.stats().map_err(|e| err(e.to_string()))?;
        return Ok(format!(
            "{}\n",
            stats_watch_line(None, &doc, Duration::ZERO)
        ));
    };
    watch_stats(
        || client.stats().map_err(|e| err(e.to_string())),
        interval,
        samples,
        &mut std::io::stdout(),
    )
}

/// The `--watch` loop, factored over a `fetch` closure and an output sink
/// so it is unit-testable. All but the final sample line stream to `sink`
/// as they arrive (a watch can run for hours; the returned string only
/// surfaces after the loop ends); the **final** line is returned as the
/// command output — exactly one line with one trailing newline, never an
/// empty string for `main` to print as a stray blank line. With
/// `samples == 0` the loop runs until `fetch` fails (interrupt or server
/// shutdown).
fn watch_stats<F>(
    mut fetch: F,
    interval: Duration,
    samples: u64,
    sink: &mut dyn std::io::Write,
) -> Result<String, CliError>
where
    F: FnMut() -> Result<Json, CliError>,
{
    let mut prev: Option<Json> = None;
    let mut last = Instant::now();
    let mut taken = 0u64;
    loop {
        let doc = fetch()?;
        let now = Instant::now();
        let line = stats_watch_line(prev.as_ref(), &doc, now - last);
        last = now;
        prev = Some(doc);
        taken += 1;
        if samples != 0 && taken >= samples {
            return Ok(format!("{line}\n"));
        }
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
        std::thread::sleep(interval);
    }
}

/// `pops record`: a recording proxy. Listens locally, forwards every
/// byte to the upstream server, and tees each decodable route/batch/cache
/// request to an append-only JSONL trace (see `pops replay`). Responses
/// are pumped back raw — the proxy never alters wire behavior. The proxy
/// stops when a shutdown op passes through it.
fn cmd_record(opts: &Opts) -> Result<String, CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| err("--addr HOST:PORT (the upstream server) is required"))?;
    let out_path = opts
        .get("out")
        .ok_or_else(|| err("--out FILE (the trace to append to) is required"))?;
    let port = opts.usize_or("port", 0)?;
    if port > u16::MAX as usize {
        return Err(err("--port must be at most 65535"));
    }
    let upstream = addr
        .to_socket_addrs()
        .map_err(|e| err(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| err(format!("{addr} resolves to no address")))?;
    // Learn the upstream's default shape: dense binary batch items with
    // the (0, 0) "server default" shape are recorded against it.
    let timeout = timeout_ms(opts, "timeout-ms", 30_000)?;
    let mut probe = ServiceClient::connect_with_timeout(addr, timeout)
        .map_err(|e| err(format!("cannot connect to upstream {addr}: {e}")))?;
    let info = probe
        .info()
        .map_err(|e| err(format!("upstream info failed: {e}")))?;
    drop(probe);
    let default = PopsTopology::new(info.d, info.g);
    let recorder = Arc::new(
        TraceRecorder::create(std::path::Path::new(out_path))
            .map_err(|e| err(format!("cannot record to {out_path}: {e}")))?,
    );
    let listener = TcpListener::bind(("127.0.0.1", port as u16))
        .map_err(|e| err(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| err(format!("cannot read bound address: {e}")))?;
    println!(
        "pops-record listening on {local}, forwarding to {addr} ({default} default), \
         tracing to {out_path}"
    );
    let _ = std::io::stdout().flush();
    let summary = record_proxy(listener, upstream, default, recorder)
        .map_err(|e| err(format!("record proxy failed: {e}")))?;
    let dropped = if summary.dropped == 0 {
        String::new()
    } else {
        format!(" ({} dropped)", summary.dropped)
    };
    Ok(format!(
        "recorded {} request(s) across {} connection(s) to {out_path}{dropped}\n",
        summary.recorded, summary.connections,
    ))
}

/// Parses an optional floating-point flag.
fn f64_flag(opts: &Opts, key: &str) -> Result<Option<f64>, CliError> {
    match opts.get(key) {
        None => Ok(None),
        Some(value) => value
            .trim()
            .parse::<f64>()
            .map(Some)
            .map_err(|_| err(format!("--{key} must be a number, got '{value}'"))),
    }
}

/// `pops replay`: drives a recorded (`--trace`) or synthetic (`--synth`)
/// trace back at a live server from concurrent client threads, preserving
/// per-request topology, faults, and wire format, and re-refereeing every
/// returned schedule on the local simulator. `--soak` loops the trace
/// under a duration bound and applies SLO gates (verification failures
/// and hard failures default to zero tolerated); any breach prints the
/// report and exits non-zero.
fn cmd_replay(opts: &Opts) -> Result<String, CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| err("--addr HOST:PORT is required"))?;
    let soak = opts.flag("soak");
    let trace = match (opts.get("trace"), opts.get("synth")) {
        (Some(_), Some(_)) => return Err(err("give --trace or --synth, not both")),
        (Some(path), None) => read_trace(std::path::Path::new(path))
            .map_err(|e| err(format!("cannot load --trace {path}: {e}")))?,
        (None, Some(spec)) => {
            let count = opts.usize_or("count", 256)?;
            let seed = opts.u64_or("seed", 42)?;
            synth_trace(spec, count, seed).map_err(err)?
        }
        (None, None) => return Err(err("give --trace FILE or --synth mixed:DxG[,DxG...]")),
    };
    let rate = f64_flag(opts, "rate-multiplier")?.unwrap_or(1.0);
    let clients = opts.usize_or("clients", 4)?;
    let duration = match opts.get("duration") {
        Some(_) => {
            let secs = opts.u64_or("duration", 0)?;
            if secs == 0 {
                return Err(err("--duration must be positive"));
            }
            Some(Duration::from_secs(secs))
        }
        // Soak mode needs a bound to terminate; 20 s is the smoke default.
        None if soak => Some(Duration::from_secs(20)),
        None => None,
    };
    let loop_trace = opts.flag("loop") || soak;
    if loop_trace && duration.is_none() {
        return Err(err("--loop needs --duration SECS"));
    }
    let gates = SloGates {
        p99_ms: f64_flag(opts, "slo-p99-ms")?,
        max_shed_rate: f64_flag(opts, "slo-shed-pct")?.map(|pct| pct / 100.0),
        max_verify_failures: match opts.get("slo-verify-failures") {
            Some(_) => Some(opts.u64_or("slo-verify-failures", 0)?),
            None if soak => Some(0),
            None => None,
        },
        max_failures: match opts.get("slo-failures") {
            Some(_) => Some(opts.u64_or("slo-failures", 0)?),
            None if soak => Some(0),
            None => None,
        },
    };
    let gated = gates.p99_ms.is_some()
        || gates.max_shed_rate.is_some()
        || gates.max_verify_failures.is_some()
        || gates.max_failures.is_some();
    let replay_opts = ReplayOptions {
        clients,
        rate_multiplier: rate,
        duration,
        loop_trace,
        verify: !opts.flag("no-verify"),
        timeout: timeout_ms(opts, "timeout-ms", 10_000)?,
    };
    println!(
        "replaying {} record(s) against {addr} (x{rate} rate, {clients} client(s){})",
        trace.len(),
        if loop_trace { ", looping" } else { "" },
    );
    let _ = std::io::stdout().flush();
    let report = run_replay(addr, &trace, &replay_opts).map_err(err)?;
    let mut out = report.render();
    let breaches = gates.breaches(&report);
    if breaches.is_empty() {
        if gated {
            let _ = writeln!(out, "SLO gates: pass");
        }
        return Ok(out);
    }
    for breach in &breaches {
        let _ = writeln!(out, "SLO breach: {breach}");
    }
    // The report still belongs on stdout; the breach summary is the error.
    print!("{out}");
    let _ = std::io::stdout().flush();
    Err(err(format!("SLO gates breached: {}", breaches.join("; "))))
}

/// `pops request --batch-file FILE`: reads a JSON-lines file — each
/// non-empty line `{"perm":[...]}` with optional `"d"`/`"g"` shape fields
/// and an optional `"faults":[...]` coupler-id list — sends everything as
/// **one** `{"op":"batch"}` request (schedules included), re-verifies
/// every returned schedule on the local simulator referee for its own
/// topology (with that item's faults injected), and prints the summary.
///
/// ```text
/// $ cat batch.jsonl
/// {"perm":[15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]}
/// {"d":2,"g":8,"perm":[15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]}
/// $ pops request --addr 127.0.0.1:7077 --batch-file batch.jsonl
/// batch of 2 item(s) served by 127.0.0.1:7077: 2 routed, 0 failed, ...
/// ```
fn request_batch_file(
    client: &mut ServiceClient,
    addr: &str,
    path: &str,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read --batch-file {path}: {e}")))?;
    let mut items = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| err(format!("{path}:{}: {e}", line_no + 1)))?;
        let perm = doc
            .get("perm")
            .and_then(Json::as_arr)
            .ok_or_else(|| {
                err(format!(
                    "{path}:{}: needs an array field 'perm'",
                    line_no + 1
                ))
            })?
            .iter()
            .map(|v| {
                v.as_usize().ok_or_else(|| {
                    err(format!(
                        "{path}:{}: 'perm' entries must be integers",
                        line_no + 1
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pi = pops_permutation::Permutation::new(perm)
            .map_err(|e| err(format!("{path}:{}: {e}", line_no + 1)))?;
        let shape = match (
            doc.get("d").and_then(Json::as_usize),
            doc.get("g").and_then(Json::as_usize),
        ) {
            (None, None) => None,
            (Some(d), Some(g)) => Some((d, g)),
            _ => {
                return Err(err(format!(
                    "{path}:{}: give both 'd' and 'g', or neither",
                    line_no + 1
                )))
            }
        };
        let faults = match doc.get("faults") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| {
                    err(format!(
                        "{path}:{}: 'faults' must be an array of coupler ids",
                        line_no + 1
                    ))
                })?
                .iter()
                .map(|v| {
                    v.as_usize().ok_or_else(|| {
                        err(format!(
                            "{path}:{}: 'faults' entries must be integers",
                            line_no + 1
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        items.push(BatchItem { pi, shape, faults });
    }
    if items.is_empty() {
        return Err(err(format!("--batch-file {path} holds no items")));
    }
    // Ask for schedule bodies so every item can be refereed locally.
    let reply = client.batch(&items, true).map_err(|e| err(e.to_string()))?;

    let mut out = String::new();
    let mut verified = 0usize;
    for (index, (item, result)) in items.iter().zip(&reply.items).enumerate() {
        match result {
            Err(e) => {
                let _ = writeln!(out, "item {index} failed ({}): {}", e.kind, e.message);
            }
            Ok(routed) => {
                let t = PopsTopology::new(routed.d, routed.g);
                // Degraded items are refereed with their own faults down.
                let mut sim = if item.faults.is_empty() {
                    Simulator::with_unit_packets(t)
                } else {
                    let mut set = FaultSet::none(&t);
                    for &c in item.faults.iter().filter(|&&c| c < t.coupler_count()) {
                        set.fail_coupler(c);
                    }
                    Simulator::with_unit_packets_and_faults(t, set)
                };
                sim.execute_schedule(&routed.schedule)
                    .map_err(|(slot, e)| {
                        err(format!(
                            "item {index}: returned schedule illegal at slot {slot}: {e}"
                        ))
                    })?;
                sim.verify_delivery(item.pi.as_slice()).map_err(|e| {
                    err(format!("item {index}: returned schedule misdelivers: {e}"))
                })?;
                verified += 1;
            }
        }
    }
    let s = &reply.summary;
    let _ = writeln!(
        out,
        "batch of {} item(s) served by {addr}: {} routed, {} failed, {} slot(s), \
         {} topolog{}, {} µs server-side",
        s.items,
        s.routed,
        s.failed,
        s.slots,
        s.topologies.len(),
        if s.topologies.len() == 1 { "y" } else { "ies" },
        s.micros,
    );
    let degraded = reply
        .items
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|i| i.degraded))
        .count();
    let _ = writeln!(
        out,
        "verified {verified} returned schedule(s) on the simulator referee\
         {}",
        if degraded == 0 {
            String::new()
        } else {
            format!(" ({degraded} degraded, refereed with their faults down)")
        },
    );
    Ok(out)
}

fn cmd_collectives(opts: &Opts) -> Result<String, CliError> {
    use pops_collectives::cost;
    let t = shape(opts)?;
    let mut out = String::new();
    let _ = writeln!(out, "collective slot costs on {t} (n = {}):", t.n());
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>12} {:>8}",
        "collective", "slots", "lower bound", "slack"
    );
    let rows: [(&str, usize, usize); 7] = [
        (
            "broadcast",
            cost::broadcast_slots(&t),
            cost::broadcast_lower_bound(&t),
        ),
        (
            "scatter",
            cost::scatter_slots(&t),
            cost::scatter_lower_bound(&t),
        ),
        (
            "gather",
            cost::gather_slots(&t),
            cost::gather_lower_bound(&t),
        ),
        (
            "all-gather",
            cost::all_gather_slots(&t),
            cost::all_gather_lower_bound(&t),
        ),
        (
            "barrier",
            cost::barrier_slots(&t),
            cost::barrier_lower_bound(&t),
        ),
        ("circular shift", cost::shift_slots(&t), 1),
        (
            "all-to-all",
            cost::all_to_all_slots(&t),
            cost::all_to_all_lower_bound(&t),
        ),
    ];
    for (name, slots, bound) in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>12} {:>8}",
            name,
            slots,
            bound,
            if slots == bound {
                "0".to_string()
            } else {
                format!("+{}", slots - bound)
            }
        );
    }
    let _ = writeln!(
        out,
        "(costs are exact slot counts of the pops-collectives schedules;\n\
         bounds follow from the one-send/one-receive/g^2-couplers machine model)"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<String, CliError> {
        run(&Opts::parse(words.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn help_lists_all_commands() {
        let out = run_words(&["help"]).unwrap();
        for cmd in [
            "topology", "route", "bounds", "optimal", "faults", "sweep", "batch", "serve",
            "request", "stats",
        ] {
            assert!(out.contains(cmd), "missing {cmd}");
        }
        for flag in [
            "--overload-watermark",
            "--quota-rps",
            "--slow-ms",
            "--metrics-port",
            "--watch",
            "--fault DxG:c1,c2,...",
            "--fault c1,c2,...",
        ] {
            assert!(out.contains(flag), "missing {flag}");
        }
    }

    #[test]
    fn empty_command_prints_help() {
        assert!(run_words(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_suggests_help() {
        assert!(run_words(&["frobnicate"])
            .unwrap_err()
            .0
            .contains("pops help"));
    }

    #[test]
    fn topology_renders() {
        let out = run_words(&["topology", "--d", "3", "--g", "2"]).unwrap();
        assert!(out.contains("c(1, 0)") || out.contains("c(1,0)"), "{out}");
        assert!(out.contains("n = 6"));
    }

    #[test]
    fn route_reversal_reports_slots() {
        let out = run_words(&[
            "route",
            "--d",
            "4",
            "--g",
            "2",
            "--family",
            "reversal",
            "--compare",
        ])
        .unwrap();
        assert!(out.contains("routed in 4 slot(s)"), "{out}");
        assert!(out.contains("delivery verified"));
        assert!(out.contains("direct (single-hop)"));
    }

    #[test]
    fn route_schedule_flag_prints_slots() {
        let out = run_words(&[
            "route",
            "--d",
            "2",
            "--g",
            "2",
            "--family",
            "reversal",
            "--schedule",
        ])
        .unwrap();
        assert!(out.contains("slot"), "{out}");
    }

    #[test]
    fn route_gantt_renders_grid() {
        let out = run_words(&[
            "route", "--d", "4", "--g", "4", "--family", "reversal", "--gantt",
        ])
        .unwrap();
        assert!(out.contains("coupler occupancy"), "{out}");
        assert!(out.contains("|##|"));
    }

    #[test]
    fn route_explicit_perm() {
        let out = run_words(&["route", "--d", "1", "--g", "4", "--perm", "1,2,3,0"]).unwrap();
        assert!(out.contains("routed in 1 slot(s)"));
    }

    #[test]
    fn bounds_reports_corrected_prop2() {
        let out = run_words(&[
            "bounds",
            "--d",
            "3",
            "--g",
            "2",
            "--family",
            "group-rotation",
        ])
        .unwrap();
        assert!(
            out.contains("proposition 2 (corrected, inter-group): 3"),
            "{out}"
        );
        assert!(out.contains("theorem-2 upper bound                 : 4"));
    }

    #[test]
    fn optimal_finds_the_prop2_counterexample() {
        let out = run_words(&[
            "optimal",
            "--d",
            "3",
            "--g",
            "2",
            "--family",
            "group-rotation",
        ])
        .unwrap();
        assert!(out.contains("exact minimum (two-hop class) = 3"), "{out}");
    }

    #[test]
    fn optimal_rejects_large_n() {
        let err = run_words(&["optimal", "--d", "8", "--g", "8"]).unwrap_err();
        assert!(err.0.contains("exponential"));
    }

    #[test]
    fn faults_route_with_detour() {
        let out = run_words(&[
            "faults", "--d", "2", "--g", "3", "--family", "reversal", "--fail", "6",
        ])
        .unwrap();
        assert!(
            out.contains("delivery verified with the faults injected"),
            "{out}"
        );
    }

    #[test]
    fn faults_report_disconnection() {
        // Fail every coupler into group 1 on POPS(2, 3): c(1,0)=3, c(1,1)=4, c(1,2)=5.
        let out = run_words(&[
            "faults", "--d", "2", "--g", "3", "--family", "reversal", "--fail", "3,4,5",
        ])
        .unwrap();
        assert!(out.contains("unroutable"), "{out}");
    }

    #[test]
    fn faults_validate_coupler_ids() {
        let err = run_words(&[
            "faults", "--d", "2", "--g", "2", "--family", "reversal", "--fail", "99",
        ])
        .unwrap_err();
        assert!(err.0.contains("out of range"));
    }

    #[test]
    fn sweep_covers_the_grid() {
        let out = run_words(&["sweep", "--max-d", "3", "--max-g", "3"]).unwrap();
        assert_eq!(out.matches(" ok").count(), 9, "{out}");
        assert!(!out.contains("MISMATCH"));
    }

    #[test]
    fn collectives_table_shows_optimal_single_root_patterns() {
        let out = run_words(&["collectives", "--d", "4", "--g", "4"]).unwrap();
        assert!(out.contains("scatter"), "{out}");
        assert!(out.contains("broadcast                     1            1        0"));
        assert!(out.contains("all-to-all"));
        // n = 16: scatter is 15/15 → slack 0.
        assert!(out.contains("scatter                      15           15        0"));
    }

    #[test]
    fn collectives_requires_shape() {
        assert!(run_words(&["collectives"]).is_err());
    }

    #[test]
    fn families_lists_them() {
        let out = run_words(&["families"]).unwrap();
        assert!(out.contains("reversal"));
        assert!(out.contains("group-deranged"));
    }

    #[test]
    fn batch_routes_and_reports_throughput() {
        let out = run_words(&[
            "batch",
            "--d",
            "4",
            "--g",
            "4",
            "--count",
            "12",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("routed 12 random permutation(s)"), "{out}");
        assert!(out.contains("threads: 2"), "{out}");
        assert!(out.contains("artefacts: on"), "{out}");
        assert!(out.contains("verified on the simulator"), "{out}");
    }

    #[test]
    fn batch_no_artefacts_fast_path() {
        let out = run_words(&[
            "batch",
            "--d",
            "3",
            "--g",
            "3",
            "--count",
            "5",
            "--no-artefacts",
        ])
        .unwrap();
        assert!(out.contains("artefacts: off"), "{out}");
        assert!(out.contains("throughput:"), "{out}");
    }

    #[test]
    fn batch_validates_options() {
        assert!(run_words(&["batch", "--d", "2", "--g", "2", "--count", "0"]).is_err());
        assert!(run_words(&["batch", "--g", "2"]).is_err());
    }

    #[test]
    fn request_round_trips_through_a_live_server() {
        use pops_service::{serve, RoutingService, ServiceConfig};
        use std::net::TcpListener;
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let server = std::thread::spawn(move || serve(listener, service).unwrap());

        let out = run_words(&["request", "--addr", &addr, "--family", "reversal"]).unwrap();
        assert!(out.contains("verified 2-slot schedule"), "{out}");
        assert!(out.contains("cache miss"), "{out}");

        // Same request again: now a cache hit.
        let out = run_words(&["request", "--addr", &addr, "--family", "reversal"]).unwrap();
        assert!(out.contains("cache hit"), "{out}");

        let out = run_words(&["request", "--addr", &addr, "--stats"]).unwrap();
        assert!(out.contains("hits: 1"), "{out}");

        let out = run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
        assert!(out.contains("acknowledged shutdown"), "{out}");
        server.join().unwrap();
    }

    #[test]
    fn request_binary_round_trips_through_a_live_server() {
        use pops_service::{serve, RoutingService, ServiceConfig};
        use std::io::Write as _;
        use std::net::TcpListener;
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let server = std::thread::spawn(move || serve(listener, service).unwrap());

        // A --binary route is refereed locally like a JSON one.
        let out = run_words(&[
            "request", "--addr", &addr, "--family", "reversal", "--binary",
        ])
        .unwrap();
        assert!(out.contains("verified 2-slot schedule"), "{out}");

        // A --binary batch file streams item frames and is refereed too.
        let path = std::env::temp_dir().join(format!(
            "pops-cli-binary-batch-{}.jsonl",
            std::process::id()
        ));
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "{{\"perm\":[15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]}}").unwrap();
        drop(file);
        let out = run_words(&[
            "request",
            "--addr",
            &addr,
            "--batch-file",
            path.to_str().unwrap(),
            "--binary",
        ])
        .unwrap();
        assert!(out.contains("1 routed, 0 failed"), "{out}");
        let _ = std::fs::remove_file(&path);

        // Per-format counters surface in the raw stats document.
        let out = run_words(&["request", "--addr", &addr, "--stats"]).unwrap();
        assert!(out.contains("\"binary\""), "{out}");

        run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn request_cache_ops_round_trip_through_a_live_server() {
        use pops_service::{serve_with_config, RoutingService, ServerConfig, ServiceConfig};
        use std::net::TcpListener;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!(
            "pops-cli-cache-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let config = ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let server =
            std::thread::spawn(move || serve_with_config(listener, service, config).unwrap());

        run_words(&["request", "--addr", &addr, "--family", "reversal"]).unwrap();
        let out = run_words(&["request", "--addr", &addr, "--cache", "save"]).unwrap();
        assert!(out.contains("cache save: 1 plan(s)"), "{out}");
        let out = run_words(&["request", "--addr", &addr, "--cache", "load"]).unwrap();
        assert!(out.contains("cache load: 1 plan(s)"), "{out}");
        let out = run_words(&["request", "--addr", &addr, "--cache", "stats"]).unwrap();
        assert!(out.contains("\"l2\""), "{out}");
        let out = run_words(&["request", "--addr", &addr, "--stats"]).unwrap();
        assert!(out.contains("L2 (phases):"), "{out}");
        run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_warm_restart_round_trip() {
        // Boot a --cache-dir server, route once, shut down (spills), boot
        // again (loads), and the first repeated request must be a hit.
        let dir = std::env::temp_dir().join(format!(
            "pops-cli-warm-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let dir_str = dir.to_str().unwrap().to_string();
        let round = |expect: &str| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let port = listener.local_addr().unwrap().port().to_string();
            let addr = format!("127.0.0.1:{port}");
            drop(listener); // free the port for `serve`
            let dir_str = dir_str.clone();
            let server = std::thread::spawn(move || {
                run_words(&[
                    "serve",
                    "--d",
                    "4",
                    "--g",
                    "4",
                    "--port",
                    &port,
                    "--cache-dir",
                    &dir_str,
                ])
                .unwrap()
            });
            // The server prints its address before accepting; retry the
            // connect until it is up.
            let mut out = None;
            for _ in 0..200 {
                match run_words(&["request", "--addr", &addr, "--family", "reversal"]) {
                    Ok(o) => {
                        out = Some(o);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
            let out = out.expect("server never came up");
            assert!(out.contains(expect), "expected {expect:?} in {out}");
            run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
            server.join().unwrap()
        };
        let first = round("cache miss");
        assert!(first.contains("spilled"), "{first}");
        let second = round("cache hit"); // warm restart: first request hits
        assert!(second.contains("spilled"), "{second}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_requires_addr() {
        assert!(run_words(&["request"]).unwrap_err().0.contains("--addr"));
    }

    #[test]
    fn serve_validates_options() {
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--port", "70000"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--shards", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--max-line-bytes", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--max-conns", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--read-timeout-ms", "x"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--cache-shards", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--max-batch-items", "0"]).is_err());
        assert!(run_words(&[
            "serve",
            "--d",
            "2",
            "--g",
            "2",
            "--max-batch-topologies",
            "0"
        ])
        .is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--topology", "x"]).is_err());
        // The default + 2 distinct pre-warms cannot fit 2 slots; repeats
        // of the same pre-warm are deduped and do fit.
        assert!(run_words(&[
            "serve",
            "--d",
            "2",
            "--g",
            "2",
            "--topology",
            "2x4",
            "--topology",
            "4x2",
            "--max-topologies",
            "2",
        ])
        .unwrap_err()
        .0
        .contains("--max-topologies"));
    }

    #[test]
    fn serve_validates_fault_flags() {
        // Malformed values.
        for bad in ["4x4", "4x4:", "x4:1", "4x4:a", "0x4:1"] {
            assert!(
                run_words(&["serve", "--d", "4", "--g", "4", "--fault", bad]).is_err(),
                "accepted --fault {bad}"
            );
        }
        // Out-of-range coupler id: POPS(4, 4) has 16 couplers.
        let e = run_words(&["serve", "--d", "4", "--g", "4", "--fault", "4x4:16"]).unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
        // A baseline that disconnects a group pair is refused at boot:
        // c(1,0)=3, c(1,1)=4, c(1,2)=5 are every coupler into group 1.
        let e = run_words(&["serve", "--d", "2", "--g", "3", "--fault", "2x3:3,4,5"]).unwrap_err();
        assert!(e.0.contains("disconnects"), "{e}");
        // ...even when the disconnecting union arrives as separate flags.
        let e = run_words(&[
            "serve", "--d", "2", "--g", "3", "--fault", "2x3:3,4", "--fault", "2x3:5",
        ])
        .unwrap_err();
        assert!(e.0.contains("disconnects"), "{e}");
    }

    #[test]
    fn request_with_faults_round_trips_through_a_live_server() {
        use pops_service::{serve, RoutingService, ServiceConfig};
        use std::net::TcpListener;
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let server = std::thread::spawn(move || serve(listener, service).unwrap());

        // Degraded request: the schedule is refereed with coupler 1 down.
        let out = run_words(&[
            "request", "--addr", &addr, "--family", "reversal", "--fault", "1",
        ])
        .unwrap();
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("cache miss"), "{out}");

        // Same degraded request again: its own (fault-keyed) cache entry.
        let out = run_words(&[
            "request", "--addr", &addr, "--family", "reversal", "--fault", "1",
        ])
        .unwrap();
        assert!(out.contains("cache hit"), "{out}");

        // The healthy twin does NOT alias the degraded plan: still a miss.
        let out = run_words(&["request", "--addr", &addr, "--family", "reversal"]).unwrap();
        assert!(out.contains("cache miss"), "{out}");
        assert!(!out.contains("degraded"), "{out}");

        // Out-of-range ids are refused client-side.
        let e = run_words(&[
            "request", "--addr", &addr, "--family", "reversal", "--fault", "16",
        ])
        .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");

        run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn serve_validates_observability_options() {
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--metrics-port", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--metrics-port", "70000"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--quota-rps", "0"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--quota-burst", "4"]).is_err());
        assert!(run_words(&["serve", "--d", "2", "--g", "2", "--slow-ms", "x"]).is_err());
    }

    #[test]
    fn stats_requires_addr() {
        assert!(run_words(&["stats"]).unwrap_err().0.contains("--addr"));
    }

    #[test]
    fn stats_one_shot_and_watch_against_a_live_server() {
        use pops_service::{serve, RoutingService, ServiceConfig};
        use std::net::TcpListener;
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let server = std::thread::spawn(move || serve(listener, service).unwrap());

        run_words(&["request", "--addr", &addr, "--family", "reversal"]).unwrap();
        let out = run_words(&["stats", "--addr", &addr]).unwrap();
        assert!(out.contains("plans 1"), "{out}");
        assert!(out.contains("hit rate 0.0%"), "{out}");
        assert!(out.contains("sheds 0"), "{out}");

        // Watch mode streams all but the last sample to stdout and returns
        // the final delta line once --samples is hit — never an empty
        // string for main to print as a stray blank line.
        let out = run_words(&["stats", "--addr", &addr, "--watch", "0", "--samples", "2"]).unwrap();
        assert!(out.starts_with("plans +"), "{out}");
        assert!(out.ends_with('\n') && !out.ends_with("\n\n"), "{out:?}");
        assert_eq!(out.lines().count(), 1, "{out:?}");

        run_words(&["request", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn stats_watch_lines_render_absolutes_then_deltas() {
        let first = Json::parse(
            r#"{"hits":2,"misses":2,"errors":1,"sheds":{"total":3},"connections":{"active":2}}"#,
        )
        .unwrap();
        let line = stats_watch_line(None, &first, Duration::ZERO);
        assert_eq!(
            line,
            "plans 4   hit rate 50.0%   errors 1   sheds 3   conns 2"
        );
        let second = Json::parse(
            r#"{"hits":5,"misses":3,"errors":1,"sheds":{"total":4},"connections":{"active":1}}"#,
        )
        .unwrap();
        let line = stats_watch_line(Some(&first), &second, Duration::from_secs(2));
        assert_eq!(
            line,
            "plans +4 (2.0/s)   hit rate 75.0%   errors +0   sheds +1   conns 1"
        );
        // Fields an older server lacks read as zero instead of erroring.
        let sparse = Json::parse(r#"{"hits":1,"misses":0}"#).unwrap();
        let line = stats_watch_line(None, &sparse, Duration::ZERO);
        assert!(line.contains("sheds 0"), "{line}");
    }

    #[test]
    fn watch_stats_returns_the_final_line_not_an_empty_string() {
        // The regression this pins: the old watch loop returned
        // `Ok(String::new())` after its last sample, which main printed as
        // a stray blank line. Now all but the final sample stream to the
        // sink and the final line is the command output.
        let docs = [
            r#"{"hits":2,"misses":2,"errors":0,"sheds":{"total":0},"connections":{"active":1}}"#,
            r#"{"hits":4,"misses":2,"errors":0,"sheds":{"total":0},"connections":{"active":1}}"#,
            r#"{"hits":8,"misses":2,"errors":0,"sheds":{"total":1},"connections":{"active":1}}"#,
        ];
        let mut next = 0usize;
        let mut sink: Vec<u8> = Vec::new();
        let out = watch_stats(
            || {
                let doc = Json::parse(docs[next]).unwrap();
                next += 1;
                Ok(doc)
            },
            Duration::ZERO,
            3,
            &mut sink,
        )
        .unwrap();
        assert!(!out.is_empty(), "the final sample must be the output");
        assert!(out.ends_with('\n') && !out.ends_with("\n\n"), "{out:?}");
        assert_eq!(out.lines().count(), 1, "{out:?}");
        assert!(out.starts_with("plans +"), "{out:?}");
        let streamed = String::from_utf8(sink).unwrap();
        assert_eq!(streamed.lines().count(), 2, "{streamed:?}");
        assert!(
            streamed.lines().all(|l| !l.trim().is_empty()),
            "{streamed:?}"
        );

        // A fetch failure (server shut down mid-watch) surfaces as the
        // command error, not a panic or an empty success.
        let mut sink: Vec<u8> = Vec::new();
        let failed = watch_stats(
            || Err(err("connection reset")),
            Duration::ZERO,
            0,
            &mut sink,
        );
        assert!(failed.is_err());
    }

    #[test]
    fn request_timeout_bounds_a_hung_server() {
        // A listener that accepts but never answers: the client must give
        // up within its --timeout-ms budget instead of hanging forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let start = Instant::now();
        let err = run_words(&["request", "--addr", &addr, "--timeout-ms", "300"]).unwrap_err();
        assert!(err.0.contains("timed out"), "{err}");
        assert!(start.elapsed() < Duration::from_secs(10));
        drop(hold);
    }

    #[test]
    fn engine_selection() {
        for eng in ["koenig", "alternating", "euler"] {
            let out = run_words(&[
                "route", "--d", "3", "--g", "3", "--family", "random", "--engine", eng,
            ])
            .unwrap();
            assert!(out.contains("routed in 2 slot(s)"), "{eng}: {out}");
        }
        assert!(run_words(&["route", "--d", "2", "--g", "2", "--engine", "x"]).is_err());
    }
}
