//! `pops` — command-line explorer for the POPS routing reproduction.
//!
//! ```text
//! pops help
//! pops topology --d 3 --g 2
//! pops route --d 8 --g 8 --family reversal --compare
//! pops bounds --d 3 --g 2 --family group-rotation
//! pops optimal --d 3 --g 2 --family group-rotation
//! pops faults --d 2 --g 3 --family reversal --fail 3
//! pops sweep --max-d 6 --max-g 6
//! pops batch --d 16 --g 16 --count 256 --threads 4 --no-artefacts
//! pops serve --d 16 --g 16 --port 7077
//! pops request --addr 127.0.0.1:7077 --family reversal
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod commands;
mod opts;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match opts::Opts::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
