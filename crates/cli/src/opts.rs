//! A small `--key value` / `--flag` argument parser.
//!
//! No external dependency: the CLI's entire grammar is flat key-value
//! pairs after a single subcommand, so a hand-rolled parser stays
//! readable and testable.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the subcommand and its `--key [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// A command-line error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor used across the command modules.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl Opts {
    /// Parses `args` (without the program name). The first argument is the
    /// subcommand; the rest are `--key value` pairs, where a key followed
    /// by another `--key` (or the end) is treated as a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut it = args.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut options = BTreeMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --option, got '{arg}'")))?;
            if key.is_empty() {
                return Err(err("empty option name '--'"));
            }
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => String::from("true"),
            };
            if options.insert(key.to_string(), value).is_some() {
                return Err(err(format!("option --{key} given twice")));
            }
        }
        Ok(Self { command, options })
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required `usize` option.
    pub fn usize_req(&self, key: &str) -> Result<usize, CliError> {
        self.get(key)
            .ok_or_else(|| err(format!("missing required option --{key}")))?
            .parse()
            .map_err(|_| err(format!("--{key} expects a non-negative integer")))
    }

    /// An optional `usize` option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key} expects a non-negative integer"))),
        }
    }

    /// An optional `u64` option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key} expects a non-negative integer"))),
        }
    }

    /// A boolean flag (present, or explicitly `--key true/false`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// A comma-separated list of `usize`.
    pub fn usize_list(&self, key: &str) -> Result<Option<Vec<usize>>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| err(format!("--{key}: '{x}' is not an integer")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Opts, CliError> {
        Opts::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_pairs() {
        let o = parse(&["route", "--d", "4", "--g", "2", "--verify"]).unwrap();
        assert_eq!(o.command, "route");
        assert_eq!(o.usize_req("d").unwrap(), 4);
        assert_eq!(o.usize_req("g").unwrap(), 2);
        assert!(o.flag("verify"));
        assert!(!o.flag("missing"));
    }

    #[test]
    fn missing_required_is_an_error() {
        let o = parse(&["route", "--d", "4"]).unwrap();
        assert!(o.usize_req("g").unwrap_err().0.contains("--g"));
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&["route"]).unwrap();
        assert_eq!(o.usize_or("seed", 42).unwrap(), 42);
        assert_eq!(o.u64_or("budget", 7).unwrap(), 7);
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn non_option_rejected() {
        assert!(parse(&["x", "stray"]).is_err());
    }

    #[test]
    fn lists_parse() {
        let o = parse(&["faults", "--fail", "1,2, 3"]).unwrap();
        assert_eq!(o.usize_list("fail").unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(o.usize_list("other").unwrap(), None);
        let bad = parse(&["faults", "--fail", "1,x"]).unwrap();
        assert!(bad.usize_list("fail").is_err());
    }

    #[test]
    fn empty_command_line() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.command, "");
    }
}
