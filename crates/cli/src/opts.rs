//! A small `--key value` / `--flag` argument parser.
//!
//! No external dependency: the CLI's entire grammar is flat key-value
//! pairs after a single subcommand, so a hand-rolled parser stays
//! readable and testable.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the subcommand and its `--key [value]` options.
///
/// Options are **repeatable**: every occurrence is kept in order.
/// Single-valued accessors ([`Opts::get`] and the typed helpers) read the
/// *last* occurrence — later flags override earlier ones, the
/// conventional CLI behaviour — while list-valued options
/// (`pops serve --topology 4x4 --topology 2x8`) read them all via
/// [`Opts::get_all`].
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, Vec<String>>,
}

/// A command-line error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor used across the command modules.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl Opts {
    /// Parses `args` (without the program name). The first argument is the
    /// subcommand; the rest are `--key value` pairs, where a key followed
    /// by another `--key` (or the end) is treated as a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut it = args.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut options = BTreeMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --option, got '{arg}'")))?;
            if key.is_empty() {
                return Err(err("empty option name '--'"));
            }
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    it.next().unwrap_or_else(|| String::from("true"))
                }
                _ => String::from("true"),
            };
            options
                .entry(key.to_string())
                .or_insert_with(Vec::new)
                .push(value);
        }
        Ok(Self { command, options })
    }

    /// The raw value of `--key`, if present (the last occurrence when the
    /// option was repeated).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|values| values.last())
            .map(String::as_str)
    }

    /// Every occurrence of `--key`, in command-line order (empty if the
    /// option was never given).
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map_or(&[], Vec::as_slice)
    }

    /// A required `usize` option.
    pub fn usize_req(&self, key: &str) -> Result<usize, CliError> {
        self.get(key)
            .ok_or_else(|| err(format!("missing required option --{key}")))?
            .parse()
            .map_err(|_| err(format!("--{key} expects a non-negative integer")))
    }

    /// An optional `usize` option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key} expects a non-negative integer"))),
        }
    }

    /// An optional `u64` option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key} expects a non-negative integer"))),
        }
    }

    /// A boolean flag (present, or explicitly `--key true/false`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// A comma-separated list of `usize`.
    pub fn usize_list(&self, key: &str) -> Result<Option<Vec<usize>>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| err(format!("--{key}: '{x}' is not an integer")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Opts, CliError> {
        Opts::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_pairs() {
        let o = parse(&["route", "--d", "4", "--g", "2", "--verify"]).unwrap();
        assert_eq!(o.command, "route");
        assert_eq!(o.usize_req("d").unwrap(), 4);
        assert_eq!(o.usize_req("g").unwrap(), 2);
        assert!(o.flag("verify"));
        assert!(!o.flag("missing"));
    }

    #[test]
    fn missing_required_is_an_error() {
        let o = parse(&["route", "--d", "4"]).unwrap();
        assert!(o.usize_req("g").unwrap_err().0.contains("--g"));
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&["route"]).unwrap();
        assert_eq!(o.usize_or("seed", 42).unwrap(), 42);
        assert_eq!(o.u64_or("budget", 7).unwrap(), 7);
    }

    #[test]
    fn repeated_options_accumulate_and_last_wins() {
        let o = parse(&[
            "serve",
            "--topology",
            "4x4",
            "--topology",
            "2x8",
            "--a",
            "1",
        ])
        .unwrap();
        assert_eq!(o.get_all("topology"), ["4x4", "2x8"]);
        assert_eq!(o.get("topology"), Some("2x8"), "single read sees the last");
        assert_eq!(o.get_all("a"), ["1"]);
        assert!(o.get_all("missing").is_empty());
        // Typed accessors read the last occurrence too.
        let o = parse(&["x", "--n", "3", "--n", "7"]).unwrap();
        assert_eq!(o.usize_req("n").unwrap(), 7);
    }

    #[test]
    fn non_option_rejected() {
        assert!(parse(&["x", "stray"]).is_err());
    }

    #[test]
    fn lists_parse() {
        let o = parse(&["faults", "--fail", "1,2, 3"]).unwrap();
        assert_eq!(o.usize_list("fail").unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(o.usize_list("other").unwrap(), None);
        let bad = parse(&["faults", "--fail", "1,x"]).unwrap();
        assert!(bad.usize_list("fail").is_err());
    }

    #[test]
    fn empty_command_line() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.command, "");
    }
}
