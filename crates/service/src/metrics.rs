//! The service metrics registry: lock-free counters and log₂ latency
//! histograms, updated on every request and rendered as a snapshot.
//!
//! Everything is a relaxed atomic — metrics never serialize the request
//! path. A [`MetricsSnapshot`] is a plain-data copy taken at one instant;
//! the server's `stats` op and the CLI's exit summary both render from it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::proto::WireErrorKind;

/// Number of latency buckets: bucket `i` counts requests whose latency in
/// microseconds `µs` satisfies `2^(i-1) ≤ µs < 2^i` (bucket 0 is `< 1 µs`).
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Number of wire-error kinds tracked by the per-kind error counters
/// (one slot per [`WireErrorKind`], indexed by [`WireErrorKind::index`]).
pub const WIRE_ERROR_KINDS: usize = WireErrorKind::ALL.len();

/// The request kinds the service distinguishes in its per-kind metrics —
/// one per [`pops_core::RoutingRequest`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// General Theorem-2 permutation routing.
    Theorem2,
    /// Single-slot routing (Gravenstreter–Melhem condition).
    SingleSlot,
    /// h-relation routing by König decomposition.
    HRelation,
    /// Fault-tolerant routing around failed couplers.
    WithFaults,
    /// The direct single-hop baseline.
    Direct,
    /// The structured (Sahni-style) baseline.
    Structured,
}

impl RequestKind {
    /// All kinds, in wire-name order.
    pub const ALL: [RequestKind; 6] = [
        RequestKind::Theorem2,
        RequestKind::SingleSlot,
        RequestKind::HRelation,
        RequestKind::WithFaults,
        RequestKind::Direct,
        RequestKind::Structured,
    ];

    /// The kind's index into per-kind metric arrays.
    pub fn index(self) -> usize {
        match self {
            RequestKind::Theorem2 => 0,
            RequestKind::SingleSlot => 1,
            RequestKind::HRelation => 2,
            RequestKind::WithFaults => 3,
            RequestKind::Direct => 4,
            RequestKind::Structured => 5,
        }
    }

    /// The kind's wire name (used by the JSON protocol and reports).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Theorem2 => "theorem2",
            RequestKind::SingleSlot => "single-slot",
            RequestKind::HRelation => "h-relation",
            RequestKind::WithFaults => "faults",
            RequestKind::Direct => "direct",
            RequestKind::Structured => "structured",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Self> {
        RequestKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A log₂-bucketed latency histogram in microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, micros: u64) {
        let bucket = (u64::BITS - micros.leading_zeros()) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data copy of the bucket counts.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// Per-kind counters.
#[derive(Debug, Default)]
struct KindMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    latency: LatencyHistogram,
}

/// The registry. One instance lives in every [`crate::RoutingService`];
/// pools and the admission gate update it directly.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Level-1 (whole-request) plan-cache hits.
    hits: AtomicU64,
    /// Level-1 plan-cache misses (each one computed or assembled a plan).
    misses: AtomicU64,
    /// Level-2 (per-phase) cache hits: h-relation phases answered from the
    /// phase cache instead of the engine pool.
    phase_hits: AtomicU64,
    /// Level-2 misses: phases that had to be planned on an engine.
    phase_misses: AtomicU64,
    /// Total slots across every schedule the service emitted.
    slots_emitted: AtomicU64,
    /// Requests that returned a routing error.
    errors: AtomicU64,
    /// Engine-pool acquisitions that found their home shard free.
    pool_fast: AtomicU64,
    /// Acquisitions that overflowed to another idle shard.
    pool_overflows: AtomicU64,
    /// Acquisitions that found every shard busy and had to block.
    pool_blocked: AtomicU64,
    /// Requests that had to wait at the admission gate.
    admission_waits: AtomicU64,
    /// Batch submissions.
    batches: AtomicU64,
    /// Plans produced by batch submissions.
    batch_plans: AtomicU64,
    /// Connections the server accepted and handed to a handler.
    conns_opened: AtomicU64,
    /// Handler threads that have exited (their connection is done).
    conns_closed: AtomicU64,
    /// Connections refused because the server was at capacity.
    conns_rejected: AtomicU64,
    /// Request lines rejected for exceeding the line-length cap.
    oversized_lines: AtomicU64,
    /// Connections dropped because a complete line never arrived in time.
    read_timeouts: AtomicU64,
    /// Requests shed at the global in-flight watermark (answered with an
    /// `overloaded` error instead of queueing).
    sheds_watermark: AtomicU64,
    /// Requests shed by a per-client token-bucket quota.
    sheds_quota: AtomicU64,
    /// Slow-request trace lines actually emitted to the log.
    slow_traces: AtomicU64,
    /// Slow-request trace lines suppressed by the rate limiter.
    slow_traces_suppressed: AtomicU64,
    /// Wire-level error responses written, by [`WireErrorKind`] index.
    wire_errors: [AtomicU64; WIRE_ERROR_KINDS],
    /// Connections that negotiated the binary framing (every connection
    /// starts as JSON; `conns_opened - conns_binary` is the JSON count).
    conns_binary: AtomicU64,
    /// Request bytes received on JSON-lines connections.
    json_bytes_in: AtomicU64,
    /// Response bytes written on JSON-lines connections.
    json_bytes_out: AtomicU64,
    /// Request bytes received on binary-framed connections (frames read
    /// after negotiation; the negotiation line itself counts as JSON).
    binary_bytes_in: AtomicU64,
    /// Response bytes written on binary-framed connections.
    binary_bytes_out: AtomicU64,
    /// Degraded plans computed: level-1 misses planned by the greedy
    /// fault router under a non-empty fault set (the fallback to the
    /// Theorem-2 construction).
    degraded_plans: AtomicU64,
    /// Level-1 hits answered from a degraded (fault-keyed) cache entry.
    degraded_hits: AtomicU64,
    /// Requests refused because their effective fault set left the
    /// fabric not fully routable.
    unroutable_refusals: AtomicU64,
    per_kind: [KindMetrics; 6],
}

impl ServiceMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cache hit for `kind`, `micros` in service.
    pub fn record_hit(&self, kind: RequestKind, micros: u64) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.record_kind(kind, micros);
    }

    /// Records a computed (cache-miss) plan for `kind` that emitted
    /// `slots` slots, `micros` in service.
    pub fn record_miss(&self, kind: RequestKind, slots: usize, micros: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.slots_emitted
            .fetch_add(slots as u64, Ordering::Relaxed);
        self.record_kind(kind, micros);
    }

    /// Records a level-2 hit: one h-relation phase served from the phase
    /// cache.
    pub fn record_phase_hit(&self) {
        self.phase_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a level-2 miss: one phase planned on the engine pool.
    pub fn record_phase_miss(&self) {
        self.phase_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed request.
    pub fn record_error(&self, kind: RequestKind) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.per_kind[kind.index()]
            .errors
            .fetch_add(1, Ordering::Relaxed);
    }

    fn record_kind(&self, kind: RequestKind, micros: u64) {
        let k = &self.per_kind[kind.index()];
        k.requests.fetch_add(1, Ordering::Relaxed);
        k.total_micros.fetch_add(micros, Ordering::Relaxed);
        k.latency.record(micros);
    }

    /// Records an engine-pool acquisition outcome.
    pub fn record_pool(&self, outcome: PoolAcquisition) {
        let counter = match outcome {
            PoolAcquisition::Fast => &self.pool_fast,
            PoolAcquisition::Overflow => &self.pool_overflows,
            PoolAcquisition::Blocked => &self.pool_blocked,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a wait at the admission gate.
    pub fn record_admission_wait(&self) {
        self.admission_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch submission of `plans` plans totalling `slots` slots.
    pub fn record_batch(&self, plans: usize, slots: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_plans.fetch_add(plans as u64, Ordering::Relaxed);
        self.slots_emitted
            .fetch_add(slots as u64, Ordering::Relaxed);
    }

    /// Records a connection accepted and handed to a handler thread.
    pub fn record_connection_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a handler thread exiting (its connection is finished).
    pub fn record_connection_closed(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection refused at the server's capacity limit.
    pub fn record_connection_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line rejected for exceeding the length cap.
    pub fn record_oversized_line(&self) {
        self.oversized_lines.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection dropped on a read timeout.
    pub fn record_read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by overload control: at the global in-flight
    /// watermark (`quota = false`) or by a per-client quota (`quota = true`).
    pub fn record_shed(&self, quota: bool) {
        let counter = if quota {
            &self.sheds_quota
        } else {
            &self.sheds_watermark
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a slow-request trace line: emitted to the log, or suppressed
    /// by the rate limiter (`emitted = false`).
    pub fn record_slow_trace(&self, emitted: bool) {
        let counter = if emitted {
            &self.slow_traces
        } else {
            &self.slow_traces_suppressed
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one wire-level error response of the given kind (the typed
    /// `"kind"` field the server put on an `ok: false` reply).
    pub fn record_wire_error(&self, kind: WireErrorKind) {
        self.wire_errors[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a degraded plan: a miss planned by the greedy fault router
    /// under a non-empty fault set.
    pub fn record_degraded_plan(&self) {
        self.degraded_plans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a level-1 hit on a degraded (fault-keyed) entry.
    pub fn record_degraded_hit(&self) {
        self.degraded_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused because its fault set left the fabric
    /// not fully routable.
    pub fn record_unroutable(&self) {
        self.unroutable_refusals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection upgrading to the binary framing (a successful
    /// `hello` negotiation).
    pub fn record_binary_negotiated(&self) {
        self.conns_binary.fetch_add(1, Ordering::Relaxed);
    }

    /// Records wire traffic: `bytes_in` request bytes received and
    /// `bytes_out` response bytes written, attributed to the connection's
    /// negotiated format.
    pub fn record_wire_bytes(&self, binary: bool, bytes_in: u64, bytes_out: u64) {
        let (in_counter, out_counter) = if binary {
            (&self.binary_bytes_in, &self.binary_bytes_out)
        } else {
            (&self.json_bytes_in, &self.json_bytes_out)
        };
        in_counter.fetch_add(bytes_in, Ordering::Relaxed);
        out_counter.fetch_add(bytes_out, Ordering::Relaxed);
    }

    /// A plain-data copy of every counter at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            phase_hits: self.phase_hits.load(Ordering::Relaxed),
            phase_misses: self.phase_misses.load(Ordering::Relaxed),
            slots_emitted: self.slots_emitted.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            pool_fast: self.pool_fast.load(Ordering::Relaxed),
            pool_overflows: self.pool_overflows.load(Ordering::Relaxed),
            pool_blocked: self.pool_blocked.load(Ordering::Relaxed),
            admission_waits: self.admission_waits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_plans: self.batch_plans.load(Ordering::Relaxed),
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            oversized_lines: self.oversized_lines.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            sheds_watermark: self.sheds_watermark.load(Ordering::Relaxed),
            sheds_quota: self.sheds_quota.load(Ordering::Relaxed),
            slow_traces: self.slow_traces.load(Ordering::Relaxed),
            slow_traces_suppressed: self.slow_traces_suppressed.load(Ordering::Relaxed),
            wire_errors: std::array::from_fn(|i| self.wire_errors[i].load(Ordering::Relaxed)),
            conns_binary: self.conns_binary.load(Ordering::Relaxed),
            json_bytes_in: self.json_bytes_in.load(Ordering::Relaxed),
            json_bytes_out: self.json_bytes_out.load(Ordering::Relaxed),
            binary_bytes_in: self.binary_bytes_in.load(Ordering::Relaxed),
            binary_bytes_out: self.binary_bytes_out.load(Ordering::Relaxed),
            degraded_plans: self.degraded_plans.load(Ordering::Relaxed),
            degraded_hits: self.degraded_hits.load(Ordering::Relaxed),
            unroutable_refusals: self.unroutable_refusals.load(Ordering::Relaxed),
            arena_bytes: 0,
            cache_entries: 0,
            cache_capacity: 0,
            phase_cache_entries: 0,
            phase_cache_capacity: 0,
            per_kind: RequestKind::ALL.map(|kind| {
                let k = &self.per_kind[kind.index()];
                KindSnapshot {
                    kind,
                    requests: k.requests.load(Ordering::Relaxed),
                    errors: k.errors.load(Ordering::Relaxed),
                    total_micros: k.total_micros.load(Ordering::Relaxed),
                    latency: k.latency.snapshot(),
                }
            }),
        }
    }
}

/// How an engine-pool acquisition went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolAcquisition {
    /// The round-robin home shard was free.
    Fast,
    /// The home shard was busy; the request overflowed to an idle shard.
    Overflow,
    /// Every shard was busy; the request blocked on its home shard.
    Blocked,
}

/// Plain-data copy of one request kind's counters.
#[derive(Debug, Clone)]
pub struct KindSnapshot {
    /// The kind.
    pub kind: RequestKind,
    /// Requests served (hits + misses).
    pub requests: u64,
    /// Requests that errored.
    pub errors: u64,
    /// Total service latency in microseconds.
    pub total_micros: u64,
    /// The log₂ latency histogram.
    pub latency: [u64; HISTOGRAM_BUCKETS],
}

impl KindSnapshot {
    /// Mean service latency in microseconds (0 when idle).
    pub fn avg_micros(&self) -> u64 {
        self.total_micros.checked_div(self.requests).unwrap_or(0)
    }

    /// Approximate p-quantile latency in microseconds from the histogram
    /// (upper bucket bound of the bucket containing the quantile).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().sum();
        if total == 0 {
            return 0;
        }
        let want = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &count) in self.latency.iter().enumerate() {
            seen += count;
            if seen >= want {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }
}

/// Plain-data copy of the whole registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Level-1 (whole-request) plan-cache hits.
    pub hits: u64,
    /// Level-1 plan-cache misses.
    pub misses: u64,
    /// Level-2 (per-phase) cache hits.
    pub phase_hits: u64,
    /// Level-2 (per-phase) cache misses.
    pub phase_misses: u64,
    /// Total slots across emitted schedules.
    pub slots_emitted: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Pool acquisitions with a free home shard.
    pub pool_fast: u64,
    /// Pool acquisitions that overflowed to another shard.
    pub pool_overflows: u64,
    /// Pool acquisitions that blocked.
    pub pool_blocked: u64,
    /// Waits at the admission gate.
    pub admission_waits: u64,
    /// Batch submissions.
    pub batches: u64,
    /// Plans produced by batches.
    pub batch_plans: u64,
    /// Connections accepted by the server.
    pub conns_opened: u64,
    /// Connections whose handler has exited.
    pub conns_closed: u64,
    /// Connections refused at the capacity limit.
    pub conns_rejected: u64,
    /// Request lines rejected for exceeding the length cap.
    pub oversized_lines: u64,
    /// Connections dropped on a read timeout.
    pub read_timeouts: u64,
    /// Requests shed at the global in-flight watermark.
    pub sheds_watermark: u64,
    /// Requests shed by a per-client token-bucket quota.
    pub sheds_quota: u64,
    /// Slow-request trace lines emitted to the log.
    pub slow_traces: u64,
    /// Slow-request trace lines suppressed by the rate limiter.
    pub slow_traces_suppressed: u64,
    /// Wire-level error responses written, indexed by
    /// [`WireErrorKind::index`].
    pub wire_errors: [u64; WIRE_ERROR_KINDS],
    /// Connections that negotiated the binary framing.
    pub conns_binary: u64,
    /// Request bytes received on JSON-lines connections.
    pub json_bytes_in: u64,
    /// Response bytes written on JSON-lines connections.
    pub json_bytes_out: u64,
    /// Request bytes received on binary-framed connections.
    pub binary_bytes_in: u64,
    /// Response bytes written on binary-framed connections.
    pub binary_bytes_out: u64,
    /// Degraded plans computed under a non-empty fault set.
    pub degraded_plans: u64,
    /// Level-1 hits answered from degraded (fault-keyed) entries.
    pub degraded_hits: u64,
    /// Requests refused because the fault set was not fully routable.
    pub unroutable_refusals: u64,
    /// Engine-arena bytes across the pool (gauge; filled by
    /// [`crate::RoutingService::metrics`], 0 from a bare registry).
    pub arena_bytes: u64,
    /// Level-1 plans currently cached (gauge; filled like `arena_bytes`).
    pub cache_entries: u64,
    /// Level-1 plan-cache capacity (gauge; filled like `arena_bytes`).
    pub cache_capacity: u64,
    /// Level-2 phase plans currently cached (gauge; filled like
    /// `arena_bytes`).
    pub phase_cache_entries: u64,
    /// Level-2 phase-cache capacity (gauge; filled like `arena_bytes`).
    pub phase_cache_capacity: u64,
    /// Per-kind counters.
    pub per_kind: [KindSnapshot; 6],
}

impl MetricsSnapshot {
    /// A zeroed snapshot — the identity of [`MetricsSnapshot::absorb`].
    pub fn zero() -> Self {
        ServiceMetrics::new().snapshot()
    }

    /// Adds every counter (and gauge) of `other` into `self`.
    ///
    /// The multi-topology server keeps one metrics registry **per
    /// topology** plus one for the connection layer; absorbing them into a
    /// zero snapshot renders the single fleet-wide view the `stats` wire
    /// op reports at its top level. Gauges (arena bytes, cache occupancy
    /// and capacity) sum too, so the aggregate reads as fleet totals.
    ///
    /// ```
    /// use pops_service::{MetricsSnapshot, RequestKind, ServiceMetrics};
    ///
    /// let a = ServiceMetrics::new();
    /// a.record_miss(RequestKind::Theorem2, 2, 10);
    /// let b = ServiceMetrics::new();
    /// b.record_hit(RequestKind::Theorem2, 1);
    ///
    /// let mut total = MetricsSnapshot::zero();
    /// total.absorb(&a.snapshot());
    /// total.absorb(&b.snapshot());
    /// assert_eq!((total.hits, total.misses), (1, 1));
    /// assert_eq!(total.per_kind[0].requests, 2);
    /// ```
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.phase_hits += other.phase_hits;
        self.phase_misses += other.phase_misses;
        self.slots_emitted += other.slots_emitted;
        self.errors += other.errors;
        self.pool_fast += other.pool_fast;
        self.pool_overflows += other.pool_overflows;
        self.pool_blocked += other.pool_blocked;
        self.admission_waits += other.admission_waits;
        self.batches += other.batches;
        self.batch_plans += other.batch_plans;
        self.conns_opened += other.conns_opened;
        self.conns_closed += other.conns_closed;
        self.conns_rejected += other.conns_rejected;
        self.oversized_lines += other.oversized_lines;
        self.read_timeouts += other.read_timeouts;
        self.sheds_watermark += other.sheds_watermark;
        self.sheds_quota += other.sheds_quota;
        self.slow_traces += other.slow_traces;
        self.slow_traces_suppressed += other.slow_traces_suppressed;
        for (mine, theirs) in self.wire_errors.iter_mut().zip(&other.wire_errors) {
            *mine += theirs;
        }
        self.conns_binary += other.conns_binary;
        self.json_bytes_in += other.json_bytes_in;
        self.json_bytes_out += other.json_bytes_out;
        self.binary_bytes_in += other.binary_bytes_in;
        self.binary_bytes_out += other.binary_bytes_out;
        self.degraded_plans += other.degraded_plans;
        self.degraded_hits += other.degraded_hits;
        self.unroutable_refusals += other.unroutable_refusals;
        self.arena_bytes += other.arena_bytes;
        self.cache_entries += other.cache_entries;
        self.cache_capacity += other.cache_capacity;
        self.phase_cache_entries += other.phase_cache_entries;
        self.phase_cache_capacity += other.phase_cache_capacity;
        for (mine, theirs) in self.per_kind.iter_mut().zip(&other.per_kind) {
            debug_assert_eq!(mine.kind, theirs.kind);
            mine.requests += theirs.requests;
            mine.errors += theirs.errors;
            mine.total_micros += theirs.total_micros;
            for (bucket, add) in mine.latency.iter_mut().zip(&theirs.latency) {
                *bucket += add;
            }
        }
    }

    /// Level-1 cache hit rate over single-request traffic (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Level-2 (phase) cache hit rate over routed phases (0 when idle).
    pub fn phase_hit_rate(&self) -> f64 {
        let total = self.phase_hits + self.phase_misses;
        if total == 0 {
            0.0
        } else {
            self.phase_hits as f64 / total as f64
        }
    }

    /// Single requests served (hits + misses).
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Connections currently live (opened minus closed).
    pub fn active_connections(&self) -> u64 {
        self.conns_opened.saturating_sub(self.conns_closed)
    }

    /// Connections that stayed on the default JSON-lines framing (opened
    /// minus binary-negotiated).
    pub fn json_connections(&self) -> u64 {
        self.conns_opened.saturating_sub(self.conns_binary)
    }

    /// Requests shed by overload control, all causes combined.
    pub fn sheds(&self) -> u64 {
        self.sheds_watermark + self.sheds_quota
    }

    /// Degraded requests served (fault-keyed hits + degraded plans).
    pub fn degraded_requests(&self) -> u64 {
        self.degraded_plans + self.degraded_hits
    }

    /// Wire-level error responses written, all kinds combined.
    pub fn wire_errors_total(&self) -> u64 {
        self.wire_errors.iter().sum()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} ({} L1 hits, {} L1 misses, hit rate {:.1}%), {} errors",
            self.requests(),
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.errors,
        )?;
        writeln!(
            f,
            "phases (L2): {} hits, {} misses, hit rate {:.1}%",
            self.phase_hits,
            self.phase_misses,
            100.0 * self.phase_hit_rate(),
        )?;
        writeln!(
            f,
            "slots emitted: {}   batches: {} ({} plans)",
            self.slots_emitted, self.batches, self.batch_plans
        )?;
        writeln!(
            f,
            "degraded: {} plans, {} hits   unroutable refusals: {}",
            self.degraded_plans, self.degraded_hits, self.unroutable_refusals
        )?;
        writeln!(
            f,
            "pool: {} fast, {} overflowed, {} blocked   admission waits: {}",
            self.pool_fast, self.pool_overflows, self.pool_blocked, self.admission_waits
        )?;
        writeln!(
            f,
            "connections: {} active ({} opened, {} closed, {} rejected)   \
             oversized lines: {}   read timeouts: {}",
            self.active_connections(),
            self.conns_opened,
            self.conns_closed,
            self.conns_rejected,
            self.oversized_lines,
            self.read_timeouts,
        )?;
        writeln!(
            f,
            "sheds: {} ({} watermark, {} quota)   slow traces: {} emitted, \
             {} suppressed   wire errors: {}",
            self.sheds(),
            self.sheds_watermark,
            self.sheds_quota,
            self.slow_traces,
            self.slow_traces_suppressed,
            self.wire_errors_total(),
        )?;
        writeln!(
            f,
            "wire: {} json conn(s) ({} B in, {} B out), {} binary conn(s) \
             ({} B in, {} B out)",
            self.json_connections(),
            self.json_bytes_in,
            self.json_bytes_out,
            self.conns_binary,
            self.binary_bytes_in,
            self.binary_bytes_out,
        )?;
        writeln!(
            f,
            "arena footprint: {} bytes   plan cache: {}/{} entries   \
             phase cache: {}/{} entries",
            self.arena_bytes,
            self.cache_entries,
            self.cache_capacity,
            self.phase_cache_entries,
            self.phase_cache_capacity,
        )?;
        writeln!(
            f,
            "{:<12} {:>9} {:>7} {:>10} {:>10} {:>10}",
            "kind", "requests", "errors", "avg µs", "p50 µs", "p99 µs"
        )?;
        for k in &self.per_kind {
            if k.requests == 0 && k.errors == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>9} {:>7} {:>10} {:>10} {:>10}",
                k.kind.name(),
                k.requests,
                k.errors,
                k.avg_micros(),
                k.quantile_micros(0.5),
                k.quantile_micros(0.99),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(u64::MAX); // clamped to last bucket
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[2], 2);
        assert_eq!(snap[11], 1);
        assert_eq!(snap[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn snapshot_reflects_recordings() {
        let m = ServiceMetrics::new();
        m.record_miss(RequestKind::Theorem2, 2, 100);
        m.record_hit(RequestKind::Theorem2, 1);
        m.record_error(RequestKind::SingleSlot);
        m.record_pool(PoolAcquisition::Fast);
        m.record_pool(PoolAcquisition::Overflow);
        m.record_batch(8, 16);
        let s = m.snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.slots_emitted, 2 + 16);
        assert_eq!(s.errors, 1);
        assert_eq!(s.pool_fast, 1);
        assert_eq!(s.pool_overflows, 1);
        assert_eq!(s.batch_plans, 8);
        assert_eq!(s.per_kind[0].requests, 2);
        assert_eq!(s.per_kind[1].errors, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("hit rate 50.0%"), "{rendered}");
        assert!(rendered.contains("theorem2"), "{rendered}");
    }

    #[test]
    fn phase_counters_are_reported_separately_from_l1() {
        let m = ServiceMetrics::new();
        m.record_miss(RequestKind::HRelation, 8, 120);
        m.record_phase_miss();
        m.record_phase_hit();
        m.record_phase_hit();
        m.record_phase_hit();
        let s = m.snapshot();
        assert_eq!((s.hits, s.misses), (0, 1), "L1 view");
        assert_eq!((s.phase_hits, s.phase_misses), (3, 1), "L2 view");
        assert!((s.phase_hit_rate() - 0.75).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("L1 hits"), "{rendered}");
        assert!(
            rendered.contains("phases (L2): 3 hits, 1 misses"),
            "{rendered}"
        );
    }

    #[test]
    fn connection_and_limit_counters_round_trip() {
        let m = ServiceMetrics::new();
        for _ in 0..3 {
            m.record_connection_opened();
        }
        m.record_connection_closed();
        m.record_connection_rejected();
        m.record_oversized_line();
        m.record_read_timeout();
        let s = m.snapshot();
        assert_eq!((s.conns_opened, s.conns_closed), (3, 1));
        assert_eq!(s.active_connections(), 2);
        assert_eq!(s.conns_rejected, 1);
        assert_eq!((s.oversized_lines, s.read_timeouts), (1, 1));
        let rendered = s.to_string();
        assert!(rendered.contains("2 active"), "{rendered}");
        assert!(rendered.contains("read timeouts: 1"), "{rendered}");
        assert!(rendered.contains("arena footprint"), "{rendered}");
    }

    #[test]
    fn per_format_wire_counters_round_trip() {
        let m = ServiceMetrics::new();
        for _ in 0..3 {
            m.record_connection_opened();
        }
        m.record_binary_negotiated();
        m.record_wire_bytes(false, 100, 900);
        m.record_wire_bytes(false, 20, 80);
        m.record_wire_bytes(true, 50, 200);
        let s = m.snapshot();
        assert_eq!(s.conns_binary, 1);
        assert_eq!(s.json_connections(), 2);
        assert_eq!((s.json_bytes_in, s.json_bytes_out), (120, 980));
        assert_eq!((s.binary_bytes_in, s.binary_bytes_out), (50, 200));
        let rendered = s.to_string();
        assert!(
            rendered.contains("2 json conn(s) (120 B in, 980 B out)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("1 binary conn(s) (50 B in, 200 B out)"),
            "{rendered}"
        );

        // Aggregation across registries sums the per-format views too.
        let other = ServiceMetrics::new();
        other.record_wire_bytes(true, 1, 2);
        other.record_binary_negotiated();
        let mut total = MetricsSnapshot::zero();
        total.absorb(&s);
        total.absorb(&other.snapshot());
        assert_eq!(total.conns_binary, 2);
        assert_eq!((total.binary_bytes_in, total.binary_bytes_out), (51, 202));
    }

    #[test]
    fn quantiles_from_histogram() {
        let mut k = KindSnapshot {
            kind: RequestKind::Theorem2,
            requests: 0,
            errors: 0,
            total_micros: 0,
            latency: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(k.quantile_micros(0.5), 0);
        k.latency[3] = 99; // 4..8 µs
        k.latency[10] = 1; // one slow outlier
        assert_eq!(k.quantile_micros(0.5), 8);
        assert_eq!(k.quantile_micros(0.999), 1024);
    }

    #[test]
    fn absorb_sums_counters_and_histograms() {
        let a = ServiceMetrics::new();
        a.record_miss(RequestKind::Theorem2, 2, 100);
        a.record_phase_miss();
        a.record_connection_opened();
        let b = ServiceMetrics::new();
        b.record_hit(RequestKind::Theorem2, 100);
        b.record_error(RequestKind::HRelation);
        b.record_phase_hit();

        let mut total = MetricsSnapshot::zero();
        total.absorb(&a.snapshot());
        total.absorb(&b.snapshot());
        assert_eq!((total.hits, total.misses), (1, 1));
        assert_eq!((total.phase_hits, total.phase_misses), (1, 1));
        assert_eq!(total.errors, 1);
        assert_eq!(total.conns_opened, 1);
        assert_eq!(total.per_kind[0].requests, 2);
        assert_eq!(total.per_kind[2].errors, 1);
        // Both 100 µs observations land in the same histogram bucket.
        let bucket = (u64::BITS - 100u64.leading_zeros()) as usize;
        assert_eq!(total.per_kind[0].latency[bucket], 2);
    }

    #[test]
    fn shed_and_slow_trace_counters_round_trip() {
        let m = ServiceMetrics::new();
        m.record_shed(false);
        m.record_shed(false);
        m.record_shed(true);
        m.record_slow_trace(true);
        m.record_slow_trace(false);
        m.record_slow_trace(false);
        let s = m.snapshot();
        assert_eq!((s.sheds_watermark, s.sheds_quota), (2, 1));
        assert_eq!(s.sheds(), 3);
        assert_eq!((s.slow_traces, s.slow_traces_suppressed), (1, 2));
        let rendered = s.to_string();
        assert!(
            rendered.contains("sheds: 3 (2 watermark, 1 quota)"),
            "{rendered}"
        );

        // Aggregation sums the overload view too.
        let mut total = MetricsSnapshot::zero();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.sheds(), 6);
        assert_eq!(total.slow_traces_suppressed, 4);
    }

    #[test]
    fn wire_error_counters_round_trip_per_kind() {
        let m = ServiceMetrics::new();
        m.record_wire_error(WireErrorKind::Parse);
        m.record_wire_error(WireErrorKind::Parse);
        m.record_wire_error(WireErrorKind::Overloaded);
        let s = m.snapshot();
        assert_eq!(s.wire_errors[WireErrorKind::Parse.index()], 2);
        assert_eq!(s.wire_errors[WireErrorKind::Overloaded.index()], 1);
        assert_eq!(s.wire_errors_total(), 3);
        assert!(s.to_string().contains("wire errors: 3"), "{s}");

        let mut total = MetricsSnapshot::zero();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.wire_errors[WireErrorKind::Parse.index()], 4);
        assert_eq!(total.wire_errors_total(), 6);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(RequestKind::from_name("nope"), None);
    }
}
