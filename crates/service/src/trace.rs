//! Per-request tracing: trace ids, per-stage timings, and a rate-limited
//! slow-request log.
//!
//! Std-only and allocation-light. The server creates one [`RequestTrace`]
//! per request from the connection id and a per-connection sequence
//! number, marks stage boundaries as the request moves through the
//! pipeline (`parse → admission → plan → serialize`), and hands the
//! finished trace to its [`SlowLog`]. Requests over the configured
//! threshold render one structured log line — rate-limited so a storm of
//! slow requests cannot turn the log into its own overload — and the
//! trace id is echoed on JSON wire responses (the `"trace"` field, see
//! [`crate::proto::attach_trace`]) so a log line correlates with the
//! exact response a client saw.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One request's trace: an id stable for the request's lifetime and the
/// wall-clock duration of each pipeline stage.
#[derive(Debug)]
pub struct RequestTrace {
    id: String,
    started: Instant,
    last_mark: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl RequestTrace {
    /// Starts a trace for request `seq` on connection `conn`. The id is
    /// `c<conn>-r<seq>` — unique per server process, cheap to generate,
    /// and readable in both the log and the wire response.
    pub fn start(conn: u64, seq: u64) -> Self {
        let now = Instant::now();
        Self {
            id: format!("c{conn}-r{seq}"),
            started: now,
            last_mark: now,
            stages: Vec::with_capacity(6),
        }
    }

    /// The trace id (`c<conn>-r<seq>`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Closes the stage that ran since the previous mark (or since the
    /// trace started) under `name`. Stages are recorded in call order.
    pub fn stage(&mut self, name: &'static str) {
        let now = Instant::now();
        self.stages.push((name, now.duration_since(self.last_mark)));
        self.last_mark = now;
    }

    /// Total wall clock since the trace started.
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }

    /// The recorded stages, in order.
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// Renders the structured slow-request log line:
    /// `slow-request trace=c3-r7 total_us=12345 parse_us=10 ...`.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "slow-request trace={} total_us={}",
            self.id,
            self.total().as_micros()
        );
        for (name, took) in &self.stages {
            let _ = write!(out, " {name}_us={}", took.as_micros());
        }
        out
    }
}

/// What [`SlowLog::observe`] decided about one finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlowVerdict {
    /// Under the threshold — nothing to log.
    Fast,
    /// Over the threshold and within the rate budget: the rendered log
    /// line, ready to print.
    Emit(String),
    /// Over the threshold but suppressed by the rate limiter.
    Suppressed,
}

/// Minimum spacing between emitted slow-request lines when none is
/// configured explicitly.
pub const DEFAULT_SLOW_LOG_INTERVAL: Duration = Duration::from_secs(1);

/// The slow-request log: emits at most one line per interval for requests
/// whose total time crosses the threshold. Shared across handler threads;
/// the only synchronization is one mutex taken *after* a request already
/// proved slow, so the fast path never touches it.
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    min_interval: Duration,
    last_emit: Mutex<Option<Instant>>,
}

impl SlowLog {
    /// A slow log with the default one-line-per-second rate limit.
    pub fn new(threshold: Duration) -> Self {
        Self::with_rate(threshold, DEFAULT_SLOW_LOG_INTERVAL)
    }

    /// A slow log emitting at most one line per `min_interval`.
    pub fn with_rate(threshold: Duration, min_interval: Duration) -> Self {
        Self {
            threshold,
            min_interval,
            last_emit: Mutex::new(None),
        }
    }

    /// The configured slowness threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Judges one finished request: fast requests pass untouched, slow
    /// ones render a line unless the rate limiter has emitted within the
    /// last interval.
    pub fn observe(&self, trace: &RequestTrace) -> SlowVerdict {
        if trace.total() < self.threshold {
            return SlowVerdict::Fast;
        }
        let now = Instant::now();
        let mut last = self.last_emit.lock().unwrap_or_else(|e| e.into_inner());
        match *last {
            Some(prev) if now.duration_since(prev) < self.min_interval => SlowVerdict::Suppressed,
            _ => {
                *last = Some(now);
                SlowVerdict::Emit(trace.render_line())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_stages_in_order_and_renders_them() {
        let mut t = RequestTrace::start(3, 7);
        assert_eq!(t.id(), "c3-r7");
        t.stage("parse");
        std::thread::sleep(Duration::from_millis(2));
        t.stage("plan");
        t.stage("serialize");
        let names: Vec<_> = t.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["parse", "plan", "serialize"]);
        assert!(t.stages()[1].1 >= Duration::from_millis(2));
        let line = t.render_line();
        assert!(
            line.starts_with("slow-request trace=c3-r7 total_us="),
            "{line}"
        );
        assert!(line.contains(" plan_us="), "{line}");
    }

    #[test]
    fn slow_log_only_fires_above_the_threshold() {
        let log = SlowLog::new(Duration::from_millis(50));
        let t = RequestTrace::start(1, 1);
        assert_eq!(log.observe(&t), SlowVerdict::Fast, "fresh trace is fast");

        let log = SlowLog::new(Duration::ZERO);
        let t = RequestTrace::start(1, 2);
        assert!(matches!(log.observe(&t), SlowVerdict::Emit(_)));
    }

    #[test]
    fn slow_log_rate_limits_then_recovers() {
        let log = SlowLog::with_rate(Duration::ZERO, Duration::from_millis(40));
        let t = RequestTrace::start(2, 1);
        assert!(matches!(log.observe(&t), SlowVerdict::Emit(_)));
        assert_eq!(log.observe(&t), SlowVerdict::Suppressed);
        assert_eq!(log.observe(&t), SlowVerdict::Suppressed);
        std::thread::sleep(Duration::from_millis(45));
        assert!(
            matches!(log.observe(&t), SlowVerdict::Emit(_)),
            "budget refills after the interval"
        );
    }

    #[test]
    fn suppressed_counts_stay_accurate_across_a_window_boundary() {
        // Drive a burst through one rate window, cross the boundary, and
        // drive a second burst: exactly one line per window may emit and
        // every other slow request must count as suppressed — the split
        // `pops_slow_traces_total{outcome}` reports.
        let window = Duration::from_millis(150);
        let log = SlowLog::with_rate(Duration::ZERO, window);
        let t = RequestTrace::start(5, 1);
        let mut emitted = 0u64;
        let mut suppressed = 0u64;
        let mut count = |verdict: SlowVerdict| match verdict {
            SlowVerdict::Emit(_) => emitted += 1,
            SlowVerdict::Suppressed => suppressed += 1,
            SlowVerdict::Fast => panic!("zero threshold never judges fast"),
        };
        for _ in 0..10 {
            count(log.observe(&t));
        }
        std::thread::sleep(window + Duration::from_millis(30));
        for _ in 0..5 {
            count(log.observe(&t));
        }
        assert_eq!(emitted, 2, "one line per window");
        assert_eq!(
            suppressed, 13,
            "every other slow request is counted, none double-counted"
        );
    }

    #[test]
    fn emitted_line_carries_the_trace_id() {
        let log = SlowLog::new(Duration::ZERO);
        let mut t = RequestTrace::start(9, 4);
        t.stage("parse");
        let SlowVerdict::Emit(line) = log.observe(&t) else {
            panic!("zero threshold must emit");
        };
        assert!(line.contains("trace=c9-r4"), "{line}");
        assert!(line.contains("parse_us="), "{line}");
    }
}
