//! The two-level plan cache: sharded LRUs over canonically-keyed routing
//! outcomes and per-phase Theorem-2 plans.
//!
//! Real request streams repeat permutations — collective phases, BPC
//! families, hypercube simulation rounds — so the service fronts its
//! engine pool with a cache that converts the `2⌈d/g⌉`-slot construction
//! cost into a lookup. Values are `Arc`-shared, so a hit clones a pointer,
//! not a plan, and the same plan can be handed to any number of client
//! threads simultaneously.
//!
//! # Two levels
//!
//! * **Level 1** keys *whole requests* under [`canonical_key`] — a repeat
//!   of an identical request (any kind) is answered with the previously
//!   computed [`CachedOutcome`].
//! * **Level 2** keys *per-phase Theorem-2 plans* under [`phase_key`] (the
//!   completed permutation of one König phase). The Mei–Rizzi construction
//!   routes an h-relation as `h` completed permutations, so two different
//!   relations that share phases — e.g. the common permutation rounds of
//!   collectives — reuse each other's phase plans even though their
//!   level-1 keys differ. Plain `theorem2` requests populate level 2 too:
//!   a permutation routed once as a request later serves as a cached phase.
//!
//! # Canonical keys
//!
//! A key is the byte string `kind ‖ d ‖ g ‖ payload` ([`canonical_key`]):
//! the payload is the permutation image (or, for h-relations, the request
//! pairs **sorted**, so any ordering of the same multiset of requests hits
//! the same entry; for fault routing, the sorted fault list then the
//! image). Two requests collide only if they are semantically identical —
//! the map compares full key bytes, the hash is just the index. Any
//! differing image element, `d`, `g`, or kind changes the key. The format
//! is **stable**: it is also the on-disk key of the cache spill file
//! ([`crate::persist`]).
//!
//! # The LRU
//!
//! A slab-backed doubly-linked list threaded through a `HashMap`: `get`
//! and `insert` are O(1), eviction pops the list tail. No external
//! dependency and no unsafe.
//!
//! # Sharding
//!
//! A [`ShardedPlanCache`] splits one logical LRU into N key-hashed
//! [`PlanCache`] shards behind independent mutexes, so concurrent hits on
//! different shards never serialize — the single cache mutex was the
//! service's documented throughput ceiling above ~10⁶ hits/sec. Recency
//! and eviction are per shard (the hash spreads keys uniformly, so each
//! shard behaves like an LRU over its 1/N-th of the keyspace).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pops_core::RoutingOutcome;
use pops_permutation::Permutation;

use crate::metrics::RequestKind;
use crate::service::ServiceRequest;

const NIL: usize = usize::MAX;

/// Builds the canonical cache key of `req` on a POPS(d, g) service.
pub fn canonical_key(d: usize, g: usize, req: &ServiceRequest) -> Box<[u8]> {
    let mut key = Vec::with_capacity(16 + 4 * d * g);
    key.push(req.kind().index() as u8);
    key.extend_from_slice(&(d as u32).to_le_bytes());
    key.extend_from_slice(&(g as u32).to_le_bytes());
    let push_image = |key: &mut Vec<u8>, image: &[usize]| {
        for &v in image {
            key.extend_from_slice(&(v as u32).to_le_bytes());
        }
    };
    match req {
        ServiceRequest::Theorem2 { pi }
        | ServiceRequest::SingleSlot { pi }
        | ServiceRequest::Direct { pi }
        | ServiceRequest::Structured { pi } => push_image(&mut key, pi.as_slice()),
        ServiceRequest::HRelation { relation } => {
            let mut pairs: Vec<(usize, usize)> = relation.requests().to_vec();
            pairs.sort_unstable();
            key.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (src, dst) in pairs {
                key.extend_from_slice(&(src as u32).to_le_bytes());
                key.extend_from_slice(&(dst as u32).to_le_bytes());
            }
        }
        ServiceRequest::WithFaults { pi, faults } => {
            let mut failed: Vec<usize> = faults.iter_failed().collect();
            failed.sort_unstable();
            key.extend_from_slice(&(failed.len() as u32).to_le_bytes());
            for c in failed {
                key.extend_from_slice(&(c as u32).to_le_bytes());
            }
            push_image(&mut key, pi.as_slice());
        }
    }
    key.into_boxed_slice()
}

/// Builds the level-2 cache key of one routing *phase*: the completed
/// permutation a König phase routes by Theorem 2. Byte-identical to
/// [`canonical_key`] of a `Theorem2` request over the same permutation, so
/// a permutation routed as a plain request and the same permutation
/// appearing as an h-relation phase share one level-2 entry.
pub fn phase_key(d: usize, g: usize, completed: &Permutation) -> Box<[u8]> {
    let mut key = Vec::with_capacity(9 + 4 * d * g);
    key.push(RequestKind::Theorem2.index() as u8);
    key.extend_from_slice(&(d as u32).to_le_bytes());
    key.extend_from_slice(&(g as u32).to_le_bytes());
    for &v in completed.as_slice() {
        key.extend_from_slice(&(v as u32).to_le_bytes());
    }
    key.into_boxed_slice()
}

/// The cached value type: an immutable, thread-shareable routing outcome.
pub type CachedOutcome = Arc<RoutingOutcome>;

/// The level-2 cached value: one phase's Theorem-2 schedule. The `Arc`
/// makes the *lookup* a pointer clone; assembling an h-relation then
/// copies the hit's slots into the concatenated schedule (cheaper than
/// re-running the construction, which is what a miss pays).
pub type CachedPhase = Arc<pops_network::Schedule>;

struct Slot<V> {
    key: Box<[u8]>,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from canonical keys to values — one shard of
/// a [`ShardedPlanCache`] (the service instantiates the levels at
/// `V = `[`CachedOutcome`] and `V = `[`CachedPhase`]). Capacity 0
/// disables caching entirely.
///
/// ```
/// use pops_service::PlanCache;
///
/// let mut cache: PlanCache<u32> = PlanCache::new(2);
/// cache.insert(b"a".to_vec().into_boxed_slice(), 1);
/// cache.insert(b"b".to_vec().into_boxed_slice(), 2);
/// assert_eq!(cache.get(b"a"), Some(1)); // "a" is now most recent
/// cache.insert(b"c".to_vec().into_boxed_slice(), 3); // evicts "b"
/// assert_eq!(cache.get(b"b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<Box<[u8]>, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V: Clone> PlanCache<V> {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently-
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: Box<[u8]>, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Visits every entry from least- to most-recently used **without**
    /// touching recency — the spill path ([`crate::persist`]) writes
    /// entries in this order so a later restore, which inserts in file
    /// order, reproduces the same recency ranking.
    pub fn for_each_lru(&self, mut f: impl FnMut(&[u8], &V)) {
        let mut idx = self.tail;
        while idx != NIL {
            let slot = &self.slots[idx];
            f(&slot.key, &slot.value);
            idx = slot.prev;
        }
    }
}

impl<V> std::fmt::Debug for PlanCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .finish()
    }
}

/// FNV-1a over a byte string — the shard selector, and the integrity
/// checksum of the spill file ([`crate::persist`]). Any decent byte hash
/// works; FNV is dependency-free and two lines.
pub(crate) fn fnv1a64(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A concurrent LRU: N key-hashed [`PlanCache`] shards behind independent
/// mutexes. Hits on different shards proceed in parallel; total capacity
/// is split evenly across shards (remainder to the first shards), so the
/// logical capacity is exactly what was asked for.
///
/// ```
/// use pops_service::cache::ShardedPlanCache;
///
/// let cache: ShardedPlanCache<u32> = ShardedPlanCache::new(100, 8);
/// assert_eq!((cache.capacity(), cache.shard_count()), (100, 8));
/// cache.insert(b"plan".to_vec().into_boxed_slice(), 7);
/// assert_eq!(cache.get(b"plan"), Some(7));
/// assert_eq!(cache.get(b"other"), None);
/// assert_eq!(cache.len(), 1);
/// ```
pub struct ShardedPlanCache<V> {
    shards: Vec<Mutex<PlanCache<V>>>,
}

impl<V: Clone> ShardedPlanCache<V> {
    /// A cache of total capacity `capacity` split over `shards` shards
    /// (clamped to at least 1; capacity 0 disables caching entirely).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(capacity.max(1));
        let base = capacity / shards;
        let extra = capacity % shards;
        Self {
            shards: (0..shards)
                .map(|s| Mutex::new(PlanCache::new(base + usize::from(s < extra))))
                .collect(),
        }
    }

    /// Number of shards (independent locks).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total eviction capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).capacity()).sum()
    }

    /// Entries currently held across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| self.lock(s).is_empty())
    }

    fn lock<'a>(&self, shard: &'a Mutex<PlanCache<V>>) -> std::sync::MutexGuard<'a, PlanCache<V>> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn shard_of(&self, key: &[u8]) -> &Mutex<PlanCache<V>> {
        &self.shards[(fnv1a64(key) % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up in its shard, marking the entry most-recently-used
    /// there on a hit. Only that shard's lock is taken.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        self.lock(self.shard_of(key)).get(key)
    }

    /// Inserts (or refreshes) `key → value` in its shard, evicting that
    /// shard's least-recently-used entry if the shard is full.
    pub fn insert(&self, key: Box<[u8]>, value: V) {
        self.lock(self.shard_of(&key)).insert(key, value);
    }

    /// Drops every entry in every shard (capacities are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            self.lock(shard).clear();
        }
    }

    /// Visits every entry, shard by shard, least-recently-used first
    /// within each shard (see [`PlanCache::for_each_lru`]). Takes one
    /// shard lock at a time.
    pub fn for_each_lru(&self, mut f: impl FnMut(&[u8], &V)) {
        for shard in &self.shards {
            self.lock(shard).for_each_lru(&mut f);
        }
    }
}

impl<V> std::fmt::Debug for ShardedPlanCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPlanCache")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_core::HRelation;
    use pops_network::FaultSet;
    use pops_network::PopsTopology;
    use pops_permutation::families::vector_reversal;

    fn key_of(bytes: &[u8]) -> Box<[u8]> {
        bytes.to_vec().into_boxed_slice()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(key_of(b"a"), 1);
        cache.insert(key_of(b"b"), 2);
        assert_eq!(cache.get(b"a"), Some(1)); // a is now MRU
        cache.insert(key_of(b"c"), 3); // evicts b
        assert_eq!(cache.get(b"b"), None);
        assert_eq!(cache.get(b"a"), Some(1));
        assert_eq!(cache.get(b"c"), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(key_of(b"a"), 1);
        cache.insert(key_of(b"b"), 2);
        cache.insert(key_of(b"a"), 10); // refresh, a becomes MRU
        cache.insert(key_of(b"c"), 3); // evicts b
        assert_eq!(cache.get(b"a"), Some(10));
        assert_eq!(cache.get(b"b"), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: PlanCache<u32> = PlanCache::new(0);
        cache.insert(key_of(b"a"), 1);
        assert_eq!(cache.get(b"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_slots_are_reused() {
        let mut cache: PlanCache<u32> = PlanCache::new(3);
        for round in 0u32..50 {
            cache.insert(key_of(format!("k{round}").as_bytes()), round);
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.slots.len() <= 4, "slab must recycle evicted slots");
        assert_eq!(cache.get(b"k49"), Some(49));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn canonical_keys_separate_kinds_and_shapes() {
        let pi = vector_reversal(16);
        let theorem2 = ServiceRequest::Theorem2 { pi: pi.clone() };
        let direct = ServiceRequest::Direct { pi: pi.clone() };
        let k44 = canonical_key(4, 4, &theorem2);
        assert_eq!(
            k44,
            canonical_key(4, 4, &ServiceRequest::Theorem2 { pi: pi.clone() })
        );
        assert_ne!(k44, canonical_key(4, 4, &direct), "kind must separate");
        assert_ne!(
            k44,
            canonical_key(2, 8, &theorem2),
            "same n, different (d, g)"
        );
        assert_ne!(k44, canonical_key(8, 2, &theorem2));
    }

    #[test]
    fn h_relation_keys_canonicalize_request_order() {
        let a = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(0, 1), (2, 5), (1, 0)]).unwrap(),
        };
        let b = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(2, 5), (1, 0), (0, 1)]).unwrap(),
        };
        let c = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(2, 5), (1, 0), (0, 2)]).unwrap(),
        };
        assert_eq!(canonical_key(2, 3, &a), canonical_key(2, 3, &b));
        assert_ne!(canonical_key(2, 3, &a), canonical_key(2, 3, &c));
    }

    #[test]
    fn phase_key_matches_theorem2_canonical_key() {
        let pi = vector_reversal(16);
        assert_eq!(
            phase_key(4, 4, &pi),
            canonical_key(4, 4, &ServiceRequest::Theorem2 { pi: pi.clone() }),
            "phase keys must alias theorem2 request keys"
        );
        assert_ne!(phase_key(4, 4, &pi), phase_key(2, 8, &pi));
    }

    #[test]
    fn for_each_lru_walks_tail_to_head() {
        let mut cache: PlanCache<u32> = PlanCache::new(3);
        cache.insert(key_of(b"a"), 1);
        cache.insert(key_of(b"b"), 2);
        cache.insert(key_of(b"c"), 3);
        assert_eq!(cache.get(b"a"), Some(1)); // a becomes MRU
        let mut seen = Vec::new();
        cache.for_each_lru(|key, &v| seen.push((key.to_vec(), v)));
        assert_eq!(
            seen,
            vec![
                (b"b".to_vec(), 2), // LRU first
                (b"c".to_vec(), 3),
                (b"a".to_vec(), 1), // MRU last
            ]
        );
    }

    #[test]
    fn sharded_cache_round_trips_and_bounds_capacity() {
        let cache: ShardedPlanCache<u32> = ShardedPlanCache::new(10, 4);
        assert_eq!(cache.capacity(), 10, "capacity split must sum back");
        assert_eq!(cache.shard_count(), 4);
        for i in 0u32..100 {
            cache.insert(key_of(format!("k{i}").as_bytes()), i);
        }
        assert!(cache.len() <= 10, "len {} exceeds capacity", cache.len());
        assert!(!cache.is_empty());
        let mut visited = 0;
        cache.for_each_lru(|_, _| visited += 1);
        assert_eq!(visited, cache.len());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_cache_clamps_shards_to_capacity() {
        // 2 entries over 16 requested shards: no shard may get capacity 0,
        // which would silently drop inserts routed to it.
        let cache: ShardedPlanCache<u32> = ShardedPlanCache::new(2, 16);
        assert!(cache.shard_count() <= 2);
        for i in 0u32..20 {
            cache.insert(key_of(format!("k{i}").as_bytes()), i);
        }
        assert!((1..=2).contains(&cache.len()), "len {}", cache.len());
        // Zero capacity still disables caching, sharded or not.
        let off: ShardedPlanCache<u32> = ShardedPlanCache::new(0, 8);
        off.insert(key_of(b"a"), 1);
        assert_eq!(off.get(b"a"), None);
    }

    #[test]
    fn sharded_cache_is_concurrently_usable() {
        let cache: Arc<ShardedPlanCache<u64>> = Arc::new(ShardedPlanCache::new(256, 8));
        std::thread::scope(|scope| {
            for worker in 0u64..8 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = key_of(format!("w{worker}-{i}").as_bytes());
                        cache.insert(key.clone(), worker * 1000 + i);
                        // The entry may have been evicted by concurrent
                        // inserts, but a hit must never be a wrong value.
                        let got = cache.get(&key);
                        assert!(got.is_none() || got == Some(worker * 1000 + i));
                    }
                });
            }
        });
        assert!(cache.len() <= 256);
    }

    #[test]
    fn fault_keys_include_the_fault_set() {
        let t = PopsTopology::new(2, 3);
        let pi = vector_reversal(6);
        let none = FaultSet::none(&t);
        let mut one = FaultSet::none(&t);
        one.fail_coupler(3);
        let k_none = canonical_key(
            2,
            3,
            &ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: none,
            },
        );
        let k_one = canonical_key(
            2,
            3,
            &ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: one,
            },
        );
        assert_ne!(k_none, k_one);
    }
}
