//! The plan cache: an LRU over canonically-keyed routing outcomes.
//!
//! Real request streams repeat permutations — collective phases, BPC
//! families, hypercube simulation rounds — so the service fronts its
//! engine pool with a cache that converts the `2⌈d/g⌉`-slot construction
//! cost into a lookup. Values are `Arc`-shared, so a hit clones a pointer,
//! not a plan, and the same plan can be handed to any number of client
//! threads simultaneously.
//!
//! # Canonical keys
//!
//! A key is the byte string `kind ‖ d ‖ g ‖ payload` ([`canonical_key`]):
//! the payload is the permutation image (or, for h-relations, the request
//! pairs **sorted**, so any ordering of the same multiset of requests hits
//! the same entry; for fault routing, the sorted fault list then the
//! image). Two requests collide only if they are semantically identical —
//! the map compares full key bytes, the hash is just the index. Any
//! differing image element, `d`, `g`, or kind changes the key.
//!
//! # The LRU
//!
//! A slab-backed doubly-linked list threaded through a `HashMap`: `get`
//! and `insert` are O(1), eviction pops the list tail. No external
//! dependency and no unsafe.

use std::collections::HashMap;
use std::sync::Arc;

use pops_core::RoutingOutcome;

use crate::service::ServiceRequest;

const NIL: usize = usize::MAX;

/// Builds the canonical cache key of `req` on a POPS(d, g) service.
pub fn canonical_key(d: usize, g: usize, req: &ServiceRequest) -> Box<[u8]> {
    let mut key = Vec::with_capacity(16 + 4 * d * g);
    key.push(req.kind().index() as u8);
    key.extend_from_slice(&(d as u32).to_le_bytes());
    key.extend_from_slice(&(g as u32).to_le_bytes());
    let push_image = |key: &mut Vec<u8>, image: &[usize]| {
        for &v in image {
            key.extend_from_slice(&(v as u32).to_le_bytes());
        }
    };
    match req {
        ServiceRequest::Theorem2 { pi }
        | ServiceRequest::SingleSlot { pi }
        | ServiceRequest::Direct { pi }
        | ServiceRequest::Structured { pi } => push_image(&mut key, pi.as_slice()),
        ServiceRequest::HRelation { relation } => {
            let mut pairs: Vec<(usize, usize)> = relation.requests().to_vec();
            pairs.sort_unstable();
            key.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (src, dst) in pairs {
                key.extend_from_slice(&(src as u32).to_le_bytes());
                key.extend_from_slice(&(dst as u32).to_le_bytes());
            }
        }
        ServiceRequest::WithFaults { pi, faults } => {
            let mut failed: Vec<usize> = faults.iter_failed().collect();
            failed.sort_unstable();
            key.extend_from_slice(&(failed.len() as u32).to_le_bytes());
            for c in failed {
                key.extend_from_slice(&(c as u32).to_le_bytes());
            }
            push_image(&mut key, pi.as_slice());
        }
    }
    key.into_boxed_slice()
}

/// The cached value type: an immutable, thread-shareable routing outcome.
pub type CachedOutcome = Arc<RoutingOutcome>;

struct Slot<V> {
    key: Box<[u8]>,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from canonical keys to values (the service
/// instantiates it at `V = `[`CachedOutcome`]). Capacity 0 disables
/// caching entirely.
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<Box<[u8]>, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V: Clone> PlanCache<V> {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently-
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: Box<[u8]>, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl<V> std::fmt::Debug for PlanCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_core::HRelation;
    use pops_network::FaultSet;
    use pops_network::PopsTopology;
    use pops_permutation::families::vector_reversal;

    fn key_of(bytes: &[u8]) -> Box<[u8]> {
        bytes.to_vec().into_boxed_slice()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(key_of(b"a"), 1);
        cache.insert(key_of(b"b"), 2);
        assert_eq!(cache.get(b"a"), Some(1)); // a is now MRU
        cache.insert(key_of(b"c"), 3); // evicts b
        assert_eq!(cache.get(b"b"), None);
        assert_eq!(cache.get(b"a"), Some(1));
        assert_eq!(cache.get(b"c"), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(key_of(b"a"), 1);
        cache.insert(key_of(b"b"), 2);
        cache.insert(key_of(b"a"), 10); // refresh, a becomes MRU
        cache.insert(key_of(b"c"), 3); // evicts b
        assert_eq!(cache.get(b"a"), Some(10));
        assert_eq!(cache.get(b"b"), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: PlanCache<u32> = PlanCache::new(0);
        cache.insert(key_of(b"a"), 1);
        assert_eq!(cache.get(b"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_slots_are_reused() {
        let mut cache: PlanCache<u32> = PlanCache::new(3);
        for round in 0u32..50 {
            cache.insert(key_of(format!("k{round}").as_bytes()), round);
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.slots.len() <= 4, "slab must recycle evicted slots");
        assert_eq!(cache.get(b"k49"), Some(49));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn canonical_keys_separate_kinds_and_shapes() {
        let pi = vector_reversal(16);
        let theorem2 = ServiceRequest::Theorem2 { pi: pi.clone() };
        let direct = ServiceRequest::Direct { pi: pi.clone() };
        let k44 = canonical_key(4, 4, &theorem2);
        assert_eq!(
            k44,
            canonical_key(4, 4, &ServiceRequest::Theorem2 { pi: pi.clone() })
        );
        assert_ne!(k44, canonical_key(4, 4, &direct), "kind must separate");
        assert_ne!(
            k44,
            canonical_key(2, 8, &theorem2),
            "same n, different (d, g)"
        );
        assert_ne!(k44, canonical_key(8, 2, &theorem2));
    }

    #[test]
    fn h_relation_keys_canonicalize_request_order() {
        let a = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(0, 1), (2, 5), (1, 0)]).unwrap(),
        };
        let b = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(2, 5), (1, 0), (0, 1)]).unwrap(),
        };
        let c = ServiceRequest::HRelation {
            relation: HRelation::new(6, vec![(2, 5), (1, 0), (0, 2)]).unwrap(),
        };
        assert_eq!(canonical_key(2, 3, &a), canonical_key(2, 3, &b));
        assert_ne!(canonical_key(2, 3, &a), canonical_key(2, 3, &c));
    }

    #[test]
    fn fault_keys_include_the_fault_set() {
        let t = PopsTopology::new(2, 3);
        let pi = vector_reversal(6);
        let none = FaultSet::none(&t);
        let mut one = FaultSet::none(&t);
        one.fail_coupler(3);
        let k_none = canonical_key(
            2,
            3,
            &ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: none,
            },
        );
        let k_one = canonical_key(
            2,
            3,
            &ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: one,
            },
        );
        assert_ne!(k_none, k_one);
    }
}
