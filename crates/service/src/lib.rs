//! `pops-service` — Mei–Rizzi permutation routing as a **concurrent
//! service**: a sharded pool of warm zero-allocation engines behind an
//! LRU plan cache, a metrics registry, and a std-only TCP/JSON-lines
//! front door.
//!
//! # Why a service
//!
//! PR 1's [`pops_core::RoutingEngine`] made a single consumer fast; this
//! crate makes routing a shared facility. Real request streams repeat
//! permutations (collective phases, BPC families, hypercube simulation
//! rounds), so a canonical-key cache in front of warm engines converts
//! the `2⌈d/g⌉`-slot construction cost into an `Arc` clone — the
//! serve-many-queries-from-one-prepared-core shape.
//!
//! # Layers
//!
//! | module | role |
//! |---|---|
//! | [`pool`] | [`EnginePool`]: N warm engines, round-robin + overflow dispatch |
//! | [`cache`] | [`ShardedPlanCache`]: two-level canonical-key LRU (whole requests + per-phase plans), key-hashed lock shards |
//! | [`persist`] | cache spill/restore — the stable on-disk byte format behind `--cache-dir` |
//! | [`service`] | [`RoutingService`]: admission → cache L1/L2 → pool → metrics |
//! | [`router`] | [`TopologyRouter`]: `(d, g)` → lazily-built `RoutingService`, LRU-bounded — one daemon, many topologies |
//! | [`metrics`] | [`ServiceMetrics`]: lock-free counters + latency histograms, L1 vs L2 hit accounting |
//! | [`exposition`] | Prometheus text exposition — `GET /metrics` on the main listener or a `--metrics-port` sidecar |
//! | [`trace`] | per-request trace ids and stage timings, plus the rate-limited slow-request log |
//! | [`json`], [`proto`] | dependency-free JSON and the wire protocol (per-request topology selection, the `batch` op) |
//! | [`frame`] | opt-in length-prefixed binary framing, negotiated per connection with the `hello` op |
//! | [`server`], [`client`] | TCP front door (`pops serve` / `pops request`): JSON lines by default, binary frames after negotiation |
//! | [`record`] | versioned JSONL request traces: the `--record` tee, the `pops record` proxy, encode/parse |
//! | [`replay`] | trace replay over real TCP with simulator re-refereeing, SLO gates, and the synthetic-trace generator (`pops replay` / soak) |
//!
//! # Quickstart
//!
//! ```
//! use pops_network::PopsTopology;
//! use pops_permutation::families::vector_reversal;
//! use pops_service::{RoutingService, ServiceRequest};
//!
//! let service = RoutingService::new(PopsTopology::new(4, 4));
//! let req = ServiceRequest::Theorem2 { pi: vector_reversal(16) };
//! assert!(!service.route(&req).unwrap().cache_hit); // computed
//! assert!(service.route(&req).unwrap().cache_hit);  // served from cache
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod exposition;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod proto;
pub mod record;
pub mod replay;
pub mod router;
pub mod server;
pub mod service;
pub mod trace;

pub use cache::{
    canonical_key, phase_key, CachedOutcome, CachedPhase, PlanCache, ShardedPlanCache,
};
pub use client::{
    BatchItem, BatchItemError, BatchItemReply, BatchReply, BatchSummary, ClientError, RouteReply,
    ServerInfo, ServiceClient,
};
pub use json::{Json, JsonError, MAX_DEPTH};
pub use metrics::{MetricsSnapshot, PoolAcquisition, RequestKind, ServiceMetrics};
pub use persist::{PersistError, PersistSummary};
pub use pool::EnginePool;
pub use proto::{WireErrorKind, WireFormat};
pub use record::{
    read_trace, record_proxy, RecordProxySummary, RecordedBatchItem, RecordedOp, RecordedRequest,
    TraceError, TraceRecorder, TRACE_VERSION,
};
pub use replay::{run_replay, synth_trace, ReplayOptions, ReplayReport, SloGates};
pub use router::{DirLoadReport, RouterError, RouterStats, TopologyRouter, TopologyRouterConfig};
pub use server::{serve, serve_router, serve_with_config, ServerConfig, ServerSummary};
pub use service::{RoutingService, ServiceConfig, ServiceReply, ServiceRequest};
pub use trace::{RequestTrace, SlowLog, SlowVerdict};
