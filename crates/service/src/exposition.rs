//! Prometheus text exposition for the serving daemon.
//!
//! [`render`] turns the fleet-wide [`MetricsSnapshot`] (plus the
//! per-topology breakdown and the [`TopologyRouter`](crate::TopologyRouter)
//! registry counters) into the Prometheus text format, version 0.0.4:
//! every family is announced with `# HELP`/`# TYPE` lines, counters carry
//! the `_total` suffix, and the log₂ latency histograms become proper
//! cumulative-`le` histogram families. Metric names are part of the
//! operational contract — dashboards and alert rules reference them — so
//! treat renames like wire-protocol changes (see docs/OPERATIONS.md for
//! the full name table).
//!
//! Label conventions:
//!
//! - `kind="theorem2"` … — the request kind, on fleet request/latency
//!   families ([`RequestKind::name`](crate::RequestKind::name)).
//! - `topology="4x4"` — a resident `(d, g)` shape, on `pops_topology_*`
//!   families. Fleet totals intentionally live in *separate* families:
//!   per-topology series disappear when a shape is evicted, while the
//!   fleet families keep counting (the retired-topology ledger keeps them
//!   monotonic).
//! - `format="json"|"binary"` — the wire framing, on connection and byte
//!   counters.
//! - `error_kind="parse"|…|"overloaded"` — the typed wire-error kind on
//!   `pops_wire_errors_total` ([`WireErrorKind::name`]).
//! - `cause="watermark"|"quota"` — why overload control shed a request.
//!
//! The module also owns the minimal HTTP plumbing the server needs to
//! answer `GET /metrics` on its main listener or a `--metrics-port`
//! sidecar: [`http_request_path`] sniffs an HTTP request line apart from
//! the JSON/binary wire protocol, and [`http_ok`]/[`http_not_found`]
//! build complete `HTTP/1.0` close-delimited responses.

use std::fmt::Write as _;

use crate::metrics::{KindSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use crate::proto::WireErrorKind;
use crate::router::RouterStats;

/// The content type of the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The path the exposition is served under.
pub const METRICS_PATH: &str = "/metrics";

/// Everything [`render`] needs, borrowed from the server at scrape time.
#[derive(Debug)]
pub struct Exposition<'a> {
    /// The fleet-wide aggregate (every topology's registry absorbed, plus
    /// the retired-topology ledger and the connection layer) — the same
    /// snapshot the `stats` op reports at its top level.
    pub aggregate: &'a MetricsSnapshot,
    /// Per-resident-topology `(d, g, snapshot)` breakdown.
    pub topologies: &'a [(usize, usize, MetricsSnapshot)],
    /// Topology-registry counters.
    pub router: &'a RouterStats,
    /// The server's crate version, for `pops_build_info`.
    pub version: &'a str,
    /// Seconds since the server started, for `pops_uptime_seconds`.
    pub uptime_secs: u64,
}

/// Renders the full exposition document.
pub fn render(x: &Exposition<'_>) -> String {
    let mut out = String::with_capacity(8192);
    let snap = x.aggregate;

    family(
        &mut out,
        "pops_build_info",
        "gauge",
        "Constant 1, labelled with the server's crate version.",
    );
    sample(&mut out, "pops_build_info", &[("version", x.version)], 1);
    family(
        &mut out,
        "pops_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
    );
    sample(&mut out, "pops_uptime_seconds", &[], x.uptime_secs);

    family(
        &mut out,
        "pops_requests_total",
        "counter",
        "Single routing requests served, by request kind.",
    );
    for k in &snap.per_kind {
        sample(
            &mut out,
            "pops_requests_total",
            &[("kind", k.kind.name())],
            k.requests,
        );
    }
    family(
        &mut out,
        "pops_request_errors_total",
        "counter",
        "Routing requests that returned an error, by request kind.",
    );
    for k in &snap.per_kind {
        sample(
            &mut out,
            "pops_request_errors_total",
            &[("kind", k.kind.name())],
            k.errors,
        );
    }
    family(
        &mut out,
        "pops_request_duration_microseconds",
        "histogram",
        "Service latency of single routing requests, by request kind.",
    );
    for k in &snap.per_kind {
        histogram(
            &mut out,
            "pops_request_duration_microseconds",
            &[("kind", k.kind.name())],
            &k.latency,
            k.total_micros,
        );
    }

    family(
        &mut out,
        "pops_cache_hits_total",
        "counter",
        "Plan-cache hits: level l1 is whole plans, l2 is h-relation phases.",
    );
    sample(
        &mut out,
        "pops_cache_hits_total",
        &[("level", "l1")],
        snap.hits,
    );
    sample(
        &mut out,
        "pops_cache_hits_total",
        &[("level", "l2")],
        snap.phase_hits,
    );
    family(
        &mut out,
        "pops_cache_misses_total",
        "counter",
        "Plan-cache misses, by cache level.",
    );
    sample(
        &mut out,
        "pops_cache_misses_total",
        &[("level", "l1")],
        snap.misses,
    );
    sample(
        &mut out,
        "pops_cache_misses_total",
        &[("level", "l2")],
        snap.phase_misses,
    );
    family(
        &mut out,
        "pops_cache_entries",
        "gauge",
        "Plans currently cached, by cache level.",
    );
    sample(
        &mut out,
        "pops_cache_entries",
        &[("level", "l1")],
        snap.cache_entries,
    );
    sample(
        &mut out,
        "pops_cache_entries",
        &[("level", "l2")],
        snap.phase_cache_entries,
    );
    family(
        &mut out,
        "pops_cache_capacity",
        "gauge",
        "Plan-cache capacity, by cache level.",
    );
    sample(
        &mut out,
        "pops_cache_capacity",
        &[("level", "l1")],
        snap.cache_capacity,
    );
    sample(
        &mut out,
        "pops_cache_capacity",
        &[("level", "l2")],
        snap.phase_cache_capacity,
    );

    family(
        &mut out,
        "pops_slots_emitted_total",
        "counter",
        "Total slots across every schedule the service emitted.",
    );
    sample(
        &mut out,
        "pops_slots_emitted_total",
        &[],
        snap.slots_emitted,
    );
    family(
        &mut out,
        "pops_pool_acquisitions_total",
        "counter",
        "Engine-pool acquisitions, by outcome.",
    );
    sample(
        &mut out,
        "pops_pool_acquisitions_total",
        &[("outcome", "fast")],
        snap.pool_fast,
    );
    sample(
        &mut out,
        "pops_pool_acquisitions_total",
        &[("outcome", "overflow")],
        snap.pool_overflows,
    );
    sample(
        &mut out,
        "pops_pool_acquisitions_total",
        &[("outcome", "blocked")],
        snap.pool_blocked,
    );
    family(
        &mut out,
        "pops_admission_waits_total",
        "counter",
        "Requests that had to wait at the admission gate.",
    );
    sample(
        &mut out,
        "pops_admission_waits_total",
        &[],
        snap.admission_waits,
    );
    family(
        &mut out,
        "pops_batches_total",
        "counter",
        "Batch submissions.",
    );
    sample(&mut out, "pops_batches_total", &[], snap.batches);
    family(
        &mut out,
        "pops_batch_plans_total",
        "counter",
        "Plans produced by batch submissions.",
    );
    sample(&mut out, "pops_batch_plans_total", &[], snap.batch_plans);

    family(
        &mut out,
        "pops_connections_opened_total",
        "counter",
        "Connections accepted and handed to a handler.",
    );
    sample(
        &mut out,
        "pops_connections_opened_total",
        &[],
        snap.conns_opened,
    );
    family(
        &mut out,
        "pops_connections_closed_total",
        "counter",
        "Connections whose handler has exited.",
    );
    sample(
        &mut out,
        "pops_connections_closed_total",
        &[],
        snap.conns_closed,
    );
    family(
        &mut out,
        "pops_connections_rejected_total",
        "counter",
        "Connections refused at the capacity limit.",
    );
    sample(
        &mut out,
        "pops_connections_rejected_total",
        &[],
        snap.conns_rejected,
    );
    family(
        &mut out,
        "pops_connections_active",
        "gauge",
        "Connections currently live.",
    );
    sample(
        &mut out,
        "pops_connections_active",
        &[],
        snap.active_connections(),
    );
    family(
        &mut out,
        "pops_connections_format_total",
        "counter",
        "Connections by negotiated wire format (every connection starts \
         as json; binary counts successful hello negotiations).",
    );
    sample(
        &mut out,
        "pops_connections_format_total",
        &[("format", "json")],
        snap.json_connections(),
    );
    sample(
        &mut out,
        "pops_connections_format_total",
        &[("format", "binary")],
        snap.conns_binary,
    );
    family(
        &mut out,
        "pops_wire_bytes_total",
        "counter",
        "Wire traffic in bytes, by format and direction.",
    );
    for (format, bytes_in, bytes_out) in [
        ("json", snap.json_bytes_in, snap.json_bytes_out),
        ("binary", snap.binary_bytes_in, snap.binary_bytes_out),
    ] {
        sample(
            &mut out,
            "pops_wire_bytes_total",
            &[("format", format), ("direction", "in")],
            bytes_in,
        );
        sample(
            &mut out,
            "pops_wire_bytes_total",
            &[("format", format), ("direction", "out")],
            bytes_out,
        );
    }
    family(
        &mut out,
        "pops_oversized_lines_total",
        "counter",
        "Request lines rejected for exceeding the length cap.",
    );
    sample(
        &mut out,
        "pops_oversized_lines_total",
        &[],
        snap.oversized_lines,
    );
    family(
        &mut out,
        "pops_read_timeouts_total",
        "counter",
        "Connections dropped because a complete request never arrived in time.",
    );
    sample(
        &mut out,
        "pops_read_timeouts_total",
        &[],
        snap.read_timeouts,
    );

    family(
        &mut out,
        "pops_sheds_total",
        "counter",
        "Requests shed by overload control, by cause.",
    );
    sample(
        &mut out,
        "pops_sheds_total",
        &[("cause", "watermark")],
        snap.sheds_watermark,
    );
    sample(
        &mut out,
        "pops_sheds_total",
        &[("cause", "quota")],
        snap.sheds_quota,
    );
    family(
        &mut out,
        "pops_slow_traces_total",
        "counter",
        "Slow-request trace lines, by whether the rate limiter let them through.",
    );
    sample(
        &mut out,
        "pops_slow_traces_total",
        &[("outcome", "emitted")],
        snap.slow_traces,
    );
    sample(
        &mut out,
        "pops_slow_traces_total",
        &[("outcome", "suppressed")],
        snap.slow_traces_suppressed,
    );
    family(
        &mut out,
        "pops_wire_errors_total",
        "counter",
        "Typed error responses written on the wire, by error kind.",
    );
    for (kind, count) in WireErrorKind::ALL.into_iter().zip(snap.wire_errors) {
        sample(
            &mut out,
            "pops_wire_errors_total",
            &[("error_kind", kind.name())],
            count,
        );
    }

    family(
        &mut out,
        "pops_degraded_plans_total",
        "counter",
        "Plans computed by the greedy fault router under a non-empty fault set.",
    );
    sample(
        &mut out,
        "pops_degraded_plans_total",
        &[],
        snap.degraded_plans,
    );
    family(
        &mut out,
        "pops_degraded_hits_total",
        "counter",
        "Plan-cache hits answered from a degraded (fault-keyed) cache entry.",
    );
    sample(
        &mut out,
        "pops_degraded_hits_total",
        &[],
        snap.degraded_hits,
    );
    family(
        &mut out,
        "pops_unroutable_refusals_total",
        "counter",
        "Requests refused before planning because the fault set left the fabric not fully routable.",
    );
    sample(
        &mut out,
        "pops_unroutable_refusals_total",
        &[],
        snap.unroutable_refusals,
    );

    family(
        &mut out,
        "pops_arena_bytes",
        "gauge",
        "Engine-arena bytes across every resident topology's pool.",
    );
    sample(&mut out, "pops_arena_bytes", &[], snap.arena_bytes);

    family(
        &mut out,
        "pops_router_topologies",
        "gauge",
        "Topologies currently resident in the registry.",
    );
    sample(
        &mut out,
        "pops_router_topologies",
        &[],
        x.topologies.len() as u64,
    );
    family(
        &mut out,
        "pops_router_hits_total",
        "counter",
        "Registry lookups answered by an already-resident service.",
    );
    sample(&mut out, "pops_router_hits_total", &[], x.router.hits);
    family(
        &mut out,
        "pops_router_built_total",
        "counter",
        "Services constructed on demand.",
    );
    sample(&mut out, "pops_router_built_total", &[], x.router.built);
    family(
        &mut out,
        "pops_router_evictions_total",
        "counter",
        "Unpinned topologies evicted to make room.",
    );
    sample(
        &mut out,
        "pops_router_evictions_total",
        &[],
        x.router.evictions,
    );
    family(
        &mut out,
        "pops_router_rejections_total",
        "counter",
        "Registry lookups refused at capacity.",
    );
    sample(
        &mut out,
        "pops_router_rejections_total",
        &[],
        x.router.rejections,
    );

    // Per-topology families. These cover *resident* shapes only — series
    // vanish on eviction, which is why fleet totals live in the separate
    // (monotonic) families above.
    family(
        &mut out,
        "pops_topology_requests_total",
        "counter",
        "Single requests served by a resident topology.",
    );
    for (d, g, s) in x.topologies {
        let label = topology_label(*d, *g);
        sample(
            &mut out,
            "pops_topology_requests_total",
            &[("topology", &label)],
            s.requests(),
        );
    }
    family(
        &mut out,
        "pops_topology_errors_total",
        "counter",
        "Routing errors on a resident topology.",
    );
    for (d, g, s) in x.topologies {
        let label = topology_label(*d, *g);
        sample(
            &mut out,
            "pops_topology_errors_total",
            &[("topology", &label)],
            s.errors,
        );
    }
    family(
        &mut out,
        "pops_topology_cache_hits_total",
        "counter",
        "Level-1 plan-cache hits on a resident topology.",
    );
    for (d, g, s) in x.topologies {
        let label = topology_label(*d, *g);
        sample(
            &mut out,
            "pops_topology_cache_hits_total",
            &[("topology", &label)],
            s.hits,
        );
    }
    family(
        &mut out,
        "pops_topology_arena_bytes",
        "gauge",
        "Engine-arena bytes held by a resident topology's pool.",
    );
    for (d, g, s) in x.topologies {
        let label = topology_label(*d, *g);
        sample(
            &mut out,
            "pops_topology_arena_bytes",
            &[("topology", &label)],
            s.arena_bytes,
        );
    }
    family(
        &mut out,
        "pops_topology_request_duration_microseconds",
        "histogram",
        "Service latency on a resident topology, all request kinds merged.",
    );
    for (d, g, s) in x.topologies {
        let label = topology_label(*d, *g);
        let (buckets, total_micros) = merge_kind_histograms(&s.per_kind);
        histogram(
            &mut out,
            "pops_topology_request_duration_microseconds",
            &[("topology", &label)],
            &buckets,
            total_micros,
        );
    }

    out
}

/// The `topology` label value for a `(d, g)` shape: `"4x4"`.
pub fn topology_label(d: usize, g: usize) -> String {
    format!("{d}x{g}")
}

/// Sums the per-kind latency histograms into one bucket array, returning
/// `(buckets, total_micros)`.
fn merge_kind_histograms(kinds: &[KindSnapshot]) -> ([u64; HISTOGRAM_BUCKETS], u64) {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut total_micros = 0u64;
    for k in kinds {
        for (slot, add) in buckets.iter_mut().zip(&k.latency) {
            *slot += add;
        }
        total_micros += k.total_micros;
    }
    (buckets, total_micros)
}

/// Writes the `# HELP` / `# TYPE` header for one family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Writes one sample line: `name{k="v",...} value`.
fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    write_labels(out, labels);
    let _ = writeln!(out, " {value}");
}

/// Renders one log₂ histogram as cumulative `le` buckets plus `_sum` and
/// `_count`. Latencies are recorded in integer microseconds, so bucket
/// `i` (counting `2^(i-1) ≤ µs < 2^i`) has the **exact** inclusive upper
/// bound `2^i - 1`; the rendered bounds are `0, 1, 3, 7, …`.
fn histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    buckets: &[u64; HISTOGRAM_BUCKETS],
    sum_micros: u64,
) {
    let mut cumulative = 0u64;
    for (i, count) in buckets.iter().enumerate() {
        cumulative += count;
        let le = (1u64 << i) - 1;
        bucket_line(out, name, labels, &le.to_string(), cumulative);
    }
    bucket_line(out, name, labels, "+Inf", cumulative);
    out.push_str(name);
    out.push_str("_sum");
    write_labels(out, labels);
    let _ = writeln!(out, " {sum_micros}");
    out.push_str(name);
    out.push_str("_count");
    write_labels(out, labels);
    let _ = writeln!(out, " {cumulative}");
}

fn bucket_line(out: &mut String, name: &str, labels: &[(&str, &str)], le: &str, value: u64) {
    out.push_str(name);
    out.push_str("_bucket{");
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label(v));
    }
    let _ = writeln!(out, "le=\"{le}\"}} {value}");
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// If `line` is an HTTP GET request line (`GET <path> HTTP/1.x`, or a
/// bare `GET <path>`), returns the path (query string stripped). The
/// server uses this to tell a scraper apart from a JSON/binary wire
/// client: no JSON request starts with `GET `, and in the binary framing
/// the bytes `GET ` would be an implausibly huge little-endian length.
pub fn http_request_path(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("GET ")?;
    let path = rest.split_whitespace().next()?;
    let path = path.split('?').next().unwrap_or(path);
    if path.starts_with('/') {
        Some(path)
    } else {
        None
    }
}

/// A complete `HTTP/1.0 200` response carrying `body` with the
/// exposition content type. `HTTP/1.0` deliberately: the connection
/// closes after the response, which every scraper handles.
pub fn http_ok(body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// A complete `HTTP/1.0 404` response for any other path.
pub fn http_not_found() -> Vec<u8> {
    let body = "not found; try /metrics\n";
    format!(
        "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ServiceMetrics;
    use crate::RequestKind;

    fn demo_exposition() -> String {
        let m = ServiceMetrics::new();
        m.record_miss(RequestKind::Theorem2, 4, 100);
        m.record_hit(RequestKind::Theorem2, 3);
        m.record_hit(RequestKind::HRelation, 900);
        m.record_error(RequestKind::SingleSlot);
        m.record_shed(false);
        m.record_shed(true);
        m.record_wire_error(WireErrorKind::Overloaded);
        m.record_wire_bytes(true, 10, 20);
        m.record_degraded_plan();
        m.record_degraded_hit();
        m.record_degraded_hit();
        m.record_unroutable();
        let aggregate = m.snapshot();
        let per_topology = vec![
            (4, 4, m.snapshot()),
            (2, 8, ServiceMetrics::new().snapshot()),
        ];
        let router = RouterStats {
            hits: 5,
            built: 2,
            evictions: 1,
            rejections: 0,
        };
        render(&Exposition {
            aggregate: &aggregate,
            topologies: &per_topology,
            router: &router,
            version: "1.2.3",
            uptime_secs: 42,
        })
    }

    /// Strips histogram sample suffixes to recover the family name.
    fn family_of(sample_name: &str) -> &str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = sample_name.strip_suffix(suffix) {
                return base;
            }
        }
        sample_name
    }

    #[test]
    fn every_sample_is_preceded_by_its_type_and_families_are_unique() {
        let text = demo_exposition();
        let mut declared = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(declared.insert(name.to_string()), "duplicate family {name}");
            } else if !line.starts_with('#') && !line.is_empty() {
                let name_end = line.find(['{', ' ']).unwrap();
                let fam = family_of(&line[..name_end]);
                assert!(declared.contains(fam), "sample before # TYPE: {line}");
            }
        }
        assert!(declared.len() > 20, "expected a rich exposition");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = demo_exposition();
        let prefix = "pops_request_duration_microseconds_bucket{kind=\"theorem2\",";
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with(prefix)) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "buckets must be cumulative: {line}");
            last = value;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
                assert_eq!(value, 2, "theorem2 saw two requests");
            }
        }
        assert!(saw_inf, "+Inf bucket present");
        assert!(
            text.contains("pops_request_duration_microseconds_count{kind=\"theorem2\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pops_request_duration_microseconds_sum{kind=\"theorem2\"} 103"),
            "{text}"
        );
    }

    #[test]
    fn labels_cover_topology_format_and_error_kind() {
        let text = demo_exposition();
        assert!(
            text.contains("pops_topology_requests_total{topology=\"4x4\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("pops_topology_requests_total{topology=\"2x8\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("pops_wire_bytes_total{format=\"binary\",direction=\"out\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("pops_wire_errors_total{error_kind=\"overloaded\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pops_sheds_total{cause=\"watermark\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pops_sheds_total{cause=\"quota\"} 1"),
            "{text}"
        );
        assert!(text.contains("pops_degraded_plans_total 1"), "{text}");
        assert!(text.contains("pops_degraded_hits_total 2"), "{text}");
        assert!(text.contains("pops_unroutable_refusals_total 1"), "{text}");
        assert!(
            text.contains("pops_wire_errors_total{error_kind=\"unroutable\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("pops_topology_request_duration_microseconds_bucket{topology=\"4x4\",le=\"+Inf\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn build_info_and_uptime_are_present() {
        let text = demo_exposition();
        assert!(
            text.contains("pops_build_info{version=\"1.2.3\"} 1"),
            "{text}"
        );
        assert!(text.contains("pops_uptime_seconds 42"), "{text}");
        assert!(text.contains("pops_router_evictions_total 1"), "{text}");
        assert!(text.contains("pops_router_topologies 2"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn http_request_lines_are_recognised() {
        assert_eq!(http_request_path("GET /metrics HTTP/1.1"), Some("/metrics"));
        assert_eq!(
            http_request_path("GET /metrics?x=1 HTTP/1.0"),
            Some("/metrics")
        );
        assert_eq!(http_request_path("GET /other"), Some("/other"));
        assert_eq!(http_request_path("{\"op\":\"ping\"}"), None);
        assert_eq!(http_request_path("GET metrics"), None);
    }

    #[test]
    fn http_responses_are_complete() {
        let ok = http_ok("hello\n");
        let text = String::from_utf8(ok).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 6\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello\n"), "{text}");
        let nf = String::from_utf8(http_not_found()).unwrap();
        assert!(nf.starts_with("HTTP/1.0 404"), "{nf}");
    }
}
