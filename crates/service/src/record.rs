//! Workload **trace recording**: the versioned, append-only JSONL trace
//! format behind `pops serve --record <trace.jsonl>` and the standalone
//! `pops record` tee proxy, consumed by [`crate::replay`].
//!
//! # Trace format (version 1)
//!
//! A trace is a JSON-lines file. The first non-empty line is the header:
//!
//! ```text
//! {"pops-trace":1}
//! ```
//!
//! Every following non-empty line is one recorded request with a fixed,
//! canonical field order (so encode → decode → encode is byte-stable):
//!
//! ```text
//! {"t_us":N,"fmt":"json","op":"route","d":4,"g":4,"kind":"theorem2","perm":[...]}
//! {"t_us":N,"fmt":"binary","op":"route","d":4,"g":4,"kind":"faults","perm":[...],"faults":[3,7]}
//! {"t_us":N,"fmt":"json","op":"route","d":4,"g":4,"kind":"h-relation","requests":[[0,5],...]}
//! {"t_us":N,"fmt":"json","op":"batch","items":[{"d":4,"g":4,"perm":[...],"faults":[1]},...]}
//! {"t_us":N,"fmt":"binary","op":"cache","action":"stats"}
//! ```
//!
//! `t_us` is the request's arrival offset in microseconds since the
//! recorder started — replay preserves inter-arrival gaps (divided by its
//! rate multiplier) relative to the first record. `fmt` is the wire
//! format the request arrived on ([`WireFormat`] names), which replay
//! preserves per request. Only *planning-relevant* ops are recorded —
//! `route`, `batch`, and `cache` — because control ops (`ping`, `info`,
//! `stats`) carry no workload and replaying a recorded `shutdown` would
//! kill the replay target.
//!
//! Two canonicalisations happen at record time: a `theorem2` route whose
//! effective request-level fault set is empty is recorded as plain
//! `theorem2` (and a `faults`-kind request with an empty list likewise),
//! so `kind == "faults"` always carries a non-empty `faults` array; and
//! fault ids are the sorted, deduped coupler ids the protocol layer
//! already produced. Recorded faults are the **request's own** fault
//! declarations only — a server-side `--fault` baseline is composition
//! the replay target re-applies itself, so traces port across baselines.
//!
//! Recording is a pure tee: it never alters what is parsed, routed, or
//! answered (see `docs/PROTOCOL.md`). A write failure increments a
//! dropped-record counter instead of failing the request.

use std::collections::BTreeSet;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pops_network::PopsTopology;

use crate::frame::{self, TAG_BATCH, TAG_JSON, TAG_ROUTE};
use crate::json::Json;
use crate::metrics::RequestKind;
use crate::proto::{
    parse_request, requested_shape, BatchItemRequest, CacheAction, WireFormat, WireRequest,
};
use crate::server::{read_bounded_frame, read_bounded_line, FrameOutcome, LineOutcome};
use crate::service::ServiceRequest;

/// The trace format version this build writes and the only one it reads.
pub const TRACE_VERSION: u64 = 1;

/// The header's single key.
const HEADER_KEY: &str = "pops-trace";

/// Largest `d * g` a recorded shape may declare — matches the CLI's
/// topology cap, and bounds the scratch topology the proxy builds to
/// validate request bodies.
const MAX_RECORD_N: usize = 1 << 20;

/// Why a trace could not be read or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be opened or read.
    Io(String),
    /// The first non-empty line is not a `{"pops-trace":N}` header.
    MissingHeader(String),
    /// The header declares a version this build does not speak.
    UnsupportedVersion(u64),
    /// A record line is not a valid version-1 record.
    Malformed {
        /// 1-based line number in the trace file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::MissingHeader(reason) => {
                write!(
                    f,
                    "trace has no {{\"{HEADER_KEY}\":N}} header line: {reason}"
                )
            }
            TraceError::UnsupportedVersion(v) => write!(
                f,
                "trace version {v} is not supported (this build speaks version {TRACE_VERSION})"
            ),
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line} is malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One item of a recorded batch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedBatchItem {
    /// Processors per group of the item's topology.
    pub d: usize,
    /// Number of groups of the item's topology.
    pub g: usize,
    /// The permutation image.
    pub perm: Vec<usize>,
    /// The item's declared failed couplers (sorted, deduped; empty =
    /// healthy).
    pub faults: Vec<usize>,
}

/// The operation one trace record replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedOp {
    /// One `route` request.
    Route {
        /// Processors per group of the request's topology.
        d: usize,
        /// Number of groups of the request's topology.
        g: usize,
        /// The routing kind.
        kind: RequestKind,
        /// The permutation image (empty for h-relations).
        perm: Vec<usize>,
        /// The `(source, destination)` pairs of an h-relation (empty for
        /// permutation kinds).
        requests: Vec<(usize, usize)>,
        /// Request-level failed couplers (sorted, deduped; non-empty
        /// exactly when `kind` is [`RequestKind::WithFaults`]).
        faults: Vec<usize>,
    },
    /// One `batch` request.
    Batch {
        /// The batch's items, in submission order.
        items: Vec<RecordedBatchItem>,
    },
    /// One `cache` management request.
    Cache {
        /// The cache action ([`CacheAction`] wire name).
        action: CacheAction,
    },
}

/// One recorded request: when it arrived, on which wire format, and what
/// it asked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRequest {
    /// Arrival offset in microseconds since the recorder started.
    pub offset_us: u64,
    /// The wire format the request arrived on.
    pub format: WireFormat,
    /// The operation itself.
    pub op: RecordedOp,
}

/// The header line this build writes.
pub fn header_line() -> String {
    Json::Obj(vec![(HEADER_KEY.into(), Json::num(TRACE_VERSION as usize))]).to_string()
}

/// Parses a header line, returning the declared version (which must be
/// [`TRACE_VERSION`]).
pub fn parse_header(line: &str) -> Result<u64, TraceError> {
    let doc = Json::parse(line).map_err(|e| TraceError::MissingHeader(e.to_string()))?;
    let version = doc.get(HEADER_KEY).and_then(Json::as_u64).ok_or_else(|| {
        TraceError::MissingHeader(format!("missing integer field '{HEADER_KEY}'"))
    })?;
    if version != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(version)
}

fn usize_array(value: &Json, field: &str) -> Result<Vec<usize>, String> {
    let arr = value
        .as_arr()
        .ok_or_else(|| format!("field '{field}' must be an array"))?;
    arr.iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| format!("field '{field}' must hold non-negative integers"))
        })
        .collect()
}

fn pair_array(value: &Json) -> Result<Vec<(usize, usize)>, String> {
    let arr = value
        .as_arr()
        .ok_or("field 'requests' must be an array of [src, dst] pairs")?;
    arr.iter()
        .map(|entry| {
            entry
                .as_arr()
                .filter(|p| p.len() == 2)
                .and_then(|p| Some((p.first()?.as_usize()?, p.get(1)?.as_usize()?)))
                .ok_or_else(|| "field 'requests' entries must be [src, dst] pairs".to_string())
        })
        .collect()
}

fn shape_fields(doc: &Json) -> Result<(usize, usize), String> {
    let field = |name: &str| {
        doc.get(name)
            .and_then(Json::as_usize)
            .filter(|&v| v > 0)
            .ok_or_else(|| format!("field '{name}' must be a positive integer"))
    };
    let (d, g) = (field("d")?, field("g")?);
    match d.checked_mul(g) {
        Some(n) if n <= MAX_RECORD_N => Ok((d, g)),
        _ => Err(format!(
            "shape {d}x{g} exceeds the n <= {MAX_RECORD_N} record cap"
        )),
    }
}

fn parse_record_body(doc: &Json) -> Result<RecordedRequest, String> {
    let offset_us = doc
        .get("t_us")
        .and_then(Json::as_u64)
        .ok_or("missing integer field 't_us'")?;
    let fmt_name = doc
        .get("fmt")
        .and_then(Json::as_str)
        .ok_or("missing string field 'fmt'")?;
    let format = WireFormat::from_name(fmt_name)
        .ok_or_else(|| format!("unknown format '{fmt_name}' (json|binary)"))?;
    let op_name = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field 'op'")?;
    let op = match op_name {
        "route" => {
            let (d, g) = shape_fields(doc)?;
            let kind_name = doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing string field 'kind'")?;
            let kind = RequestKind::from_name(kind_name)
                .ok_or_else(|| format!("unknown request kind '{kind_name}'"))?;
            let faults = match doc.get("faults") {
                None => Vec::new(),
                Some(v) => usize_array(v, "faults")?,
            };
            match kind {
                RequestKind::WithFaults if faults.is_empty() => {
                    return Err(
                        "kind 'faults' records need a non-empty 'faults' array (empty \
                                fault sets are recorded as 'theorem2')"
                            .into(),
                    );
                }
                RequestKind::WithFaults => {}
                _ if !faults.is_empty() => {
                    return Err(format!(
                        "kind '{kind_name}' records carry no 'faults' (fault routes are \
                         recorded with kind 'faults')"
                    ));
                }
                _ => {}
            }
            if kind == RequestKind::HRelation {
                let pairs = doc
                    .get("requests")
                    .ok_or("h-relation records need a 'requests' array")?;
                let requests = pair_array(pairs)?;
                RecordedOp::Route {
                    d,
                    g,
                    kind,
                    perm: Vec::new(),
                    requests,
                    faults,
                }
            } else {
                let perm_value = doc.get("perm").ok_or("route records need a 'perm' array")?;
                let perm = usize_array(perm_value, "perm")?;
                RecordedOp::Route {
                    d,
                    g,
                    kind,
                    perm,
                    requests: Vec::new(),
                    faults,
                }
            }
        }
        "batch" => {
            let items = doc
                .get("items")
                .and_then(Json::as_arr)
                .ok_or("batch records need an 'items' array")?;
            if items.is_empty() {
                return Err("batch records need at least one item".into());
            }
            let mut decoded = Vec::with_capacity(items.len());
            for item in items {
                let (d, g) = shape_fields(item)?;
                let perm_value = item.get("perm").ok_or("batch items need a 'perm' array")?;
                let perm = usize_array(perm_value, "perm")?;
                let faults = match item.get("faults") {
                    None => Vec::new(),
                    Some(v) => usize_array(v, "faults")?,
                };
                decoded.push(RecordedBatchItem { d, g, perm, faults });
            }
            RecordedOp::Batch { items: decoded }
        }
        "cache" => {
            let name = doc
                .get("action")
                .and_then(Json::as_str)
                .ok_or("cache records need a string 'action'")?;
            let action = CacheAction::from_name(name)
                .ok_or_else(|| format!("unknown cache action '{name}' (save|load|stats)"))?;
            RecordedOp::Cache { action }
        }
        other => return Err(format!("unknown record op '{other}' (route|batch|cache)")),
    };
    Ok(RecordedRequest {
        offset_us,
        format,
        op,
    })
}

/// Parses one record line (`line_no` is 1-based, for error reporting).
pub fn parse_record(line_no: usize, line: &str) -> Result<RecordedRequest, TraceError> {
    let doc = Json::parse(line).map_err(|e| TraceError::Malformed {
        line: line_no,
        reason: e.to_string(),
    })?;
    parse_record_body(&doc).map_err(|reason| TraceError::Malformed {
        line: line_no,
        reason,
    })
}

/// Encodes one record as its canonical single-line JSON form.
pub fn encode_record(entry: &RecordedRequest) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("t_us".into(), Json::Num(entry.offset_us as f64)),
        ("fmt".into(), Json::str(entry.format.name())),
    ];
    match &entry.op {
        RecordedOp::Route {
            d,
            g,
            kind,
            perm,
            requests,
            faults,
        } => {
            fields.push(("op".into(), Json::str("route")));
            fields.push(("d".into(), Json::num(*d)));
            fields.push(("g".into(), Json::num(*g)));
            fields.push(("kind".into(), Json::str(kind.name())));
            if *kind == RequestKind::HRelation {
                fields.push((
                    "requests".into(),
                    Json::Arr(
                        requests
                            .iter()
                            .map(|&(s, t)| Json::Arr(vec![Json::num(s), Json::num(t)]))
                            .collect(),
                    ),
                ));
            } else {
                fields.push((
                    "perm".into(),
                    Json::Arr(perm.iter().map(|&v| Json::num(v)).collect()),
                ));
            }
            if !faults.is_empty() {
                fields.push((
                    "faults".into(),
                    Json::Arr(faults.iter().map(|&c| Json::num(c)).collect()),
                ));
            }
        }
        RecordedOp::Batch { items } => {
            fields.push(("op".into(), Json::str("batch")));
            fields.push((
                "items".into(),
                Json::Arr(
                    items
                        .iter()
                        .map(|item| {
                            let mut entry = vec![
                                ("d".into(), Json::num(item.d)),
                                ("g".into(), Json::num(item.g)),
                                (
                                    "perm".into(),
                                    Json::Arr(item.perm.iter().map(|&v| Json::num(v)).collect()),
                                ),
                            ];
                            if !item.faults.is_empty() {
                                entry.push((
                                    "faults".into(),
                                    Json::Arr(item.faults.iter().map(|&c| Json::num(c)).collect()),
                                ));
                            }
                            Json::Obj(entry)
                        })
                        .collect(),
                ),
            ));
        }
        RecordedOp::Cache { action } => {
            fields.push(("op".into(), Json::str("cache")));
            fields.push(("action".into(), Json::str(action.name())));
        }
    }
    Json::Obj(fields).to_string()
}

/// Parses a whole trace text: header first, then zero or more records.
/// Blank lines are skipped (append-friendly), anything else must parse.
pub fn parse_trace(text: &str) -> Result<Vec<RecordedRequest>, TraceError> {
    let mut entries = Vec::new();
    let mut saw_header = false;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            parse_header(line)?;
            saw_header = true;
            continue;
        }
        entries.push(parse_record(idx + 1, line)?);
    }
    if !saw_header {
        return Err(TraceError::MissingHeader("the trace is empty".into()));
    }
    Ok(entries)
}

/// Reads and parses a trace file.
pub fn read_trace(path: &Path) -> Result<Vec<RecordedRequest>, TraceError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    parse_trace(&text)
}

/// Builds the [`RecordedOp`] of one parsed route request. `d`/`g` are the
/// resolved shape the request selected. Empty effective fault sets are
/// canonicalised to `theorem2` (see the module docs).
pub fn recorded_route(d: usize, g: usize, req: &ServiceRequest) -> RecordedOp {
    let perm_route = |kind: RequestKind, pi: &pops_permutation::Permutation| RecordedOp::Route {
        d,
        g,
        kind,
        perm: pi.as_slice().to_vec(),
        requests: Vec::new(),
        faults: Vec::new(),
    };
    match req {
        ServiceRequest::Theorem2 { pi } => perm_route(RequestKind::Theorem2, pi),
        ServiceRequest::SingleSlot { pi } => perm_route(RequestKind::SingleSlot, pi),
        ServiceRequest::Direct { pi } => perm_route(RequestKind::Direct, pi),
        ServiceRequest::Structured { pi } => perm_route(RequestKind::Structured, pi),
        ServiceRequest::HRelation { relation } => RecordedOp::Route {
            d,
            g,
            kind: RequestKind::HRelation,
            perm: Vec::new(),
            requests: relation.requests().to_vec(),
            faults: Vec::new(),
        },
        ServiceRequest::WithFaults { pi, faults } => {
            let couplers = g.saturating_mul(g);
            let ids: Vec<usize> = (0..couplers).filter(|&c| faults.is_failed(c)).collect();
            if ids.is_empty() {
                perm_route(RequestKind::Theorem2, pi)
            } else {
                RecordedOp::Route {
                    d,
                    g,
                    kind: RequestKind::WithFaults,
                    perm: pi.as_slice().to_vec(),
                    requests: Vec::new(),
                    faults: ids,
                }
            }
        }
    }
}

/// Builds the [`RecordedOp`] of one parsed batch request. Items whose
/// permutation failed validation are skipped (the server answers them
/// with per-item errors; there is nothing to replay). Returns `None` when
/// no item survives.
pub fn recorded_batch(items: &[BatchItemRequest]) -> Option<RecordedOp> {
    let recorded: Vec<RecordedBatchItem> = items
        .iter()
        .filter_map(|item| {
            item.perm.as_ref().ok().map(|pi| RecordedBatchItem {
                d: item.d,
                g: item.g,
                perm: pi.as_slice().to_vec(),
                faults: item.faults.clone(),
            })
        })
        .collect();
    if recorded.is_empty() {
        None
    } else {
        Some(RecordedOp::Batch { items: recorded })
    }
}

/// Builds the [`RecordedOp`] of one cache management request.
pub fn recorded_cache(action: CacheAction) -> RecordedOp {
    RecordedOp::Cache { action }
}

/// A thread-safe append-only trace writer. Each record is written and
/// flushed as one line, so a crashed server loses at most the record
/// being written; write failures increment [`TraceRecorder::dropped`]
/// instead of failing the request being served (recording never alters
/// wire behavior).
#[derive(Debug)]
pub struct TraceRecorder {
    started: Instant,
    out: Mutex<BufWriter<std::fs::File>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// Opens (or creates) `path` in append mode, writing the version
    /// header if the file is empty. Appending to an existing trace keeps
    /// its header; offsets restart from this recorder's start instant.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let fresh = file.metadata()?.len() == 0;
        let mut out = BufWriter::new(file);
        if fresh {
            writeln!(out, "{}", header_line())?;
            out.flush()?;
        }
        Ok(Self {
            started: Instant::now(),
            out: Mutex::new(out),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Appends one record, stamped with the current offset.
    pub fn record(&self, format: WireFormat, op: RecordedOp) {
        let entry = RecordedRequest {
            offset_us: self.started.elapsed().as_micros() as u64,
            format,
            op,
        };
        let text = encode_record(&entry);
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match writeln!(out, "{text}").and_then(|_| out.flush()) {
            Ok(()) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records successfully written so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records lost to write failures so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// What a finished [`record_proxy`] loop saw.
#[derive(Debug, Clone, Copy)]
pub struct RecordProxySummary {
    /// Client connections proxied.
    pub connections: u64,
    /// Records successfully written to the trace.
    pub recorded: u64,
    /// Records lost to trace write failures.
    pub dropped: u64,
}

/// How long the proxy's accept loop sleeps between polls.
const PROXY_ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Line/frame cap the proxy enforces while teeing (matches the server
/// default, so the proxy never accepts what the upstream would refuse by
/// a wide margin).
const PROXY_MAX_BYTES: usize = 16 << 20;

/// Most concurrent proxied connections.
const PROXY_MAX_CONNS: usize = 256;

/// The standalone recording tee behind `pops record`: accepts client
/// connections on `listener`, pipes each byte-for-byte to (and from) the
/// upstream server at `upstream`, and appends every decodable `route` /
/// `batch` / `cache` request to `recorder` on the way through. `default`
/// is the upstream's default topology (learned from its `info` op), used
/// to resolve requests that omit `d`/`g`.
///
/// The proxy mirrors the protocol's format negotiation: it watches for a
/// successful `{"op":"hello","format":"binary"}` and switches its request
/// parser to frames, so binary traffic is recorded with full fidelity. A
/// forwarded `{"op":"shutdown"}` also stops the proxy (after the upstream
/// acknowledges and closes). Undecodable requests are forwarded verbatim
/// and simply not recorded — the tee never rejects traffic.
pub fn record_proxy(
    listener: TcpListener,
    upstream: SocketAddr,
    default: PopsTopology,
    recorder: Arc<TraceRecorder>,
) -> std::io::Result<RecordProxySummary> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut connections = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(PROXY_ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(PROXY_ACCEPT_POLL),
            Ok((client, _)) => {
                if live.load(Ordering::SeqCst) >= PROXY_MAX_CONNS as u64 {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                connections += 1;
                live.fetch_add(1, Ordering::SeqCst);
                let recorder = recorder.clone();
                let shutdown = shutdown.clone();
                let live_in_handler = live.clone();
                let spawned = std::thread::Builder::new()
                    .name("pops-record-conn".into())
                    .spawn(move || {
                        let _ = proxy_connection(client, upstream, &default, &recorder, &shutdown);
                        live_in_handler.fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(join) => handles.push(join),
                    Err(_) => {
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                handles.retain(|h| !h.is_finished());
            }
        }
    }
    for join in handles {
        let _ = join.join();
    }
    Ok(RecordProxySummary {
        connections,
        recorded: recorder.recorded(),
        dropped: recorder.dropped(),
    })
}

/// Pipes one client connection through the upstream, recording decodable
/// requests on the way. The response direction is a raw byte pump — the
/// proxy never parses (or delays) responses.
fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    default: &PopsTopology,
    recorder: &TraceRecorder,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let pump = {
        let mut from_server = server.try_clone()?;
        let mut to_client = client.try_clone()?;
        std::thread::Builder::new()
            .name("pops-record-pump".into())
            .spawn(move || {
                let mut buf = [0u8; 8192];
                loop {
                    match from_server.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        // lint: allow(panic-freedom) -- n <= buf.len() by the Read contract
                        Ok(n) => {
                            if to_client.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
                let _ = to_client.shutdown(Shutdown::Write);
            })?
    };
    let mut reader = BufReader::new(client.try_clone()?);
    let mut to_server = server.try_clone()?;
    let mut format = WireFormat::Json;
    loop {
        match format {
            WireFormat::Json => {
                match read_bounded_line(&mut reader, PROXY_MAX_BYTES, None, shutdown)? {
                    LineOutcome::Line(line) => {
                        let observed = observe_request_line(&line, format, default, recorder);
                        writeln!(to_server, "{line}")?;
                        to_server.flush()?;
                        match observed {
                            Observed::Shutdown => {
                                shutdown.store(true, Ordering::SeqCst);
                            }
                            Observed::BinaryHello => format = WireFormat::Binary,
                            Observed::Other => {}
                        }
                    }
                    LineOutcome::Eof
                    | LineOutcome::ShuttingDown
                    | LineOutcome::TooLong { .. }
                    | LineOutcome::TimedOut { .. } => break,
                }
            }
            WireFormat::Binary => {
                match read_bounded_frame(&mut reader, PROXY_MAX_BYTES, None, shutdown)? {
                    FrameOutcome::Frame(payload) => {
                        let observed = observe_frame(&payload, default, recorder);
                        frame::write_frame(&mut to_server, &payload)?;
                        to_server.flush()?;
                        if matches!(observed, Observed::Shutdown) {
                            shutdown.store(true, Ordering::SeqCst);
                        }
                    }
                    FrameOutcome::Eof
                    | FrameOutcome::ShuttingDown
                    | FrameOutcome::TooLong { .. }
                    | FrameOutcome::TimedOut { .. } => break,
                }
            }
        }
    }
    // FIN the upstream so it can wind the connection down; the pump exits
    // on the resulting EOF.
    let _ = to_server.shutdown(Shutdown::Write);
    let _ = pump.join();
    Ok(())
}

/// What the tee noticed about one forwarded request (beyond recording).
enum Observed {
    /// A shutdown op — the upstream (and therefore the proxy) is done.
    Shutdown,
    /// A successful-looking binary `hello` — switch the request parser.
    BinaryHello,
    /// Anything else.
    Other,
}

/// Parses one request line best-effort and records it if it is a
/// decodable `route`/`batch`/`cache` op.
fn observe_request_line(
    line: &str,
    format: WireFormat,
    default: &PopsTopology,
    recorder: &TraceRecorder,
) -> Observed {
    let Ok(doc) = Json::parse(line) else {
        return Observed::Other;
    };
    match doc.get("op").and_then(Json::as_str) {
        Some("shutdown") => Observed::Shutdown,
        Some("hello") => {
            if doc.get("format").and_then(Json::as_str) == Some(WireFormat::Binary.name()) {
                Observed::BinaryHello
            } else {
                Observed::Other
            }
        }
        Some("route") => {
            let Ok((d, g)) = requested_shape(&doc, default) else {
                return Observed::Other;
            };
            if d == 0 || g == 0 || d.checked_mul(g).is_none_or(|n| n > MAX_RECORD_N) {
                return Observed::Other;
            }
            let topology = PopsTopology::new(d, g);
            if let Ok(WireRequest::Route { req, .. }) = parse_request(&doc, &topology) {
                recorder.record(format, recorded_route(d, g, &req));
            }
            Observed::Other
        }
        Some("batch") => {
            if let Ok(WireRequest::Batch { items, .. }) = parse_request(&doc, default) {
                if let Some(op) = recorded_batch(&items) {
                    recorder.record(format, op);
                }
            }
            Observed::Other
        }
        Some("cache") => {
            if let Ok(WireRequest::Cache { action }) = parse_request(&doc, default) {
                recorder.record(format, recorded_cache(action));
            }
            Observed::Other
        }
        _ => Observed::Other,
    }
}

/// Parses one binary frame best-effort and records what it carries.
fn observe_frame(payload: &[u8], default: &PopsTopology, recorder: &TraceRecorder) -> Observed {
    let Some((&tag, body)) = payload.split_first() else {
        return Observed::Other;
    };
    match tag {
        TAG_JSON => match std::str::from_utf8(body) {
            Ok(line) => observe_request_line(line, WireFormat::Binary, default, recorder),
            Err(_) => Observed::Other,
        },
        TAG_ROUTE => {
            if let Ok(route) = frame::decode_route_request(body) {
                let (d, g) = match route.shape {
                    (0, 0) => (default.d(), default.g()),
                    shape => shape,
                };
                if let Ok(pi) = route.perm {
                    if d > 0
                        && g > 0
                        && d.checked_mul(g)
                            .is_some_and(|n| n <= MAX_RECORD_N && n == pi.len())
                    {
                        let req = match route.kind {
                            RequestKind::SingleSlot => ServiceRequest::SingleSlot { pi },
                            RequestKind::Direct => ServiceRequest::Direct { pi },
                            RequestKind::Structured => ServiceRequest::Structured { pi },
                            _ => ServiceRequest::Theorem2 { pi },
                        };
                        recorder.record(WireFormat::Binary, recorded_route(d, g, &req));
                    }
                }
            }
            Observed::Other
        }
        TAG_BATCH => {
            if let Ok((frame_items, _)) = frame::decode_batch_request(body) {
                let items: Vec<RecordedBatchItem> = frame_items
                    .into_iter()
                    .filter_map(|item| {
                        let (d, g) = match item.shape {
                            (0, 0) => (default.d(), default.g()),
                            shape => shape,
                        };
                        let pi = item.perm.ok()?;
                        if d == 0 || g == 0 || d.checked_mul(g) != Some(pi.len()) {
                            return None;
                        }
                        Some(RecordedBatchItem {
                            d,
                            g,
                            perm: pi.as_slice().to_vec(),
                            faults: Vec::new(),
                        })
                    })
                    .collect();
                if !items.is_empty() {
                    recorder.record(WireFormat::Binary, RecordedOp::Batch { items });
                }
            }
            Observed::Other
        }
        _ => Observed::Other,
    }
}

/// Distinct `(d, g)` shapes a trace touches, in sorted order — soak
/// reporting and the CLI summarise topology churn with this.
pub fn trace_shapes(entries: &[RecordedRequest]) -> Vec<(usize, usize)> {
    let mut shapes: BTreeSet<(usize, usize)> = BTreeSet::new();
    for entry in entries {
        match &entry.op {
            RecordedOp::Route { d, g, .. } => {
                shapes.insert((*d, *g));
            }
            RecordedOp::Batch { items } => {
                shapes.extend(items.iter().map(|item| (item.d, item.g)));
            }
            RecordedOp::Cache { .. } => {}
        }
    }
    shapes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_permutation::families::vector_reversal;

    fn sample_route() -> RecordedRequest {
        RecordedRequest {
            offset_us: 1234,
            format: WireFormat::Json,
            op: RecordedOp::Route {
                d: 4,
                g: 4,
                kind: RequestKind::WithFaults,
                perm: vector_reversal(16).as_slice().to_vec(),
                requests: Vec::new(),
                faults: vec![3, 7],
            },
        }
    }

    #[test]
    fn records_round_trip_byte_stable() {
        let entries = vec![
            sample_route(),
            RecordedRequest {
                offset_us: 2000,
                format: WireFormat::Binary,
                op: RecordedOp::Route {
                    d: 2,
                    g: 8,
                    kind: RequestKind::HRelation,
                    perm: Vec::new(),
                    requests: vec![(0, 5), (5, 0), (1, 1)],
                    faults: Vec::new(),
                },
            },
            RecordedRequest {
                offset_us: 3000,
                format: WireFormat::Json,
                op: RecordedOp::Batch {
                    items: vec![RecordedBatchItem {
                        d: 4,
                        g: 4,
                        perm: vector_reversal(16).as_slice().to_vec(),
                        faults: vec![1],
                    }],
                },
            },
            RecordedRequest {
                offset_us: 4000,
                format: WireFormat::Binary,
                op: RecordedOp::Cache {
                    action: CacheAction::Stats,
                },
            },
        ];
        for entry in &entries {
            let text = encode_record(entry);
            let back = parse_record(1, &text).unwrap();
            assert_eq!(&back, entry);
            assert_eq!(encode_record(&back), text, "encode is canonical");
        }
    }

    #[test]
    fn header_round_trips_and_wrong_versions_are_refused() {
        assert_eq!(parse_header(&header_line()).unwrap(), TRACE_VERSION);
        assert_eq!(
            parse_header("{\"pops-trace\":99}"),
            Err(TraceError::UnsupportedVersion(99))
        );
        assert!(matches!(
            parse_header("{\"something\":1}"),
            Err(TraceError::MissingHeader(_))
        ));
    }

    #[test]
    fn trace_without_header_is_refused() {
        let record = encode_record(&sample_route());
        assert!(matches!(
            parse_trace(&record),
            Err(TraceError::MissingHeader(_))
        ));
        let with_header = format!("{}\n{record}\n", header_line());
        assert_eq!(parse_trace(&with_header).unwrap().len(), 1);
    }

    #[test]
    fn empty_fault_sets_canonicalise_to_theorem2() {
        let t = PopsTopology::new(4, 4);
        let req = ServiceRequest::WithFaults {
            pi: vector_reversal(16),
            faults: pops_network::FaultSet::none(&t),
        };
        match recorded_route(4, 4, &req) {
            RecordedOp::Route { kind, faults, .. } => {
                assert_eq!(kind, RequestKind::Theorem2);
                assert!(faults.is_empty());
            }
            other => panic!("expected a route record, got {other:?}"),
        }
    }

    #[test]
    fn recorder_writes_header_once_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "pops-record-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let rec = TraceRecorder::create(&path).unwrap();
            rec.record(WireFormat::Json, sample_route().op);
            assert_eq!(rec.recorded(), 1);
            assert_eq!(rec.dropped(), 0);
        }
        {
            let rec = TraceRecorder::create(&path).unwrap();
            rec.record(
                WireFormat::Binary,
                RecordedOp::Cache {
                    action: CacheAction::Stats,
                },
            );
        }
        let entries = read_trace(&path).unwrap();
        assert_eq!(entries.len(), 2, "append keeps the single header");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().filter(|l| l.contains("pops-trace")).count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
