//! Plan-cache persistence: spill the two-level cache to disk and restore
//! it on startup, so a restarted server serves its first repeated request
//! as a cache hit instead of re-paying the construction cost.
//!
//! # File format (version 1)
//!
//! A single little-endian binary file, `plans.popscache` under the
//! server's `--cache-dir`:
//!
//! ```text
//! magic   b"POPSCACHE1\n"            (11 bytes)
//! d, g    u32 each                    the serving topology
//! l1, l2  u32 each                    entry counts per cache level
//! then l1 level-1 entries, then l2 level-2 entries, each:
//!   key_len u32, key bytes            the stable canonical key
//!   schedule:
//!     slot_count u32
//!     per slot:  tx_count u32
//!     per tx:    sender u32, coupler u32, packet u32,
//!                recv_count u32, receivers u32...
//! checksum u64                        FNV-1a of every preceding byte
//! ```
//!
//! Entries are written least-recently-used first **per shard** (shards
//! concatenated), so a restore into the same shard layout reproduces
//! each shard's recency ranking exactly; restoring into a different
//! shard count or a smaller capacity keeps an approximation of the
//! most-recent entries (eviction during the load is per-shard LRU, not
//! global). Values are stored as bare schedules — the part of an outcome
//! every consumer (the wire protocol, the phase assembler) actually
//! reads — so a restored level-1 entry answers with the identical
//! schedule and slot count but without construction artefacts or phase
//! lists, exactly like a `want_schedule` reply. Loading validates the
//! magic, version, topology, the trailing checksum, and every length
//! field against the remaining byte budget; any mismatch fails with a
//! message rather than a panic or a huge allocation (and the loader in
//! [`crate::service::RoutingService::load_cache`] additionally rejects
//! phase entries whose slot count is not the topology's Theorem-2 cost,
//! so a decoded-but-wrong file cannot poison the phase assembler).

use std::fmt;
use std::path::Path;

use pops_network::{Schedule, SlotFrame, Transmission};

/// The file magic, version included.
pub const CACHE_MAGIC: &[u8; 11] = b"POPSCACHE1\n";

/// The file name used under a `--cache-dir`.
pub const CACHE_FILE_NAME: &str = "plans.popscache";

/// Why a cache file could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache file invalid: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn bail<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError(msg.into()))
}

/// One persisted cache entry: the stable canonical key and the schedule
/// cached under it.
pub type CacheEntry = (Box<[u8]>, Schedule);

/// What a save or load touched — reported by the wire `cache` op and the
/// CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistSummary {
    /// Level-1 (whole-request) entries written or restored.
    pub l1_entries: usize,
    /// Level-2 (phase) entries written or restored.
    pub l2_entries: usize,
}

/// Appends `schedule` to `out` in the format above.
pub fn encode_schedule(schedule: &Schedule, out: &mut Vec<u8>) {
    let push = |out: &mut Vec<u8>, v: usize| out.extend_from_slice(&(v as u32).to_le_bytes());
    push(out, schedule.slots.len());
    for slot in &schedule.slots {
        push(out, slot.transmissions.len());
        for tx in &slot.transmissions {
            push(out, tx.sender);
            push(out, tx.coupler);
            push(out, tx.packet);
            push(out, tx.receivers.len());
            for &r in &tx.receivers {
                push(out, r);
            }
        }
    }
}

/// A bounds-checked little-endian cursor over the file bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Result<u32, PersistError> {
        let Some(chunk) = self
            .bytes
            .get(self.at..self.at + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
        else {
            return bail("truncated (expected a u32)");
        };
        self.at += 4;
        Ok(u32::from_le_bytes(chunk))
    }

    /// A count field, validated against the bytes that must still follow
    /// (`min_bytes_each` per counted item) so a corrupt count cannot
    /// trigger a huge allocation.
    fn count(&mut self, min_bytes_each: usize) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.at;
        if n.checked_mul(min_bytes_each)
            .is_none_or(|need| need > remaining)
        {
            return bail(format!("count {n} exceeds the remaining {remaining} bytes"));
        }
        Ok(n)
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], PersistError> {
        let Some(chunk) = self.bytes.get(self.at..self.at + len) else {
            return bail(format!("truncated (expected {len} bytes)"));
        };
        self.at += len;
        Ok(chunk)
    }
}

/// Decodes one schedule at the cursor.
fn decode_schedule(cur: &mut Cursor<'_>) -> Result<Schedule, PersistError> {
    let slot_count = cur.count(4)?;
    let mut schedule = Schedule::new();
    schedule.slots.reserve(slot_count);
    for _ in 0..slot_count {
        let tx_count = cur.count(16)?;
        let mut frame = SlotFrame::new();
        frame.transmissions.reserve(tx_count);
        for _ in 0..tx_count {
            let sender = cur.u32()? as usize;
            let coupler = cur.u32()? as usize;
            let packet = cur.u32()? as usize;
            let recv_count = cur.count(4)?;
            let mut receivers = Vec::with_capacity(recv_count);
            for _ in 0..recv_count {
                receivers.push(cur.u32()? as usize);
            }
            frame.transmissions.push(Transmission {
                sender,
                coupler,
                packet,
                receivers: receivers.into(),
            });
        }
        schedule.slots.push(frame);
    }
    Ok(schedule)
}

/// Serializes the two cache levels into the version-1 byte format.
/// `l1`/`l2` yield `(key, schedule)` pairs least-recently-used first.
pub fn encode_cache_file(d: usize, g: usize, l1: &[CacheEntry], l2: &[CacheEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CACHE_MAGIC);
    out.extend_from_slice(&(d as u32).to_le_bytes());
    out.extend_from_slice(&(g as u32).to_le_bytes());
    out.extend_from_slice(&(l1.len() as u32).to_le_bytes());
    out.extend_from_slice(&(l2.len() as u32).to_le_bytes());
    for (key, schedule) in l1.iter().chain(l2) {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        encode_schedule(schedule, &mut out);
    }
    let checksum = crate::cache::fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// The decoded contents of a cache file: level-1 then level-2 entries,
/// each in write (LRU-first) order.
#[derive(Debug)]
pub struct DecodedCacheFile {
    /// Level-1 `(canonical key, schedule)` entries.
    pub l1: Vec<CacheEntry>,
    /// Level-2 `(phase key, schedule)` entries.
    pub l2: Vec<CacheEntry>,
}

/// Decodes a version-1 cache file, validating the magic and that it was
/// written for the `POPS(d, g)` topology being served.
pub fn decode_cache_file(
    bytes: &[u8],
    d: usize,
    g: usize,
) -> Result<DecodedCacheFile, PersistError> {
    if bytes.len() < CACHE_MAGIC.len() + 8 || &bytes[..CACHE_MAGIC.len()] != CACHE_MAGIC {
        return bail("bad magic (not a POPSCACHE1 file)");
    }
    // The trailing checksum guards against bit rot and truncated writes:
    // a corrupted-but-structurally-plausible file must not decode.
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let Ok(trailer) = <[u8; 8]>::try_from(trailer) else {
        return bail("truncated trailer");
    };
    let expect = u64::from_le_bytes(trailer);
    let got = crate::cache::fnv1a64(body);
    if got != expect {
        return bail(format!("checksum mismatch ({got:#018x} != {expect:#018x})"));
    }
    let bytes = body;
    let mut cur = Cursor {
        bytes,
        at: CACHE_MAGIC.len(),
    };
    let (file_d, file_g) = (cur.u32()? as usize, cur.u32()? as usize);
    if (file_d, file_g) != (d, g) {
        return bail(format!(
            "written for POPS({file_d}, {file_g}), serving POPS({d}, {g})"
        ));
    }
    // Each entry is at least key_len (4) + slot_count (4) bytes.
    let l1_count = cur.count(8)?;
    let l2_count = cur.count(8)?;
    let mut decode_entries = |count: usize| -> Result<Vec<CacheEntry>, PersistError> {
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let key_len = cur.count(1)?;
            let key: Box<[u8]> = cur.take(key_len)?.into();
            let schedule = decode_schedule(&mut cur)?;
            entries.push((key, schedule));
        }
        Ok(entries)
    };
    let l1 = decode_entries(l1_count)?;
    let l2 = decode_entries(l2_count)?;
    if cur.at != bytes.len() {
        return bail(format!("{} trailing bytes", bytes.len() - cur.at));
    }
    Ok(DecodedCacheFile { l1, l2 })
}

/// The cache-file path under a `--cache-dir`.
///
/// This is the **legacy single-topology** name (pre-multi-topology
/// servers wrote exactly one file). Multi-topology servers write one file
/// per topology ([`topology_file_path`]); loaders should scan the
/// directory ([`scan_cache_dir`]) and match files by their *stamped*
/// topology, not by name, so both layouts restore.
pub fn cache_file_path(dir: &Path) -> std::path::PathBuf {
    dir.join(CACHE_FILE_NAME)
}

/// The per-topology cache-file name, e.g. `plans-4x4.popscache` for
/// POPS(4, 4).
pub fn topology_file_name(d: usize, g: usize) -> String {
    format!("plans-{d}x{g}.popscache")
}

/// The per-topology cache-file path under a `--cache-dir`.
pub fn topology_file_path(dir: &Path, d: usize, g: usize) -> std::path::PathBuf {
    dir.join(topology_file_name(d, g))
}

/// Reads the `(d, g)` topology stamp out of a cache file's header without
/// decoding (or checksumming) the body — how a directory scan decides
/// which registered topology a file belongs to. Full validation still
/// happens at load time.
pub fn peek_topology(bytes: &[u8]) -> Result<(usize, usize), PersistError> {
    if bytes.len() < CACHE_MAGIC.len() + 8 || &bytes[..CACHE_MAGIC.len()] != CACHE_MAGIC {
        return bail("bad magic (not a POPSCACHE1 file)");
    }
    let mut cur = Cursor {
        bytes,
        at: CACHE_MAGIC.len(),
    };
    Ok((cur.u32()? as usize, cur.u32()? as usize))
}

/// Every `*.popscache` file in `dir` with the topology its header stamps,
/// sorted by file name for deterministic load order. Files whose header
/// does not parse are reported with the error instead of being dropped
/// silently — the caller decides whether to warn or fail.
#[allow(clippy::type_complexity)]
pub fn scan_cache_dir(
    dir: &Path,
) -> std::io::Result<Vec<(std::path::PathBuf, Result<(usize, usize), PersistError>)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("popscache") {
            continue;
        }
        // Only the fixed-size header is read here — the full file (which
        // can be many MBs) is read once, at load time, by whoever decides
        // this topology matches.
        let mut header = [0u8; CACHE_MAGIC.len() + 8];
        let peeked = match std::fs::File::open(&path)
            .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut header))
        {
            Ok(()) => peek_topology(&header),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                bail("truncated (shorter than the header)")
            }
            Err(e) => Err(PersistError(format!("unreadable: {e}"))),
        };
        found.push((path, peeked));
    }
    found.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> Schedule {
        Schedule {
            slots: vec![
                SlotFrame {
                    transmissions: vec![
                        Transmission::unicast(0, 3, 0, 5),
                        Transmission {
                            sender: 1,
                            coupler: 2,
                            packet: 1,
                            receivers: vec![4, 6, 7].into(),
                        },
                    ],
                },
                SlotFrame {
                    transmissions: vec![],
                },
            ],
        }
    }

    fn key_of(bytes: &[u8]) -> Box<[u8]> {
        bytes.to_vec().into_boxed_slice()
    }

    #[test]
    fn schedule_codec_round_trips() {
        let schedule = sample_schedule();
        let mut bytes = Vec::new();
        encode_schedule(&schedule, &mut bytes);
        let mut cur = Cursor {
            bytes: &bytes,
            at: 0,
        };
        let decoded = decode_schedule(&mut cur).unwrap();
        assert_eq!(decoded, schedule);
        assert_eq!(cur.at, bytes.len(), "codec must consume exactly");
    }

    #[test]
    fn cache_file_round_trips_both_levels() {
        let l1 = vec![(key_of(b"req-1"), sample_schedule())];
        let l2 = vec![
            (key_of(b"phase-a"), sample_schedule()),
            (key_of(b"phase-b"), Schedule::new()),
        ];
        let bytes = encode_cache_file(4, 4, &l1, &l2);
        let decoded = decode_cache_file(&bytes, 4, 4).unwrap();
        assert_eq!(decoded.l1, l1);
        assert_eq!(decoded.l2, l2);
    }

    #[test]
    fn load_rejects_wrong_topology() {
        let bytes = encode_cache_file(4, 4, &[], &[]);
        let err = decode_cache_file(&bytes, 2, 8).unwrap_err();
        assert!(err.to_string().contains("POPS(4, 4)"), "{err}");
    }

    #[test]
    fn load_rejects_garbage_and_truncation() {
        assert!(decode_cache_file(b"not a cache file", 4, 4).is_err());
        let good = encode_cache_file(4, 4, &[(key_of(b"k"), sample_schedule())], &[]);
        for cut in [5, CACHE_MAGIC.len() + 2, good.len() - 1] {
            assert!(
                decode_cache_file(&good[..cut], 4, 4).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_cache_file(&trailing, 4, 4).is_err());
    }

    #[test]
    fn hostile_counts_cannot_force_huge_allocations() {
        // A file claiming 2^31 entries in a few bytes must fail fast on
        // the count-vs-remaining-bytes check, not try to allocate. (The
        // checksum is made valid so the count check is what fires.)
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CACHE_MAGIC);
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // l1 count
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let checksum = crate::cache::fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode_cache_file(&bytes, 4, 4).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn peek_reads_the_topology_stamp_without_decoding() {
        let bytes = encode_cache_file(6, 3, &[(key_of(b"k"), sample_schedule())], &[]);
        assert_eq!(peek_topology(&bytes).unwrap(), (6, 3));
        // Peek works even when the body is corrupt (checksum broken)...
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert_eq!(peek_topology(&corrupt).unwrap(), (6, 3));
        // ...but not when the header itself is damaged or missing.
        assert!(peek_topology(b"not a cache file").is_err());
        assert!(peek_topology(&bytes[..CACHE_MAGIC.len() + 3]).is_err());
    }

    #[test]
    fn scan_finds_popscache_files_and_flags_garbage() {
        let dir = std::env::temp_dir().join(format!(
            "pops-persist-scan-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(topology_file_name(4, 4)),
            encode_cache_file(4, 4, &[], &[]),
        )
        .unwrap();
        std::fs::write(
            dir.join(topology_file_name(2, 8)),
            encode_cache_file(2, 8, &[], &[]),
        )
        .unwrap();
        std::fs::write(dir.join("junk.popscache"), b"garbage").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"ignored").unwrap();

        let scanned = scan_cache_dir(&dir).unwrap();
        assert_eq!(scanned.len(), 3, "only .popscache files are scanned");
        let shape_of = |name: &str| {
            scanned
                .iter()
                .find(|(p, _)| p.file_name().unwrap().to_str() == Some(name))
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        assert_eq!(shape_of("plans-4x4.popscache"), Ok((4, 4)));
        assert_eq!(shape_of("plans-2x8.popscache"), Ok((2, 8)));
        assert!(shape_of("junk.popscache").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let good = encode_cache_file(4, 4, &[(key_of(b"k"), sample_schedule())], &[]);
        for at in [CACHE_MAGIC.len() + 9, good.len() / 2, good.len() - 9] {
            let mut corrupt = good.clone();
            corrupt[at] ^= 0x40;
            let err = decode_cache_file(&corrupt, 4, 4).unwrap_err();
            assert!(err.to_string().contains("checksum"), "flip at {at}: {err}");
        }
    }
}
