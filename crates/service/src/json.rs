//! A minimal JSON value, parser, and writer — exactly the surface the
//! service's line protocol needs, with no external dependency.
//!
//! Objects preserve insertion order (they are stored as a pair list), so
//! encoded responses are deterministic and greppable in tests and CI.

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts. Deeper
/// documents are rejected with a [`JsonError`] instead of recursing —
/// without this cap a hostile line of `[[[[…` drives the parser into a
/// stack overflow (an abort, not a catchable error).
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol only uses non-negative integers, which are
    /// exact in an `f64` up to 2⁵³ — far beyond any id in this workspace).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an order-preserving pair list.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an integer.
    pub fn num(n: usize) -> Self {
        Json::Num(n as f64)
    }

    /// Convenience constructor for a string.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(at: usize, msg: impl Into<String>) -> JsonError {
    JsonError {
        at,
        msg: msg.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(fail(*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            if depth >= MAX_DEPTH {
                return Err(fail(
                    *pos,
                    format!("nesting deeper than {MAX_DEPTH} levels"),
                ));
            }
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(fail(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            if depth >= MAX_DEPTH {
                return Err(fail(
                    *pos,
                    format!("nesting deeper than {MAX_DEPTH} levels"),
                ));
            }
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(fail(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(fail(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| fail(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| fail(start, format!("invalid number '{text}'")))
}

/// Reads the four hex digits of a `\uXXXX` escape, with `*pos` on the
/// `u`; leaves `*pos` on the last digit (the caller's `*pos += 1` steps
/// past it).
fn parse_u_escape(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(*pos + 1..*pos + 5)
        .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
    let code = u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| fail(*pos, "non-ASCII \\u escape"))?,
        16,
    )
    .map_err(|_| fail(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(code)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_u_escape(bytes, pos)?;
                        let scalar = match code {
                            // A high surrogate must pair with a following
                            // `\uXXXX` low surrogate (RFC 8259 §7).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(fail(*pos, "unpaired high surrogate"));
                                }
                                *pos += 2;
                                let low = parse_u_escape(bytes, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(fail(*pos, "invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => return Err(fail(*pos, "unpaired low surrogate")),
                            code => code,
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| fail(*pos, "\\u escape is not a scalar value"))?,
                        );
                    }
                    _ => return Err(fail(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| fail(*pos, "invalid UTF-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| fail(*pos, "invalid UTF-8 in string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let doc = r#"{"op":"route","kind":"theorem2","perm":[3,2,1,0],"want_schedule":true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("route"));
        assert_eq!(v.get("perm").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("want_schedule").unwrap().as_bool(), Some(true));
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::num(1048576).to_string(), "1048576");
        assert_eq!(Json::Num(0.0).to_string(), "0");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"slash\\tab\tunicode\u{2603}";
        let encoded = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse(r#""A☃""#).unwrap().as_str(), Some("A\u{2603}"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        // What e.g. Python's json.dumps("\U0001F600") emits
        // (ensure_ascii): a \uXXXX\uXXXX surrogate pair.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        // BMP escapes still decode singly.
        assert_eq!(
            Json::parse("\"\\u2603\"").unwrap().as_str(),
            Some("\u{2603}")
        );
        // Lone or malformed surrogates are rejected.
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83dx\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn numbers_validate_integrality() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_usize(), Some(42));
    }

    #[test]
    fn depth_guard_rejects_hostile_nesting_without_overflowing() {
        // Unbalanced: a hostile stream of open brackets.
        let bombs = ["[".repeat(100_000), "{\"k\":".repeat(100_000)];
        for bomb in &bombs {
            let err = Json::parse(bomb).unwrap_err();
            assert!(err.msg.contains("nesting"), "{err}");
        }
        // Balanced but too deep: also rejected, not parsed.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&deep).is_err());
        // Exactly at the limit: still accepted.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"a":[[0,1],[2,3]],"b":{"c":null}}"#).unwrap();
        let rows = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_arr().unwrap()[0].as_usize(), Some(2));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }
}
