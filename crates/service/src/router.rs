//! The topology router: one daemon, many POPS(d, g) shapes.
//!
//! A [`RoutingService`] is pinned to **one** topology — its engine pool,
//! both cache levels, and its canonical keys are all shaped by `(d, g)`.
//! Fronting a heterogeneous cluster therefore used to mean one daemon per
//! shape. A [`TopologyRouter`] lifts that: it is a registry mapping
//! `(d, g)` to a lazily-constructed `RoutingService`, so the per-request
//! `d`/`g` fields of the wire protocol *select a backend* instead of
//! being validated against a single fixed shape.
//!
//! # Admission and eviction
//!
//! The registry is bounded by `max_topologies` (the `--max-topologies`
//! flag): a warm service holds real memory (warm engine arenas, two cache
//! levels), so without a bound a hostile client could mint services until
//! the process dies. Within the bound:
//!
//! * the **default** topology (the `--d`/`--g` the server was started
//!   with) and every **pre-warmed** topology (`--topology` flags) are
//!   *pinned* — never evicted;
//! * dynamically admitted topologies are evicted **least-recently-used**
//!   when a new shape needs their slot;
//! * when every slot is pinned, new shapes are refused with
//!   [`RouterError::AtCapacity`] — the wire's `topology-limit` error;
//! * shapes with `d == 0`, `g == 0`, or `n > max_n` are refused outright
//!   ([`RouterError::BadShape`]) before any allocation — and dynamic
//!   (non-operator) admissions additionally require `g² ≤ max_n`,
//!   because warming a service allocates O(g²) engine scratch and the
//!   `n` bound alone would let `d = 1, g = 2^20` order terabytes.
//!
//! Handed-out services are `Arc`s, so evicting a topology never yanks it
//! from under an in-flight request — the registry just drops its
//! reference and the service dies with its last holder.
//!
//! ```
//! use pops_network::PopsTopology;
//! use pops_service::{ServiceConfig, TopologyRouter, TopologyRouterConfig};
//!
//! let router = TopologyRouter::new(
//!     PopsTopology::new(4, 4),
//!     TopologyRouterConfig {
//!         service: ServiceConfig { shards: 1, ..ServiceConfig::default() },
//!         max_topologies: 2,
//!         ..TopologyRouterConfig::default()
//!     },
//! );
//! // The default shape is pinned and already registered.
//! assert_eq!(router.len(), 1);
//! // A new shape is admitted lazily...
//! let svc = router.get(2, 8).unwrap();
//! assert_eq!((svc.topology().d(), svc.topology().g()), (2, 8));
//! // ...and the same shape comes back as the same service.
//! assert!(std::sync::Arc::ptr_eq(&svc, &router.get(2, 8).unwrap()));
//! // A third shape evicts the cold POPS(2, 8), never the pinned default.
//! router.get(8, 2).unwrap();
//! assert_eq!(router.len(), 2);
//! assert!(router.peek(4, 4).is_some(), "default is pinned");
//! assert!(router.peek(2, 8).is_none(), "cold shape was evicted");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pops_network::PopsTopology;

use crate::metrics::MetricsSnapshot;
use crate::persist::{self, PersistSummary};
use crate::service::{RoutingService, ServiceConfig};

/// Tuning of a [`TopologyRouter`].
#[derive(Debug, Clone)]
pub struct TopologyRouterConfig {
    /// The template every lazily-constructed [`RoutingService`] is built
    /// from (shards, cache capacities, admission bound, colourer).
    pub service: ServiceConfig,
    /// Most topologies resident at once (pinned ones included). Dynamic
    /// topologies beyond this evict the least-recently-used unpinned one;
    /// when all slots are pinned, new shapes are refused.
    pub max_topologies: usize,
    /// Largest `n = d * g` a dynamically requested shape may have —
    /// refused before any allocation (a warm service for a huge bogus
    /// shape is the cheapest memory bomb a hostile client could order).
    pub max_n: usize,
}

impl Default for TopologyRouterConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            max_topologies: 8,
            // The same ceiling the CLI enforces for one-shot commands.
            max_n: 1 << 20,
        }
    }
}

/// Why a topology lookup was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// The shape itself is unacceptable (zero dimension or `n > max_n`).
    BadShape(String),
    /// The registry is full and every resident topology is pinned.
    AtCapacity {
        /// The configured `max_topologies`.
        max: usize,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::BadShape(msg) => write!(f, "{msg}"),
            RouterError::AtCapacity { max } => write!(
                f,
                "server is at its topology capacity ({max} resident, all pinned); \
                 retry with a served shape or raise --max-topologies"
            ),
        }
    }
}

impl std::error::Error for RouterError {}

/// Plain-data counters of the router itself (the per-topology request
/// counters live in each service's own registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Lookups answered by an already-resident service.
    pub hits: u64,
    /// Services constructed on demand.
    pub built: u64,
    /// Unpinned topologies evicted to make room.
    pub evictions: u64,
    /// Lookups refused at capacity (all pinned).
    pub rejections: u64,
}

#[derive(Debug)]
struct Entry {
    service: Arc<RoutingService>,
    pinned: bool,
    /// Logical clock of the last `get` — the LRU rank.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Registry {
    entries: HashMap<(usize, usize), Entry>,
    clock: u64,
}

/// The registry mapping `(d, g)` to a lazily-constructed
/// [`RoutingService`]. See the [module docs](self) for admission and
/// eviction semantics.
#[derive(Debug)]
pub struct TopologyRouter {
    default_topology: PopsTopology,
    config: TopologyRouterConfig,
    registry: Mutex<Registry>,
    /// Counters of evicted topologies, folded in at eviction time so
    /// fleet-wide aggregates stay monotonic (see
    /// [`TopologyRouter::retired_metrics`]).
    retired: Mutex<MetricsSnapshot>,
    hits: AtomicU64,
    built: AtomicU64,
    evictions: AtomicU64,
    rejections: AtomicU64,
}

impl TopologyRouter {
    /// A router whose pinned default topology is `default`, built (and
    /// every later service constructed) from `config.service`.
    ///
    /// # Panics
    ///
    /// Panics if the default shape itself violates `config` (zero
    /// dimension, `n > max_n`, or `max_topologies == 0`) — operator
    /// configuration errors, not client input.
    pub fn new(default: PopsTopology, config: TopologyRouterConfig) -> Self {
        let service = Arc::new(RoutingService::with_config(default, config.service.clone()));
        Self::from_service(service, config)
    }

    /// Wraps an already-constructed service as the pinned default — the
    /// compatibility path for callers that built their `RoutingService`
    /// directly (e.g. [`crate::server::serve_with_config`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TopologyRouter::new`].
    #[allow(clippy::expect_used)] // documented "# Panics" boot contract
    pub fn from_service(service: Arc<RoutingService>, config: TopologyRouterConfig) -> Self {
        assert!(config.max_topologies > 0, "need room for the default");
        let default = service.topology();
        Self::check_shape(default.d(), default.g(), config.max_n, true)
            // lint: allow(panic-freedom) -- documented "# Panics" contract: operator
            // config error at boot, before any connection is accepted
            .expect("default topology must satisfy the router's own limits");
        let mut registry = Registry::default();
        registry.entries.insert(
            (default.d(), default.g()),
            Entry {
                service,
                pinned: true,
                last_used: 0,
            },
        );
        Self {
            default_topology: default,
            config,
            registry: Mutex::new(registry),
            retired: Mutex::new(MetricsSnapshot::zero()),
            hits: AtomicU64::new(0),
            built: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// Shape admission control. `operator` lookups (the pinned default
    /// and `--topology` pre-warms) are bounded on `n = d·g` only; shapes
    /// admitted **dynamically** by remote requests are additionally
    /// bounded on the coupler count `g²`, because the engine scratch a
    /// service warms is O(g²) — without this, `d = 1, g = 2^20` passes
    /// the `n` bound while ordering a multi-terabyte allocation.
    fn check_shape(d: usize, g: usize, max_n: usize, operator: bool) -> Result<(), RouterError> {
        if d == 0 || g == 0 {
            return Err(RouterError::BadShape(
                "topology dimensions must be positive".into(),
            ));
        }
        if d.checked_mul(g).is_none_or(|n| n > max_n) {
            return Err(RouterError::BadShape(format!(
                "topology POPS({d}, {g}) exceeds the server's size limit (n > {max_n})"
            )));
        }
        if !operator && g.checked_mul(g).is_none_or(|couplers| couplers > max_n) {
            return Err(RouterError::BadShape(format!(
                "topology POPS({d}, {g}) exceeds the server's coupler limit (g\u{b2} > {max_n}); \
                 the operator can still pin it with --topology"
            )));
        }
        Ok(())
    }

    /// The topology requests fall back to when they carry no `d`/`g`.
    pub fn default_topology(&self) -> PopsTopology {
        self.default_topology
    }

    /// The service of the default topology (always resident — pinned).
    #[allow(clippy::expect_used)] // the pinned-entry invariant below
    pub fn default_service(&self) -> Arc<RoutingService> {
        self.peek(self.default_topology.d(), self.default_topology.g())
            // lint: allow(panic-freedom) -- the default entry is pinned at
            // construction and eviction never removes pinned entries
            .expect("the default topology is pinned")
    }

    /// Topologies currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether no topology is resident (never true: the default is
    /// pinned at construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured residency bound.
    pub fn max_topologies(&self) -> usize {
        self.config.max_topologies
    }

    /// The router's own counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            hits: self.hits.load(Ordering::Relaxed),
            built: self.built.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // A panic mid-plan poisons nothing structural here: registry ops are
        // short map edits, so recover the guard rather than cascade the panic.
        self.registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The resident service for `(d, g)` without admitting, constructing,
    /// or touching recency — `None` if the shape is not resident.
    pub fn peek(&self, d: usize, g: usize) -> Option<Arc<RoutingService>> {
        self.lock().entries.get(&(d, g)).map(|e| e.service.clone())
    }

    /// Every resident service with its topology, sorted by `(d, g)` —
    /// the stats and persistence paths iterate this.
    pub fn services(&self) -> Vec<(PopsTopology, Arc<RoutingService>)> {
        let registry = self.lock();
        let mut all: Vec<_> = registry
            .entries
            .iter()
            .map(|(&(d, g), entry)| (PopsTopology::new(d, g), entry.service.clone()))
            .collect();
        drop(registry);
        all.sort_by_key(|(t, _)| (t.d(), t.g()));
        all
    }

    /// Registers `(d, g)` as **pinned** (never evicted), constructing its
    /// service now — the pre-warm path behind repeated `--topology` flags.
    /// Pinning an already-resident shape upgrades it to pinned (the
    /// upgrade happens under the registry lock, so a pinned shape can
    /// never slip out through a concurrent eviction). Operator surface:
    /// not subject to the dynamic coupler bound.
    pub fn pin(&self, d: usize, g: usize) -> Result<Arc<RoutingService>, RouterError> {
        self.admit(d, g, true)
    }

    /// The service for `(d, g)`: resident → recency-bumped hit;
    /// otherwise constructed on demand, evicting the least-recently-used
    /// unpinned topology if the registry is full. Refuses bad shapes and
    /// all-pinned-full registries (see [`RouterError`]).
    pub fn get(&self, d: usize, g: usize) -> Result<Arc<RoutingService>, RouterError> {
        self.admit(d, g, false)
    }

    fn admit(&self, d: usize, g: usize, pin: bool) -> Result<Arc<RoutingService>, RouterError> {
        Self::check_shape(d, g, self.config.max_n, pin)?;
        {
            let mut registry = self.lock();
            registry.clock += 1;
            let now = registry.clock;
            if let Some(entry) = registry.entries.get_mut(&(d, g)) {
                entry.last_used = now;
                entry.pinned |= pin;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.service.clone());
            }
            // Hopeless admissions are refused BEFORE construction: on a
            // full registry with nothing evictable, building a service
            // just to throw it away would hand every rejected request a
            // free memory-and-CPU burn.
            if registry.entries.len() >= self.config.max_topologies
                && !registry.entries.values().any(|e| !e.pinned)
            {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(RouterError::AtCapacity {
                    max: self.config.max_topologies,
                });
            }
        }
        // Construction happens OUTSIDE the registry lock: warming a
        // service routes a full permutation per engine shard, and holding
        // the lock for that would let one client's churn of novel shapes
        // stall every other topology's lookups. Two racing requests for
        // the same new shape may both build; the loser's service is
        // simply dropped below.
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(d, g),
            self.config.service.clone(),
        ));
        let mut registry = self.lock();
        registry.clock += 1;
        let now = registry.clock;
        if let Some(entry) = registry.entries.get_mut(&(d, g)) {
            // Lost the build race: keep the resident service.
            entry.last_used = now;
            entry.pinned |= pin;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.service.clone());
        }
        if registry.entries.len() >= self.config.max_topologies {
            let coldest = registry
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&shape, _)| shape);
            match coldest {
                Some(shape) => {
                    if let Some(evicted) = registry.entries.remove(&shape) {
                        self.retire(&evicted.service);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(RouterError::AtCapacity {
                        max: self.config.max_topologies,
                    });
                }
            }
        }
        self.built.fetch_add(1, Ordering::Relaxed);
        registry.entries.insert(
            (d, g),
            Entry {
                service: service.clone(),
                pinned: pin,
                last_used: now,
            },
        );
        Ok(service)
    }

    /// Folds an evicted service's request counters into the retired
    /// ledger so fleet-wide stats stay monotonic across evictions (a
    /// metrics poll must never see totals go *down* because a cold shape
    /// was dropped). Gauges are zeroed first — the evicted arenas and
    /// cache entries are genuinely gone.
    fn retire(&self, service: &RoutingService) {
        let mut snap = service.metrics();
        snap.arena_bytes = 0;
        snap.cache_entries = 0;
        snap.cache_capacity = 0;
        snap.phase_cache_entries = 0;
        snap.phase_cache_capacity = 0;
        self.retired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .absorb(&snap);
    }

    /// The accumulated counters of every topology evicted so far.
    pub fn retired_metrics(&self) -> MetricsSnapshot {
        self.retired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Spills every resident topology's cache to its own file under `dir`
    /// ([`persist::topology_file_path`]). Returns what was written, in
    /// `(d, g)` order. Stops at the first I/O error.
    pub fn save_all(&self, dir: &Path) -> std::io::Result<Vec<(PopsTopology, PersistSummary)>> {
        let mut written = Vec::new();
        for (topology, service) in self.services() {
            let path = persist::topology_file_path(dir, topology.d(), topology.g());
            let summary = service.save_cache(&path)?;
            written.push((topology, summary));
        }
        Ok(written)
    }

    /// Restores caches from every `*.popscache` file in `dir` whose
    /// stamped topology is **already resident** (pinned defaults and
    /// pre-warms — a cache file alone never admits a topology, so a
    /// directory full of foreign files cannot occupy registry slots).
    ///
    /// Files for non-resident topologies, files whose header does not
    /// parse, and files that fail full validation at load are
    /// **skipped with a reason** instead of failing the boot: a stale or
    /// mixed `--cache-dir` must not turn the warm-start optimization into
    /// a startup outage. Only the directory listing itself can error.
    pub fn load_dir(&self, dir: &Path) -> std::io::Result<DirLoadReport> {
        let mut report = DirLoadReport::default();
        // At most one file restores per topology. The scan is file-name
        // sorted, so the canonical `plans-DxG.popscache` name wins over a
        // legacy `plans.popscache` stamped with the same shape ('-'
        // sorts before '.') — without this, an upgraded cache dir would
        // re-import the stale legacy entries on every boot.
        let mut restored: HashMap<(usize, usize), std::path::PathBuf> = HashMap::new();
        for (path, peeked) in persist::scan_cache_dir(dir)? {
            let (d, g) = match peeked {
                Ok(shape) => shape,
                Err(e) => {
                    report.skipped.push((path, e.to_string()));
                    continue;
                }
            };
            let Some(service) = self.peek(d, g) else {
                report.skipped.push((
                    path,
                    format!("stamped POPS({d}, {g}), which this server does not pin"),
                ));
                continue;
            };
            if let Some(first) = restored.get(&(d, g)) {
                report.skipped.push((
                    path,
                    format!(
                        "stamped POPS({d}, {g}), already restored from {} \
                         (stale duplicate — safe to delete)",
                        first.display()
                    ),
                ));
                continue;
            }
            match service.load_cache(&path) {
                Ok(summary) => {
                    restored.insert((d, g), path);
                    report.loaded.push((PopsTopology::new(d, g), summary));
                }
                Err(e) => report.skipped.push((path, e.to_string())),
            }
        }
        Ok(report)
    }
}

/// What [`TopologyRouter::load_dir`] restored and what it skipped.
#[derive(Debug, Default)]
pub struct DirLoadReport {
    /// Per-topology restore summaries, in scan order.
    pub loaded: Vec<(PopsTopology, PersistSummary)>,
    /// Files not restored, each with the human-readable reason.
    pub skipped: Vec<(std::path::PathBuf, String)>,
}

impl DirLoadReport {
    /// Total level-1 entries restored across topologies.
    pub fn l1_entries(&self) -> usize {
        self.loaded.iter().map(|(_, s)| s.l1_entries).sum()
    }

    /// Total level-2 entries restored across topologies.
    pub fn l2_entries(&self) -> usize {
        self.loaded.iter().map(|(_, s)| s.l2_entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceRequest;
    use pops_bipartite::ColorerKind;
    use pops_permutation::families::vector_reversal;

    fn small_router(max_topologies: usize) -> TopologyRouter {
        TopologyRouter::new(
            PopsTopology::new(4, 4),
            TopologyRouterConfig {
                service: ServiceConfig {
                    shards: 1,
                    cache_capacity: 8,
                    max_in_flight: 2,
                    colorer: ColorerKind::AlternatingPath,
                    ..ServiceConfig::default()
                },
                max_topologies,
                ..TopologyRouterConfig::default()
            },
        )
    }

    #[test]
    fn default_topology_is_resident_and_pinned() {
        let router = small_router(2);
        assert_eq!(router.len(), 1);
        assert_eq!(router.default_topology().d(), 4);
        let svc = router.get(4, 4).unwrap();
        assert!(Arc::ptr_eq(&svc, &router.default_service()));
        assert_eq!(router.stats().hits, 1);
        assert_eq!(router.stats().built, 0, "default was built up front");
    }

    #[test]
    fn lazy_construction_and_identity() {
        let router = small_router(3);
        let a = router.get(2, 8).unwrap();
        let b = router.get(2, 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same shape, same service");
        assert_eq!(a.topology().n(), 16);
        assert_eq!(router.stats().built, 1);
        // The service actually routes.
        let reply = a
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert!(reply.outcome.schedule().slot_count() > 0);
    }

    #[test]
    fn lru_evicts_the_coldest_unpinned_topology() {
        let router = small_router(3);
        router.get(2, 8).unwrap(); // resident: 4x4*, 2x8
        router.get(8, 2).unwrap(); // resident: 4x4*, 2x8, 8x2 (full)
        router.get(2, 8).unwrap(); // bump 2x8 — 8x2 is now coldest
        router.get(3, 3).unwrap(); // evicts 8x2
        assert_eq!(router.len(), 3);
        assert!(router.peek(8, 2).is_none(), "coldest unpinned evicted");
        assert!(router.peek(2, 8).is_some());
        assert!(router.peek(4, 4).is_some(), "pinned default survives");
        assert_eq!(router.stats().evictions, 1);
    }

    #[test]
    fn eviction_never_invalidates_handed_out_services() {
        let router = small_router(2);
        let held = router.get(2, 8).unwrap();
        router.get(8, 2).unwrap(); // evicts 2x8 from the registry
        assert!(router.peek(2, 8).is_none());
        // The Arc we hold still serves.
        let reply = held
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert_eq!(reply.outcome.schedule().slot_count(), 2);
    }

    #[test]
    fn all_pinned_full_registry_refuses_new_shapes() {
        let router = small_router(2);
        router.pin(2, 8).unwrap();
        let err = router.get(8, 2).unwrap_err();
        assert_eq!(err, RouterError::AtCapacity { max: 2 });
        assert!(err.to_string().contains("--max-topologies"), "{err}");
        assert_eq!(router.stats().rejections, 1);
        // Pinned shapes still answer.
        router.get(2, 8).unwrap();
        router.get(4, 4).unwrap();
    }

    #[test]
    fn bad_shapes_are_refused_before_allocation() {
        let router = small_router(4);
        assert!(matches!(router.get(0, 4), Err(RouterError::BadShape(_))));
        assert!(matches!(
            router.get(1 << 12, 1 << 12),
            Err(RouterError::BadShape(_))
        ));
        assert!(matches!(
            router.get(usize::MAX, 2),
            Err(RouterError::BadShape(_))
        ));
        assert_eq!(router.len(), 1, "nothing was admitted");
    }

    #[test]
    fn dynamic_admissions_are_coupler_bounded_but_operators_may_pin() {
        // n = 2^16 passes the size bound, but g² = 2^32 would be the
        // engine-scratch allocation — refused for remote (dynamic)
        // admission, allowed for the operator pin surface.
        let router = TopologyRouter::new(
            PopsTopology::new(4, 4),
            TopologyRouterConfig {
                service: ServiceConfig {
                    shards: 1,
                    max_in_flight: 2,
                    ..ServiceConfig::default()
                },
                max_topologies: 4,
                max_n: 1 << 16,
            },
        );
        let err = router.get(1, 1 << 16).unwrap_err();
        assert!(matches!(err, RouterError::BadShape(_)));
        assert!(err.to_string().contains("coupler"), "{err}");
        assert_eq!(router.len(), 1, "nothing was admitted");
        // A modest-g shape with the same n is fine dynamically...
        router.get(1 << 8, 1 << 8).unwrap();
        // ...and the operator may pin a high-g shape explicitly (small
        // here so the test stays cheap).
        let small = small_router(3);
        small.pin(1, 32).unwrap();
        assert!(small.peek(1, 32).is_some());
    }

    #[test]
    fn eviction_retires_counters_into_the_ledger() {
        let router = small_router(2);
        let svc = router.get(2, 8).unwrap();
        svc.route(&ServiceRequest::Theorem2 {
            pi: vector_reversal(16),
        })
        .unwrap();
        svc.route(&ServiceRequest::Theorem2 {
            pi: vector_reversal(16),
        })
        .unwrap();
        drop(svc);
        assert_eq!(
            router.retired_metrics().requests(),
            0,
            "nothing retired yet"
        );
        router.get(8, 2).unwrap(); // evicts 2x8
        let retired = router.retired_metrics();
        assert_eq!((retired.hits, retired.misses), (1, 1), "history preserved");
        assert_eq!(retired.arena_bytes, 0, "gauges are zeroed: arenas are gone");
        assert_eq!(retired.cache_entries, 0);
    }

    #[test]
    fn pinning_a_resident_shape_upgrades_it() {
        let router = small_router(2);
        router.get(2, 8).unwrap(); // dynamic
        router.pin(2, 8).unwrap(); // upgrade
        let err = router.get(8, 2).unwrap_err();
        assert!(matches!(err, RouterError::AtCapacity { .. }));
    }

    #[test]
    fn services_listing_is_sorted() {
        let router = small_router(4);
        router.get(8, 2).unwrap();
        router.get(2, 8).unwrap();
        let shapes: Vec<(usize, usize)> = router
            .services()
            .iter()
            .map(|(t, _)| (t.d(), t.g()))
            .collect();
        assert_eq!(shapes, vec![(2, 8), (4, 4), (8, 2)]);
    }

    #[test]
    fn save_all_and_load_dir_round_trip_per_topology() {
        let dir = std::env::temp_dir().join(format!(
            "pops-router-persist-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let router = small_router(3);
        router.pin(2, 8).unwrap();
        router
            .get(4, 4)
            .unwrap()
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        router
            .get(2, 8)
            .unwrap()
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        let written = router.save_all(&dir).unwrap();
        assert_eq!(written.len(), 2, "one file per resident topology");
        assert!(dir.join("plans-4x4.popscache").exists());
        assert!(dir.join("plans-2x8.popscache").exists());

        // A restarted router pinning the same shapes restores both.
        let restarted = small_router(3);
        restarted.pin(2, 8).unwrap();
        let report = restarted.load_dir(&dir).unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);
        assert_eq!(report.l1_entries(), 2);
        for (d, g) in [(4usize, 4usize), (2, 8)] {
            let reply = restarted
                .get(d, g)
                .unwrap()
                .route(&ServiceRequest::Theorem2 {
                    pi: vector_reversal(16),
                })
                .unwrap();
            assert!(reply.cache_hit, "POPS({d}, {g}) must restart warm");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_warns_and_skips_foreign_and_corrupt_files() {
        // The bugfix this PR ships: a mixed --cache-dir (files for
        // topologies this server does not pin, plus outright garbage)
        // must boot warm on the matching files instead of failing.
        let dir = std::env::temp_dir().join(format!(
            "pops-router-mixed-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // A good file for the pinned default...
        let donor = small_router(2);
        donor
            .default_service()
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        donor.save_all(&dir).unwrap();
        // ...a file for a topology the restarting server will not pin...
        std::fs::write(
            dir.join(persist::topology_file_name(2, 8)),
            persist::encode_cache_file(2, 8, &[], &[]),
        )
        .unwrap();
        // ...outright garbage, and a good header with a corrupt body for
        // a shape the server *does* pin.
        std::fs::write(dir.join("junk.popscache"), b"not a cache").unwrap();
        let mut bitrot = persist::encode_cache_file(8, 2, &[], &[]);
        let last = bitrot.len() - 1;
        bitrot[last] ^= 0x55;
        std::fs::write(dir.join("bitrot-8x2.popscache"), bitrot).unwrap();
        // ...and a stale legacy single-file spill stamped with the SAME
        // shape as the per-topology 4x4 file — only one may restore (the
        // canonical name sorts first), or every boot would re-import the
        // stale entries over the fresh ones.
        std::fs::write(
            persist::cache_file_path(&dir),
            persist::encode_cache_file(4, 4, &[], &[]),
        )
        .unwrap();

        let router = small_router(3);
        router.pin(8, 2).unwrap();
        let report = router.load_dir(&dir).unwrap();
        assert_eq!(report.loaded.len(), 1, "{:?}", report.loaded);
        assert_eq!(report.loaded[0].0.d(), 4);
        assert_eq!(report.skipped.len(), 4, "{:?}", report.skipped);
        let reasons: String = report
            .skipped
            .iter()
            .map(|(p, r)| format!("{}: {r}\n", p.display()))
            .collect();
        assert!(reasons.contains("does not pin"), "{reasons}");
        assert!(
            reasons.contains("checksum") || reasons.contains("magic"),
            "{reasons}"
        );
        assert!(
            reasons.contains("already restored from"),
            "the duplicate-stamp legacy file must be skipped: {reasons}"
        );
        assert!(
            reasons.contains("plans-4x4.popscache"),
            "the canonical per-topology name must be the one that won: {reasons}"
        );
        // The matching file still warm-started the default.
        assert!(
            router
                .default_service()
                .route(&ServiceRequest::Theorem2 {
                    pi: vector_reversal(16),
                })
                .unwrap()
                .cache_hit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
