//! A blocking client for the service's TCP protocol — used by the
//! `pops request` CLI subcommand, the integration tests, and the CI
//! smoke check. Connections speak JSON lines; calling
//! [`ServiceClient::set_format`] with [`WireFormat::Binary`] negotiates
//! the length-prefixed binary framing of [`crate::frame`], after which
//! route and batch payloads travel as dense binary bodies (control ops
//! keep their JSON documents, wrapped in frames).

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pops_network::Schedule;
use pops_permutation::Permutation;

use crate::frame::{self, TAG_BATCH_ITEM, TAG_JSON, TAG_ROUTE_REPLY};
use crate::json::Json;
use crate::metrics::RequestKind;
use crate::proto::{schedule_from_json, WireFormat};

/// Client-side cap on one incoming frame, so a hostile or corrupted
/// length prefix cannot make the client allocate unbounded memory.
const CLIENT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The configured client timeout expired waiting for the server.
    TimedOut,
    /// The server closed the connection cleanly (EOF before any response
    /// byte) — e.g. it rejected the connection or shut down between
    /// requests.
    Disconnected,
    /// The connection closed mid-response: bytes arrived but the line was
    /// never terminated.
    Truncated,
    /// A previous call failed mid-exchange (timeout, truncation, or I/O
    /// error), so responses can no longer be matched to requests —
    /// reconnect.
    Poisoned,
    /// The server sent something unparseable.
    Protocol(String),
    /// The server answered `{"ok":false,...}`; `kind` is the structured
    /// [`crate::proto::WireErrorKind`] wire name when present.
    Remote {
        /// Machine-readable failure category (`"error"` if absent).
        kind: String,
        /// Human-facing message.
        message: String,
        /// Back-off hint in milliseconds, carried by `overloaded`
        /// responses (the server's admission control shed the request).
        retry_after_ms: Option<u64>,
    },
}

impl ClientError {
    /// The structured error kind of a [`ClientError::Remote`], if any.
    pub fn remote_kind(&self) -> Option<&str> {
        match self {
            ClientError::Remote { kind, .. } => Some(kind),
            _ => None,
        }
    }

    /// The `retry-after-ms` back-off hint of an `overloaded`
    /// [`ClientError::Remote`], if any. Callers seeing `Some` should
    /// sleep that long before retrying instead of hammering a shedding
    /// server.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Remote { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Truncated => {
                write!(f, "connection closed mid-response (truncated line)")
            }
            ClientError::Poisoned => write!(
                f,
                "connection poisoned by an earlier mid-exchange failure; reconnect"
            ),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Remote {
                kind,
                message,
                retry_after_ms,
            } => {
                write!(f, "server error ({kind}): {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

/// The serving topology and shape, from the `info` op.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Processors per group of the **default** topology.
    pub d: usize,
    /// Number of groups of the default topology.
    pub g: usize,
    /// Total processors of the default topology.
    pub n: usize,
    /// Engine-pool shards (of the default topology's service).
    pub shards: usize,
    /// Plan-cache capacity (of the default topology's service).
    pub cache_capacity: usize,
    /// Every topology currently resident on the server.
    pub topologies: Vec<(usize, usize)>,
    /// The server's topology residency bound.
    pub max_topologies: usize,
    /// The server's build version (empty when talking to a server that
    /// predates the field).
    pub version: String,
    /// Seconds since the server started accepting connections (zero when
    /// the server predates the field).
    pub uptime_secs: u64,
}

/// One item of a wire-level batch ([`ServiceClient::batch`]).
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The permutation to route.
    pub pi: Permutation,
    /// The `(d, g)` topology to route it on; `None` uses the server's
    /// default topology.
    pub shape: Option<(usize, usize)>,
    /// Coupler ids to declare failed for this item (composed with any
    /// baseline the server was started with). Empty routes the healthy
    /// fabric. A batch carrying any faults rides the JSON body even on a
    /// binary connection — the dense batch frame has no fault lists.
    pub faults: Vec<usize>,
}

/// One successfully routed batch item.
#[derive(Debug, Clone)]
pub struct BatchItemReply {
    /// Processors per group of the topology that served this item.
    pub d: usize,
    /// Number of groups of the topology that served this item.
    pub g: usize,
    /// Slot count of the schedule.
    pub slots: usize,
    /// The schedule itself (empty unless the batch asked for schedules).
    pub schedule: Schedule,
    /// Whether the item was planned by the greedy fault router under a
    /// non-empty fault set (always `false` for dense binary items, whose
    /// reply frame carries no flag).
    pub degraded: bool,
}

/// A per-item failure inside an otherwise-delivered batch.
#[derive(Debug, Clone)]
pub struct BatchItemError {
    /// Machine-readable failure category (a
    /// [`crate::proto::WireErrorKind`] wire name).
    pub kind: String,
    /// Human-facing message.
    pub message: String,
}

/// The trailing summary line of a batch response.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Items the batch carried.
    pub items: usize,
    /// Items routed successfully.
    pub routed: usize,
    /// Items answered with per-item errors.
    pub failed: usize,
    /// Total slots across routed items.
    pub slots: usize,
    /// Server-side service time in microseconds.
    pub micros: u64,
    /// The distinct `(d, g)` topologies the batch touched.
    pub topologies: Vec<(usize, usize)>,
}

/// A decoded batch exchange: per-item results in input order, then the
/// summary.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// One result per submitted item, in the order they were sent.
    pub items: Vec<Result<BatchItemReply, BatchItemError>>,
    /// The summary line.
    pub summary: BatchSummary,
}

/// A served route, from the `route` op.
#[derive(Debug, Clone)]
pub struct RouteReply {
    /// Slot count of the schedule.
    pub slots: usize,
    /// Whether the plan came from the server's cache.
    pub cache_hit: bool,
    /// Server-side service time in microseconds.
    pub micros: u64,
    /// The schedule itself (empty when requested with
    /// `want_schedule = false`).
    pub schedule: Schedule,
    /// Whether the plan came from the greedy fault router under a
    /// non-empty fault set (request faults, a server-side baseline, or
    /// both). Dense binary replies carry no flag, so this is always
    /// `false` on the binary route fast path.
    pub degraded: bool,
}

/// A connected client. One request/response pair per [`ServiceClient::call`].
///
/// ```no_run
/// use std::time::Duration;
/// use pops_permutation::families::vector_reversal;
/// use pops_service::ServiceClient;
///
/// let mut client =
///     ServiceClient::connect_with_timeout("127.0.0.1:7077", Some(Duration::from_secs(5)))?;
/// let info = client.info()?; // serving topology: resolve sizes against it
/// let reply = client.route_permutation("theorem2", &vector_reversal(info.n))?;
/// println!("{} slots, cache {}", reply.slots, if reply.cache_hit { "hit" } else { "miss" });
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// A transport-level failure mid-exchange (timeout, truncation, I/O
/// error) **poisons** the connection: the line protocol has no way to
/// tell a late-arriving remainder of the failed response from the reply
/// to the next request, so every later call fails fast with
/// [`ClientError::Poisoned`] — reconnect instead of retrying in place.
/// Server-side (`Remote`) errors and clean disconnects do not poison.
#[derive(Debug)]
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    poisoned: bool,
    format: WireFormat,
}

impl ServiceClient {
    /// Connects to a serving address (e.g. `127.0.0.1:7077`) with no
    /// client-side timeouts — calls can block indefinitely. Prefer
    /// [`ServiceClient::connect_with_timeout`] for anything unattended.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            poisoned: false,
            format: WireFormat::Json,
        })
    }

    /// Connects with `timeout` applied to the connect itself and to every
    /// subsequent read and write, so a hung or hostile server surfaces as
    /// [`ClientError::TimedOut`] instead of blocking forever. `None`
    /// behaves like [`ServiceClient::connect`].
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let Some(timeout) = timeout else {
            return Self::connect(addr);
        };
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    let mut client = Self {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: stream,
                        poisoned: false,
                        format: WireFormat::Json,
                    };
                    client.set_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    /// Sets (or clears) the read and write timeouts of the connection.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Sets `TCP_NODELAY` on the connection — latency-sensitive callers
    /// (one small request line per round trip) pair this with a
    /// `--nodelay` server.
    pub fn set_nodelay(&mut self, nodelay: bool) -> std::io::Result<()> {
        self.writer.set_nodelay(nodelay)
    }

    /// The wire format this connection currently speaks.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Negotiates the connection's wire format with the `hello` op.
    /// Requesting the current format is a no-op; requesting
    /// [`WireFormat::Binary`] upgrades the connection for its remaining
    /// lifetime (the protocol has no downgrade — reconnect for JSON
    /// lines). After a successful upgrade, route and batch payloads
    /// travel as dense binary frames and every other op rides
    /// JSON-in-a-frame transparently.
    pub fn set_format(&mut self, format: WireFormat) -> Result<(), ClientError> {
        if format == self.format {
            return Ok(());
        }
        if format == WireFormat::Json {
            return Err(ClientError::Protocol(
                "the binary framing cannot be downgraded; reconnect for JSON lines".into(),
            ));
        }
        let request = Json::Obj(vec![
            ("op".into(), Json::str("hello")),
            ("format".into(), Json::str(format.name())),
        ]);
        let doc = self.call(&request)?;
        match doc.get("format").and_then(Json::as_str) {
            Some(name) if name == format.name() => {
                self.format = format;
                Ok(())
            }
            _ => Err(ClientError::Protocol(
                "hello response did not echo the requested format".into(),
            )),
        }
    }

    /// Sends one raw request line without reading anything back —
    /// multi-line exchanges (the batch op) pair this with
    /// [`ServiceClient::read_doc`] once per expected line.
    fn write_line(&mut self, line: &str) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let sent = (|| -> Result<(), ClientError> {
            // One write per line: a separate newline write lets Nagle
            // stall the tail segment behind the server's delayed ACK.
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            self.writer.write_all(&buf)?;
            self.writer.flush()?;
            Ok(())
        })();
        sent.inspect_err(|_| self.poisoned = true)
    }

    /// Sends one binary frame without reading anything back.
    fn send_payload(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let sent = (|| -> Result<(), ClientError> {
            frame::write_frame(&mut self.writer, payload)?;
            self.writer.flush()?;
            Ok(())
        })();
        sent.inspect_err(|_| self.poisoned = true)
    }

    /// Sends one request document in whatever format the connection
    /// speaks: a bare line under JSON, a [`TAG_JSON`] frame under the
    /// binary framing.
    fn send_request(&mut self, line: &str) -> Result<(), ClientError> {
        if self.format == WireFormat::Binary {
            let mut payload = Vec::with_capacity(1 + line.len());
            payload.push(TAG_JSON);
            payload.extend_from_slice(line.as_bytes());
            return self.send_payload(&payload);
        }
        self.write_line(line)
    }

    /// Reads one frame payload. A clean EOF before any header byte is
    /// [`ClientError::Disconnected`]; an EOF mid-frame is
    /// [`ClientError::Truncated`]. Timeouts, truncation, oversized
    /// frames, and I/O errors poison the connection (see the type docs).
    fn read_payload(&mut self) -> Result<Vec<u8>, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let exchange = |this: &mut Self| -> Result<Vec<u8>, ClientError> {
            let mut header = [0u8; 4];
            let mut filled = 0;
            while filled < header.len() {
                // lint: allow(panic-freedom) -- filled < header.len() by the loop guard
                let read = this.reader.read(&mut header[filled..])?;
                if read == 0 {
                    return Err(if filled == 0 {
                        ClientError::Disconnected
                    } else {
                        ClientError::Truncated
                    });
                }
                filled += read;
            }
            let len = u32::from_le_bytes(header) as usize;
            if len > CLIENT_MAX_FRAME_BYTES {
                return Err(ClientError::Protocol(format!(
                    "frame of {len} bytes exceeds the client's {CLIENT_MAX_FRAME_BYTES}-byte cap"
                )));
            }
            let mut payload = vec![0u8; len];
            let mut at = 0;
            while at < len {
                // lint: allow(panic-freedom) -- at < len == payload.len() by the loop guard
                let read = this.reader.read(&mut payload[at..])?;
                if read == 0 {
                    return Err(ClientError::Truncated);
                }
                at += read;
            }
            Ok(payload)
        };
        exchange(self).inspect_err(|e| {
            self.poisoned = !matches!(e, ClientError::Disconnected);
        })
    }

    /// Decodes a [`TAG_JSON`] frame payload into a document.
    fn doc_from_payload(payload: &[u8]) -> Result<Json, ClientError> {
        match payload.split_first() {
            Some((&TAG_JSON, body)) => {
                let text = std::str::from_utf8(body).map_err(|_| {
                    ClientError::Protocol("TAG_JSON frame is not valid UTF-8".into())
                })?;
                Json::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            Some((&tag, _)) => Err(ClientError::Protocol(format!(
                "expected a JSON frame, got tag 0x{tag:02x}"
            ))),
            None => Err(ClientError::Protocol("empty frame".into())),
        }
    }

    /// Reads and parses one response line. A clean EOF before any byte is
    /// [`ClientError::Disconnected`]; a line cut off mid-way is
    /// [`ClientError::Truncated`]. Timeouts, truncation, and I/O errors
    /// poison the connection (see the type docs).
    fn read_doc(&mut self) -> Result<Json, ClientError> {
        if self.format == WireFormat::Binary {
            let payload = self.read_payload()?;
            return Self::doc_from_payload(&payload);
        }
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let exchange = |this: &mut Self| -> Result<String, ClientError> {
            let mut response = String::new();
            let read = this.reader.read_line(&mut response)?;
            if read == 0 {
                return Err(ClientError::Disconnected);
            }
            if !response.ends_with('\n') {
                return Err(ClientError::Truncated);
            }
            Ok(response)
        };
        let response = exchange(self).inspect_err(|e| {
            // read_line may have consumed a partial line before failing,
            // so the stream can no longer be re-synchronised.
            self.poisoned = !matches!(e, ClientError::Disconnected);
        })?;
        Json::parse(response.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Maps a `{"ok":false,...}` document to [`ClientError::Remote`].
    fn check_ok(doc: Json) -> Result<Json, ClientError> {
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => Err(ClientError::Remote {
                kind: doc
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("error")
                    .to_string(),
                message: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified failure")
                    .to_string(),
                retry_after_ms: doc.get("retry-after-ms").and_then(Json::as_u64),
            }),
            None => Err(ClientError::Protocol(
                "response is missing the 'ok' field".into(),
            )),
        }
    }

    /// Sends one raw request line and parses the response line, mapping
    /// `{"ok":false}` responses to [`ClientError::Remote`]. A clean EOF
    /// before any response byte is [`ClientError::Disconnected`]; a line
    /// cut off mid-way is [`ClientError::Truncated`]. Timeouts,
    /// truncation, and I/O errors poison the connection (see the type
    /// docs); later calls fail with [`ClientError::Poisoned`].
    pub fn call_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.send_request(line)?;
        let doc = self.read_doc()?;
        Self::check_ok(doc)
    }

    /// Sends one request document.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        self.call_raw(&request.to_string())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![("op".into(), Json::str("ping"))]))?;
        Ok(())
    }

    /// Queries the serving topology and service shape.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        let doc = self.call(&Json::Obj(vec![("op".into(), Json::str("info"))]))?;
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("info response lacks '{name}'")))
        };
        Ok(ServerInfo {
            d: field("d")?,
            g: field("g")?,
            n: field("n")?,
            shards: field("shards")?,
            cache_capacity: field("cache_capacity")?,
            topologies: Self::decode_shapes(&doc)?,
            max_topologies: doc
                .get("max_topologies")
                .and_then(Json::as_usize)
                .unwrap_or(1),
            version: doc
                .get("version")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            uptime_secs: doc.get("uptime_secs").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Decodes a `"topologies":[[d,g],...]` field (absent → empty). The
    /// one decoder both `info` and the batch summary use, so malformed
    /// entries fail loudly everywhere instead of being dropped in one
    /// path and erroring in the other.
    fn decode_shapes(doc: &Json) -> Result<Vec<(usize, usize)>, ClientError> {
        let mut topologies = Vec::new();
        if let Some(shapes) = doc.get("topologies").and_then(Json::as_arr) {
            for shape in shapes {
                let pair = shape
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .and_then(|p| Some((p.first()?.as_usize()?, p.get(1)?.as_usize()?)))
                    .ok_or_else(|| {
                        ClientError::Protocol("'topologies' entries must be [d, g]".into())
                    })?;
                topologies.push(pair);
            }
        }
        Ok(topologies)
    }

    /// Fetches the raw metrics snapshot document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![("op".into(), Json::str("stats"))]))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![("op".into(), Json::str("shutdown"))]))?;
        Ok(())
    }

    /// Sends a plan-cache management op (`action` is a
    /// [`crate::proto::CacheAction`] wire name: `save`, `load`, or
    /// `stats`) and returns the raw response document. `save`/`load`
    /// require the server to run with a `--cache-dir`.
    pub fn cache_op(&mut self, action: &str) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![
            ("op".into(), Json::str("cache")),
            ("action".into(), Json::str(action)),
        ]))
    }

    /// Routes `pi` with the given request kind (a [`crate::RequestKind`]
    /// wire name) on the server's default topology and decodes the reply.
    pub fn route_permutation(
        &mut self,
        kind: &str,
        pi: &Permutation,
    ) -> Result<RouteReply, ClientError> {
        self.route_permutation_on(kind, pi, None)
    }

    /// Routes `pi` on an explicit `(d, g)` topology — on a multi-topology
    /// server the shape *selects* (and may lazily construct) the serving
    /// backend; `None` uses the server's default.
    pub fn route_permutation_on(
        &mut self,
        kind: &str,
        pi: &Permutation,
        shape: Option<(usize, usize)>,
    ) -> Result<RouteReply, ClientError> {
        if self.format == WireFormat::Binary {
            let parsed = RequestKind::from_name(kind).filter(|k| {
                matches!(
                    k,
                    RequestKind::Theorem2
                        | RequestKind::SingleSlot
                        | RequestKind::Direct
                        | RequestKind::Structured
                )
            });
            // Permutation-carrying kinds get the dense body; anything
            // else falls through to JSON-in-a-frame, where the server
            // produces the same validation errors it would on a line.
            if let Some(kind) = parsed {
                return self.route_permutation_binary(kind, pi, shape);
            }
        }
        self.route_permutation_with_faults(kind, pi, shape, &[])
    }

    /// Routes `pi` with `faults` declared failed — the wire story of
    /// `pops request --fault`. The fault ids are composed with any
    /// baseline the server was started with; a non-empty effective set
    /// routes through the greedy fault router and the reply's
    /// [`RouteReply::degraded`] flag is set. Fault-carrying requests ride
    /// the JSON body even on a binary connection (the dense route frame
    /// has no fault list), so the degraded flag always round-trips.
    pub fn route_permutation_with_faults(
        &mut self,
        kind: &str,
        pi: &Permutation,
        shape: Option<(usize, usize)>,
        faults: &[usize],
    ) -> Result<RouteReply, ClientError> {
        let perm = Json::Arr(pi.as_slice().iter().map(|&v| Json::num(v)).collect());
        let mut fields = vec![
            ("op".into(), Json::str("route")),
            ("kind".into(), Json::str(kind)),
        ];
        if let Some((d, g)) = shape {
            fields.push(("d".into(), Json::num(d)));
            fields.push(("g".into(), Json::num(g)));
        }
        fields.push(("perm".into(), perm));
        if !faults.is_empty() {
            fields.push((
                "faults".into(),
                Json::Arr(faults.iter().map(|&c| Json::num(c)).collect()),
            ));
        }
        let doc = self.call(&Json::Obj(fields))?;
        Self::decode_route(&doc)
    }

    /// The binary fast path of [`ServiceClient::route_permutation_on`]:
    /// one `TAG_ROUTE` frame out, one `TAG_ROUTE_REPLY` (or JSON error)
    /// frame back.
    fn route_permutation_binary(
        &mut self,
        kind: RequestKind,
        pi: &Permutation,
        shape: Option<(usize, usize)>,
    ) -> Result<RouteReply, ClientError> {
        let payload = frame::encode_route_request(kind, true, shape, pi);
        self.send_payload(&payload)?;
        let reply = self.read_payload()?;
        match reply.split_first() {
            Some((&TAG_ROUTE_REPLY, body)) => {
                let decoded = frame::decode_route_reply(body).map_err(ClientError::Protocol)?;
                Ok(RouteReply {
                    slots: decoded.slots,
                    cache_hit: decoded.cache_hit,
                    micros: decoded.micros,
                    schedule: decoded.schedule,
                    degraded: false,
                })
            }
            _ => {
                // Errors ride JSON frames; check_ok turns them into
                // ClientError::Remote.
                Self::check_ok(Self::doc_from_payload(&reply)?)?;
                Err(ClientError::Protocol("expected a route reply frame".into()))
            }
        }
    }

    /// Routes an h-relation given as `(source, destination)` pairs.
    pub fn route_h_relation(
        &mut self,
        requests: &[(usize, usize)],
    ) -> Result<RouteReply, ClientError> {
        self.route_h_relation_on(requests, None)
    }

    /// Routes an h-relation on an explicit topology (`None` uses the
    /// server's default shape). H-relation bodies always ride JSON — even
    /// on a binary connection the request travels as a `TAG_JSON` frame —
    /// because the dense route frame has no request list.
    pub fn route_h_relation_on(
        &mut self,
        requests: &[(usize, usize)],
        shape: Option<(usize, usize)>,
    ) -> Result<RouteReply, ClientError> {
        let pairs = Json::Arr(
            requests
                .iter()
                .map(|&(s, d)| Json::Arr(vec![Json::num(s), Json::num(d)]))
                .collect(),
        );
        let mut fields = vec![
            ("op".into(), Json::str("route")),
            ("kind".into(), Json::str("h-relation")),
        ];
        if let Some((d, g)) = shape {
            fields.push(("d".into(), Json::num(d)));
            fields.push(("g".into(), Json::num(g)));
        }
        fields.push(("requests".into(), pairs));
        let doc = self.call(&Json::Obj(fields))?;
        Self::decode_route(&doc)
    }

    /// Sends one `{"op":"batch"}` request carrying `items` (optionally
    /// mixed-topology) and reads the streamed response: one line per item
    /// in input order, then the summary line. Per-item failures come back
    /// as `Err` entries in [`BatchReply::items`]; only transport problems
    /// and whole-batch rejections (e.g. the server's batch-size cap) fail
    /// the call itself.
    ///
    /// ```no_run
    /// use pops_permutation::families::vector_reversal;
    /// use pops_service::{BatchItem, ServiceClient};
    ///
    /// let mut client = ServiceClient::connect("127.0.0.1:7077")?;
    /// let reply = client.batch(
    ///     &[
    ///         // server default topology, healthy fabric
    ///         BatchItem { pi: vector_reversal(16), shape: None, faults: vec![] },
    ///         // another shape, with coupler 3 declared failed
    ///         BatchItem { pi: vector_reversal(16), shape: Some((2, 8)), faults: vec![3] },
    ///     ],
    ///     false, // no schedule bodies — slot counts and the summary only
    /// )?;
    /// assert_eq!(reply.items.len(), 2);
    /// println!(
    ///     "routed {} of {} items, {} slots total, {} topologies",
    ///     reply.summary.routed,
    ///     reply.summary.items,
    ///     reply.summary.slots,
    ///     reply.summary.topologies.len(),
    /// );
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn batch(
        &mut self,
        items: &[BatchItem],
        want_schedule: bool,
    ) -> Result<BatchReply, ClientError> {
        // The dense batch frame has no fault lists, so a fault-carrying
        // batch rides the JSON body — wrapped in a TAG_JSON frame on a
        // binary connection, where its responses come back as JSON frames
        // that read_batch_stream decodes transparently via read_doc.
        let any_faults = items.iter().any(|item| !item.faults.is_empty());
        let reply = if self.format == WireFormat::Binary && !any_faults {
            let payload = frame::encode_batch_request(
                want_schedule,
                items.iter().map(|item| (item.shape, item.pi.clone())),
            );
            match self.send_payload(&payload) {
                Err(e) => Err(e),
                Ok(()) => self.read_batch_stream_binary(items.len()),
            }
        } else {
            let encoded: Vec<Json> = items
                .iter()
                .map(|item| {
                    let mut fields = Vec::with_capacity(4);
                    if let Some((d, g)) = item.shape {
                        fields.push(("d".into(), Json::num(d)));
                        fields.push(("g".into(), Json::num(g)));
                    }
                    fields.push((
                        "perm".into(),
                        Json::Arr(item.pi.as_slice().iter().map(|&v| Json::num(v)).collect()),
                    ));
                    if !item.faults.is_empty() {
                        fields.push((
                            "faults".into(),
                            Json::Arr(item.faults.iter().map(|&c| Json::num(c)).collect()),
                        ));
                    }
                    Json::Obj(fields)
                })
                .collect();
            let request = Json::Obj(vec![
                ("op".into(), Json::str("batch")),
                ("items".into(), Json::Arr(encoded)),
                ("want_schedule".into(), Json::Bool(want_schedule)),
            ]);
            match self.send_request(&request.to_string()) {
                Err(e) => Err(e),
                Ok(()) => self.read_batch_stream(items.len()),
            }
        };
        if matches!(&reply, Err(ClientError::Protocol(_))) {
            // A malformed or out-of-order response mid-stream leaves an
            // unknown number of batch responses unread on the socket;
            // later replies could no longer be matched to requests.
            self.poisoned = true;
        }
        reply
    }

    /// Reads one batch response stream: item lines until the summary.
    fn read_batch_stream(&mut self, expected: usize) -> Result<BatchReply, ClientError> {
        let mut replies: Vec<Result<BatchItemReply, BatchItemError>> = Vec::new();
        loop {
            let doc = self.read_doc()?;
            if let Some(summary) = Self::accept_batch_doc(doc, &mut replies, expected)? {
                return Ok(BatchReply {
                    items: replies,
                    summary,
                });
            }
        }
    }

    /// Reads one binary batch response stream: successful items arrive as
    /// `TAG_BATCH_ITEM` frames, per-item errors and the terminating
    /// summary as JSON frames — the same in-order contract as the line
    /// protocol.
    fn read_batch_stream_binary(&mut self, expected: usize) -> Result<BatchReply, ClientError> {
        let mut replies: Vec<Result<BatchItemReply, BatchItemError>> = Vec::new();
        loop {
            let payload = self.read_payload()?;
            if let Some((&TAG_BATCH_ITEM, body)) = payload.split_first() {
                let item = frame::decode_batch_item(body).map_err(ClientError::Protocol)?;
                if item.index != replies.len() || item.index >= expected {
                    return Err(ClientError::Protocol(format!(
                        "item {} arrived out of order (expected {})",
                        item.index,
                        replies.len()
                    )));
                }
                replies.push(Ok(BatchItemReply {
                    d: item.d,
                    g: item.g,
                    slots: item.slots,
                    schedule: item.schedule,
                    degraded: false,
                }));
                continue;
            }
            let doc = Self::doc_from_payload(&payload)?;
            if let Some(summary) = Self::accept_batch_doc(doc, &mut replies, expected)? {
                return Ok(BatchReply {
                    items: replies,
                    summary,
                });
            }
        }
    }

    /// Handles one JSON document of a batch stream: a `batch-item`
    /// response or error appends to `replies`; the `batch` summary
    /// terminates the stream (returned as `Some`); anything else is a
    /// whole-batch rejection or a protocol violation.
    fn accept_batch_doc(
        doc: Json,
        replies: &mut Vec<Result<BatchItemReply, BatchItemError>>,
        expected: usize,
    ) -> Result<Option<BatchSummary>, ClientError> {
        match doc.get("op").and_then(Json::as_str) {
            Some("batch-item") => {
                let index = doc
                    .get("index")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ClientError::Protocol("item lacks 'index'".into()))?;
                if index != replies.len() || index >= expected {
                    return Err(ClientError::Protocol(format!(
                        "item {index} arrived out of order (expected {})",
                        replies.len()
                    )));
                }
                replies.push(Self::decode_batch_item(&doc)?);
                Ok(None)
            }
            Some("batch") => {
                // The summary terminates the stream; it is only valid
                // once every submitted item has been answered.
                Self::check_ok(doc.clone())?;
                if replies.len() != expected {
                    return Err(ClientError::Protocol(format!(
                        "summary after {} of {expected} items",
                        replies.len(),
                    )));
                }
                Ok(Some(Self::decode_batch_summary(&doc)?))
            }
            _ => {
                // A whole-batch rejection (size cap, parse problem)
                // is a single plain error response.
                Self::check_ok(doc)?;
                Err(ClientError::Protocol(
                    "unexpected response line inside a batch exchange".into(),
                ))
            }
        }
    }

    fn decode_batch_item(
        doc: &Json,
    ) -> Result<Result<BatchItemReply, BatchItemError>, ClientError> {
        if doc.get("ok").and_then(Json::as_bool) == Some(false) {
            return Ok(Err(BatchItemError {
                kind: doc
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("error")
                    .to_string(),
                message: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified failure")
                    .to_string(),
            }));
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("batch item lacks '{name}'")))
        };
        let schedule = match doc.get("schedule") {
            Some(body) => schedule_from_json(body).map_err(ClientError::Protocol)?,
            None => Schedule::new(),
        };
        Ok(Ok(BatchItemReply {
            d: field("d")?,
            g: field("g")?,
            slots: field("slots")?,
            schedule,
            degraded: doc.get("degraded").and_then(Json::as_bool).unwrap_or(false),
        }))
    }

    fn decode_batch_summary(doc: &Json) -> Result<BatchSummary, ClientError> {
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("batch summary lacks '{name}'")))
        };
        Ok(BatchSummary {
            items: field("items")?,
            routed: field("routed")?,
            failed: field("failed")?,
            slots: field("slots")?,
            micros: doc.get("micros").and_then(Json::as_u64).unwrap_or(0),
            topologies: Self::decode_shapes(doc)?,
        })
    }

    fn decode_route(doc: &Json) -> Result<RouteReply, ClientError> {
        let slots = doc
            .get("slots")
            .and_then(Json::as_usize)
            .ok_or_else(|| ClientError::Protocol("route response lacks 'slots'".into()))?;
        let cache_hit = doc.get("cache").and_then(Json::as_str) == Some("hit");
        let micros = doc.get("micros").and_then(Json::as_u64).unwrap_or(0);
        let schedule = match doc.get("schedule") {
            Some(body) => schedule_from_json(body).map_err(ClientError::Protocol)?,
            None => Schedule::new(),
        };
        Ok(RouteReply {
            slots,
            cache_hit,
            micros,
            schedule,
            degraded: doc.get("degraded").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}
