//! The std-only TCP front door: a JSON-lines server over
//! [`RoutingService`].
//!
//! One thread per connection (the service's admission gate, not the
//! thread count, bounds concurrent routing work); a `shutdown` op stops
//! the accept loop by flagging it and poking a wake-up connection at the
//! listener. Handler threads are detached — shutdown returns once the
//! accept loop exits; connections in flight finish their current line and
//! drop.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::json::Json;
use crate::proto::{
    error_response, info_response, parse_request, pong_response, route_response, shutdown_response,
    stats_response, WireRequest,
};
use crate::service::RoutingService;

/// What a finished [`serve`] loop saw.
#[derive(Debug, Clone, Copy)]
pub struct ServerSummary {
    /// Connections accepted (the shutdown wake-up excluded).
    pub connections: u64,
    /// Request lines answered.
    pub requests: u64,
}

/// Serves `service` on `listener` until a client sends
/// `{"op":"shutdown"}`. Blocks the calling thread.
pub fn serve(
    listener: TcpListener,
    service: Arc<RoutingService>,
) -> std::io::Result<ServerSummary> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        connections.fetch_add(1, Ordering::Relaxed);
        let service = service.clone();
        let shutdown = shutdown.clone();
        let requests = requests.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(stream, addr, &service, &shutdown, &requests);
        });
    }

    Ok(ServerSummary {
        connections: connections.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
    })
}

fn handle_connection(
    stream: TcpStream,
    listener_addr: SocketAddr,
    service: &RoutingService,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        requests.fetch_add(1, Ordering::Relaxed);
        let (response, stop) = respond(&line, service);
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(listener_addr);
            break;
        }
    }
    Ok(())
}

/// Answers one request line; the flag says "stop the server after this".
fn respond(line: &str, service: &RoutingService) -> (Json, bool) {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (error_response(e.to_string()), false),
    };
    let topology = service.topology();
    match parse_request(&doc, &topology) {
        Err(e) => (error_response(e), false),
        Ok(WireRequest::Ping) => (pong_response(), false),
        Ok(WireRequest::Info) => (
            info_response(&topology, service.shard_count(), service.cache_capacity()),
            false,
        ),
        Ok(WireRequest::Stats) => (stats_response(&service.metrics()), false),
        Ok(WireRequest::Shutdown) => (shutdown_response(), true),
        Ok(WireRequest::Route { req, want_schedule }) => match service.route(&req) {
            Ok(reply) => (route_response(req.kind(), &reply, want_schedule), false),
            Err(e) => (error_response(e.to_string()), false),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServiceClient;
    use crate::service::ServiceConfig;
    use pops_bipartite::ColorerKind;
    use pops_network::{PopsTopology, Simulator};
    use pops_permutation::families::vector_reversal;

    fn spawn_server(
        topology: PopsTopology,
    ) -> (SocketAddr, std::thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(RoutingService::with_config(
            topology,
            ServiceConfig {
                shards: 2,
                cache_capacity: 32,
                max_in_flight: 4,
                colorer: ColorerKind::AlternatingPath,
            },
        ));
        let handle = std::thread::spawn(move || serve(listener, service).unwrap());
        (addr, handle)
    }

    #[test]
    fn end_to_end_route_verify_stats_shutdown() {
        let t = PopsTopology::new(4, 4);
        let (addr, handle) = spawn_server(t);
        let mut client = ServiceClient::connect(addr).unwrap();

        client.ping().unwrap();
        let info = client.info().unwrap();
        assert_eq!((info.d, info.g), (4, 4));

        let pi = vector_reversal(16);
        let first = client.route_permutation("theorem2", &pi).unwrap();
        assert_eq!(first.slots, 2);
        assert!(!first.cache_hit);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&first.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();

        let again = client.route_permutation("theorem2", &pi).unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.schedule, first.schedule);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));

        client.shutdown().unwrap();
        let summary = handle.join().unwrap();
        assert!(summary.requests >= 5);
        assert!(summary.connections >= 1);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_server() {
        let (addr, handle) = spawn_server(PopsTopology::new(2, 2));
        let mut client = ServiceClient::connect(addr).unwrap();
        for bad in [
            "this is not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"route","perm":[0,1]}"#,
        ] {
            let err = client.call_raw(bad).unwrap_err();
            assert!(err.to_string().contains("server error"), "{err}");
        }
        // Still alive and serving.
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (addr, handle) = spawn_server(PopsTopology::new(4, 4));
        let pi = vector_reversal(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pi = pi.clone();
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let reply = client.route_permutation("theorem2", &pi).unwrap();
                        assert_eq!(reply.slots, 2);
                    }
                });
            }
        });
        let mut client = ServiceClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        // All 20 requests share one key. The service does not coalesce
        // in-flight duplicates, so each client's *first* request can race
        // into the miss window — between 1 and 4 misses, the rest hits.
        let misses = stats.get("misses").unwrap().as_u64().unwrap();
        let hits = stats.get("hits").unwrap().as_u64().unwrap();
        assert!((1..=4).contains(&misses), "misses {misses}");
        assert_eq!(hits + misses, 20);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
