//! The std-only TCP front door: a JSON-lines server over a
//! [`TopologyRouter`] of [`RoutingService`]s, hardened for hostile
//! traffic.
//!
//! One server fronts **many topologies**: each request's `d`/`g` fields
//! select (and lazily construct) the backend service, bounded by the
//! router's LRU registry; `{"op":"batch"}` requests fan a whole vector of
//! permutations through the per-topology batch fast path and stream one
//! response line per item plus a trailing summary.
//!
//! Connections speak JSON lines until (and unless) they negotiate the
//! opt-in binary framing with `{"op":"hello","format":"binary"}` — the
//! acknowledgement is the last JSON line, and both directions then switch
//! to the length-prefixed frames of [`crate::frame`]. The binary reader
//! enforces the same caps as the line reader (`max_line_bytes` bounds the
//! frame payload, `read_timeout` bounds one complete frame) and control
//! ops keep their JSON bodies inside `TAG_JSON` frames, so the two
//! transports share one feature set and error vocabulary.
//!
//! One thread per connection (each service's admission gate, not the
//! thread count, bounds concurrent routing work), governed by a
//! [`ServerConfig`]:
//!
//! * **Bounded reads.** Request lines are read through a capped reader —
//!   a frame longer than `max_line_bytes` is answered with a structured
//!   `too-large` error and the connection closed, instead of buffering an
//!   unterminated line without bound (a remote OOM).
//! * **Read deadlines.** `read_timeout` is the budget for receiving one
//!   *complete* line, measured from when the server starts waiting — a
//!   slow-loris client dripping a byte per second cannot reset it, and an
//!   idle connection is reclaimed after the same budget. Timed-out
//!   connections get a structured `timeout` error (best effort) and are
//!   closed; the handler thread exits rather than leaking.
//! * **Connection cap.** At `max_connections` live handlers, further
//!   accepts are answered with an `unavailable` error and closed.
//! * **Graceful drain.** Every accepted connection is tracked in a
//!   registry. `{"op":"shutdown"}` flips the shutdown flag and [`serve`]
//!   then **joins** every handler thread before returning. Handlers
//!   waiting for input observe the flag within two poll ticks and close
//!   their own sockets — nobody closes a socket out from under a request,
//!   so any request line fully delivered before shutdown is read and
//!   answered, and a handler mid-request finishes writing its complete
//!   response first. Only lines still partially in flight when the flag
//!   flips are dropped.
//!
//! `std::net` exposes no `SO_KEEPALIVE` setter (and this workspace takes
//! no socket crate), so dead-peer detection is subsumed by the read
//! deadline; `tcp_nodelay` is available for latency-sensitive callers.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::exposition::{self, Exposition};
use crate::frame::{self, TAG_BATCH, TAG_JSON, TAG_ROUTE};
use crate::json::Json;
use crate::metrics::{MetricsSnapshot, RequestKind, ServiceMetrics};
use crate::proto::BatchItemRequest;
use crate::proto::{
    attach_trace, batch_item_error, batch_item_response, batch_summary_response,
    cache_persist_response, cache_stats_response, error_response, hello_response, info_response,
    overloaded_response, parse_request, pong_response, requested_shape, route_response,
    shutdown_response, stats_response, CacheAction, WireErrorKind, WireFormat, WireRequest,
};
use crate::router::{RouterError, TopologyRouter, TopologyRouterConfig};
use crate::service::{RoutingService, ServiceRequest};
use crate::trace::{RequestTrace, SlowLog, SlowVerdict};
use pops_core::{FaultRoutingError, RoutingError};
use pops_network::{FaultSet, PopsTopology};
use pops_permutation::Permutation;

/// Limits and timeouts of one [`serve_with_config`] loop.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Budget for receiving one complete request line (also the idle
    /// timeout between requests). `None` disables the deadline.
    pub read_timeout: Option<Duration>,
    /// Per-write socket timeout for responses. `None` disables it.
    pub write_timeout: Option<Duration>,
    /// Maximum request-line length in bytes (newline excluded). Longer
    /// frames get a `too-large` error and the connection is closed.
    pub max_line_bytes: usize,
    /// Maximum live connections; further accepts are refused with an
    /// `unavailable` error.
    pub max_connections: usize,
    /// Whether to set `TCP_NODELAY` on accepted sockets.
    pub tcp_nodelay: bool,
    /// Directory the `{"op":"cache"}` save/load actions spill to and
    /// restore from (one file per topology,
    /// [`crate::persist::topology_file_path`]). `None` — the default —
    /// answers those actions with a `bad-request` error; clients never
    /// choose paths.
    pub cache_dir: Option<PathBuf>,
    /// Most items one `{"op":"batch"}` request may carry; larger batches
    /// are refused whole with a `too-large` error (never silently
    /// truncated).
    pub max_batch_items: usize,
    /// Most **distinct topologies** one batch may touch. Admitting a
    /// topology can construct a warm service, so without this cap a
    /// single batch line naming ~`max_batch_items` distinct shapes would
    /// amplify into that many expensive constructions (and LRU-evict
    /// every other client's warm shape on the way). Refused whole with
    /// `too-large`.
    pub max_batch_topologies: usize,
    /// Global admission watermark: the most route/batch requests allowed
    /// in service at once across every connection. A request beyond it is
    /// **shed** — answered immediately with a typed `overloaded` error
    /// carrying `retry-after-ms` — instead of queueing unboundedly at the
    /// per-service admission gate. Control ops (ping, info, stats, cache)
    /// are never shed, so the server stays observable under overload.
    /// `None` — the default — disables watermark shedding.
    pub overload_watermark: Option<usize>,
    /// Per-client token-bucket quota in route/batch requests per second,
    /// keyed by peer IP. Requests beyond the bucket are shed with an
    /// `overloaded` error whose `retry-after-ms` is the time until the
    /// next token. `None` — the default — disables quotas.
    pub quota_rps: Option<u64>,
    /// Token-bucket burst capacity (tokens a quiet client accumulates).
    /// `None` defaults to the rate, i.e. a one-second burst.
    pub quota_burst: Option<u64>,
    /// Threshold above which a finished request emits a rate-limited
    /// slow-request trace line (see [`crate::trace`]) to stderr. `None` —
    /// the default — disables the slow log; trace ids are still assigned
    /// and echoed on JSON responses either way.
    pub slow_threshold: Option<Duration>,
    /// Port for a dedicated metrics sidecar listener answering
    /// `GET /metrics`, bound on the same interface as the main listener
    /// (the main listener answers `GET /metrics` regardless, so scrapers
    /// work without this). `None` — the default — binds no sidecar.
    pub metrics_port: Option<u16>,
    /// Operator-declared baseline fault sets, keyed by `(d, g)`: the
    /// coupler ids listed for a shape are composed (set union) into every
    /// `theorem2`/`faults` route and batch item served on that shape —
    /// the wire story of `pops serve --fault DxG:c1,c2,...`. Diagnostic
    /// kinds (`single-slot`, `direct`, `structured`, `h-relation`) probe
    /// the *healthy* fabric and ignore the baseline. Ids must be in
    /// `0..g²`; [`serve_router`] refuses to start otherwise. Empty — the
    /// default — declares every topology healthy.
    pub baseline_faults: Vec<((usize, usize), Vec<usize>)>,
    /// Append-only JSONL trace file every decoded route/batch/cache
    /// request is teed to (see [`crate::record`]) — the wire story of
    /// `pops serve --record trace.jsonl`. Recording is a pure observer:
    /// responses, schedules, and errors are byte-identical with it on or
    /// off. `None` — the default — records nothing.
    pub record_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            // Large enough for a permutation over the biggest topology the
            // CLI accepts (n = 2^20 needs ~8 MiB of JSON), small enough to
            // bound a hostile unterminated line.
            max_line_bytes: 16 << 20,
            max_connections: 256,
            tcp_nodelay: false,
            cache_dir: None,
            max_batch_items: 1024,
            max_batch_topologies: 8,
            overload_watermark: None,
            quota_rps: None,
            quota_burst: None,
            slow_threshold: None,
            metrics_port: None,
            baseline_faults: Vec::new(),
            record_path: None,
        }
    }
}

/// What a finished [`serve`] loop saw.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Connections accepted and handled (the shutdown wake-up and
    /// capacity-rejected connections excluded).
    pub connections: u64,
    /// Request lines answered.
    pub requests: u64,
    /// The fleet-wide aggregate snapshot at shutdown: every resident
    /// topology's registry absorbed, plus the connection layer.
    pub metrics: MetricsSnapshot,
}

/// What clients are told to wait when a watermark shed happens. The
/// watermark clears as soon as any in-flight request finishes, so this
/// is deliberately short.
const WATERMARK_RETRY_MS: u64 = 100;

/// Most peer IPs tracked by the quota map at once; beyond this, fully
/// refilled (idle) buckets are pruned, and as a last resort the map is
/// cleared — a source-address spray degrades quota precision, never
/// memory.
const MAX_QUOTA_CLIENTS: usize = 4096;

/// Why a request was shed, and what to tell the client.
#[derive(Debug)]
struct Shed {
    /// `true` for a per-client quota shed, `false` for the watermark.
    quota: bool,
    retry_after_ms: u64,
    msg: String,
}

/// One peer's token bucket: `tokens` refill at the configured rate up to
/// the burst capacity; each admitted route/batch request spends one.
struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn refill(&mut self, now: Instant, rps: u64, burst: u64) {
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + elapsed * rps as f64).min(burst as f64);
        self.refilled = now;
    }
}

/// Overload control for route/batch work: a per-client token-bucket
/// quota (checked first — a noisy neighbour is shed before it can claim
/// a watermark slot) and a global in-flight watermark. Both default off;
/// with neither configured [`OverloadControl::try_admit`] is two `None`
/// checks and touches no shared state.
struct OverloadControl {
    watermark: Option<usize>,
    quota_rps: Option<u64>,
    quota_burst: u64,
    inflight: AtomicU64,
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
}

impl OverloadControl {
    fn from_config(config: &ServerConfig) -> Self {
        Self {
            watermark: config.overload_watermark,
            quota_rps: config.quota_rps,
            quota_burst: config.quota_burst.or(config.quota_rps).unwrap_or(1).max(1),
            inflight: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits one route/batch request or says how it was shed. The
    /// returned guard releases the watermark slot when dropped — hold it
    /// for the request's whole time in service.
    fn try_admit(&self, peer: Option<IpAddr>) -> Result<InflightGuard<'_>, Shed> {
        if let (Some(rps), Some(ip)) = (self.quota_rps, peer) {
            let burst = self.quota_burst;
            let now = Instant::now();
            let mut buckets = self
                .buckets
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let bucket = buckets.entry(ip).or_insert(TokenBucket {
                tokens: burst as f64,
                refilled: now,
            });
            bucket.refill(now, rps, burst);
            if bucket.tokens < 1.0 {
                let deficit = 1.0 - bucket.tokens;
                let retry_after_ms = ((deficit / rps as f64) * 1000.0).ceil().max(1.0) as u64;
                drop(buckets);
                return Err(Shed {
                    quota: true,
                    retry_after_ms,
                    msg: format!("client quota exceeded ({rps} requests/s, burst {burst})"),
                });
            }
            bucket.tokens -= 1.0;
            if buckets.len() > MAX_QUOTA_CLIENTS {
                buckets.retain(|_, b| {
                    let mut probe = TokenBucket {
                        tokens: b.tokens,
                        refilled: b.refilled,
                    };
                    probe.refill(now, rps, burst);
                    probe.tokens < burst as f64
                });
                if buckets.len() > MAX_QUOTA_CLIENTS {
                    buckets.clear();
                }
            }
        }
        if let Some(watermark) = self.watermark {
            let previous = self.inflight.fetch_add(1, Ordering::SeqCst);
            if previous as usize >= watermark {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                return Err(Shed {
                    quota: false,
                    retry_after_ms: WATERMARK_RETRY_MS,
                    msg: format!("server is at its in-flight watermark ({watermark})"),
                });
            }
            return Ok(InflightGuard {
                control: self,
                counted: true,
            });
        }
        Ok(InflightGuard {
            control: self,
            counted: false,
        })
    }
}

/// Releases the watermark slot its request held.
struct InflightGuard<'a> {
    control: &'a OverloadControl,
    counted: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if self.counted {
            self.control.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Shared state of one serve loop: the topology router, the shutdown
/// flag, the connection registry, and the counters the summary reports.
struct ServeState {
    router: Arc<TopologyRouter>,
    /// Connection-layer counters (opened/closed/rejected, oversized
    /// lines, read timeouts). Request counters live in each topology's
    /// own service registry; the `stats` op absorbs both into one
    /// fleet-wide view.
    server_metrics: Arc<ServiceMetrics>,
    config: ServerConfig,
    listener_addr: SocketAddr,
    /// When the server started, for `uptime_secs` and the exposition.
    started: Instant,
    /// The slow-request log, present when `slow_threshold` is set.
    slow_log: Option<SlowLog>,
    /// Overload control for route/batch work (no-op unless configured).
    overload: OverloadControl,
    shutdown: AtomicBool,
    /// Live connections by id: their join handles (joined by the accept
    /// loop's reaper or the final drain) — also the live-connection count
    /// the capacity cap checks.
    conns: Mutex<HashMap<u64, ConnHandle>>,
    /// Ids of handlers that have exited, awaiting a reap.
    finished: Mutex<Vec<u64>>,
    requests: AtomicU64,
    /// Live capacity-reject helper threads, capped at
    /// [`MAX_REJECT_THREADS`] so a connect flood against a full server
    /// cannot mint threads faster than they retire.
    reject_threads: AtomicU64,
    /// The request-trace tee, present when `record_path` is set. Purely
    /// observational: hooks fire after decode and never alter responses.
    recorder: Option<crate::record::TraceRecorder>,
}

struct ConnHandle {
    join: Option<JoinHandle<()>>,
}

impl ServeState {
    /// Flips the shutdown flag and pokes the accept loop. Handlers notice
    /// the flag within [`SHUTDOWN_POLL`] (or finish their in-flight
    /// response first); [`serve_with_config`] joins them all.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.listener_addr);
    }
}

/// Serves `service` on `listener` with the default [`ServerConfig`] until
/// a client sends `{"op":"shutdown"}`. Blocks the calling thread.
pub fn serve(
    listener: TcpListener,
    service: Arc<RoutingService>,
) -> std::io::Result<ServerSummary> {
    serve_with_config(listener, service, ServerConfig::default())
}

/// Serves `service` on `listener` under `config` until a client sends
/// `{"op":"shutdown"}` — the **single-topology** compatibility entry:
/// the service is wrapped as the pinned sole resident of a one-slot
/// [`TopologyRouter`], so requests for any other shape are refused with a
/// `topology-limit` error exactly as a fixed-shape server should. Blocks
/// the calling thread; returns only after **every** accepted connection's
/// handler thread has been joined.
pub fn serve_with_config(
    listener: TcpListener,
    service: Arc<RoutingService>,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    // The caller already built (and owns the memory of) this service, so
    // the router must accept its shape whatever its size — the size
    // limits exist to stop *remote* clients minting services, and with a
    // one-slot all-pinned registry no dynamic admission can happen.
    let router_config = TopologyRouterConfig {
        max_topologies: 1,
        ..TopologyRouterConfig::default()
    };
    let max_n = router_config.max_n.max(service.topology().n());
    let router = Arc::new(TopologyRouter::from_service(
        service,
        TopologyRouterConfig {
            max_n,
            ..router_config
        },
    ));
    serve_router(listener, router, config)
}

/// Serves a whole [`TopologyRouter`] on `listener` under `config` until a
/// client sends `{"op":"shutdown"}` — the multi-topology entry behind
/// `pops serve`. Blocks the calling thread; returns only after **every**
/// accepted connection's handler thread has been joined.
pub fn serve_router(
    listener: TcpListener,
    router: Arc<TopologyRouter>,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    // Refuse a misconfigured baseline up front: `fail_coupler` panics on
    // an out-of-range id, and a fault list that silently dropped entries
    // would serve schedules that drive couplers the operator declared
    // dead.
    for ((d, g), ids) in &config.baseline_faults {
        let couplers = g.saturating_mul(*g);
        if let Some(&c) = ids.iter().find(|&&c| c >= couplers) {
            return Err(std::io::Error::other(format!(
                "baseline fault set for {d}x{g}: coupler {c} out of range (couplers: 0..{couplers})"
            )));
        }
    }
    let metrics = Arc::new(ServiceMetrics::new());
    let listener_addr = listener.local_addr()?;
    // Open the trace file before accepting anything: an unwritable
    // recording target is a boot error, not a silently-dropped tee.
    let recorder = match &config.record_path {
        None => None,
        Some(path) => Some(crate::record::TraceRecorder::create(path).map_err(|e| {
            std::io::Error::other(format!("cannot record to {}: {e}", path.display()))
        })?),
    };
    let state = Arc::new(ServeState {
        router,
        server_metrics: metrics.clone(),
        listener_addr,
        started: Instant::now(),
        slow_log: config.slow_threshold.map(SlowLog::new),
        overload: OverloadControl::from_config(&config),
        config,
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        finished: Mutex::new(Vec::new()),
        requests: AtomicU64::new(0),
        reject_threads: AtomicU64::new(0),
        recorder,
    });
    // Optional metrics sidecar: a second listener on the same interface
    // that only ever answers HTTP GETs, so a scraper never competes with
    // wire clients for the main accept loop or the connection cap.
    let sidecar = match state.config.metrics_port {
        None => None,
        Some(port) => {
            let sidecar_listener = TcpListener::bind((listener_addr.ip(), port))?;
            let sidecar_state = state.clone();
            Some(
                std::thread::Builder::new()
                    .name("pops-metrics".into())
                    .spawn(move || metrics_sidecar_loop(sidecar_listener, &sidecar_state))?,
            )
        }
    };
    let mut next_id: u64 = 0;
    let mut connections: u64 = 0;

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        reap_finished(&state);
        let active = state
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        if active >= state.config.max_connections {
            metrics.record_connection_rejected();
            reject_at_capacity(stream, &state);
            continue;
        }
        connections += 1;
        metrics.record_connection_opened();
        let id = next_id;
        next_id += 1;
        let handler_state = state.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("pops-conn-{id}"))
            .spawn(move || {
                let _ = handle_connection(stream, &handler_state, id);
                handler_state.server_metrics.record_connection_closed();
                handler_state
                    .finished
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(id);
            });
        match spawned {
            Ok(join) => {
                state
                    .conns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(id, ConnHandle { join: Some(join) });
            }
            Err(_) => {
                metrics.record_connection_closed();
            }
        }
    }

    // Graceful drain: join every handler. Idle handlers observe the flag
    // within a poll tick; in-flight ones finish writing their complete
    // responses first.
    let drained: Vec<ConnHandle> = {
        let mut conns = state
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        conns.drain().map(|(_, conn)| conn).collect()
    };
    for mut conn in drained {
        if let Some(join) = conn.join.take() {
            let _ = join.join();
        }
    }
    if let Some(join) = sidecar {
        let _ = join.join();
    }

    let (aggregate, _) = aggregate_stats(&state);
    Ok(ServerSummary {
        connections,
        requests: state.requests.load(Ordering::Relaxed),
        metrics: aggregate,
    })
}

/// Joins handler threads that have already exited, keeping the registry
/// (and its join handles) from growing without bound on a long-lived
/// server.
fn reap_finished(state: &ServeState) {
    let finished: Vec<u64> = {
        let mut list = state
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *list)
    };
    if finished.is_empty() {
        return;
    }
    let mut conns = state
        .conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for id in finished {
        if let Some(mut conn) = conns.remove(&id) {
            if let Some(join) = conn.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// How often a waiting reader re-checks the shutdown flag. Short enough
/// that drain latency is imperceptible, long enough that an idle
/// connection costs ~20 wakeups per second.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Hard bounds on the post-error drain: total wall-clock and total bytes.
const DRAIN_BUDGET: Duration = Duration::from_millis(250);
const DRAIN_MAX_BYTES: usize = 64 * 1024;

/// Most capacity-reject helper threads alive at once; connections beyond
/// this under a connect flood are dropped without the polite error line.
const MAX_REJECT_THREADS: u64 = 32;

/// Answers a connection refused at the capacity limit with a structured
/// error (best effort) and drops it. The polite path runs on a
/// short-lived thread (its lifetime is bounded by a 1 s write timeout
/// plus the [`DRAIN_BUDGET`] drain) so a reject never stalls the accept
/// loop: after the error line the write side is FIN'd and any request
/// the client already pipelined is swallowed — closing with unread input
/// would RST the error line out of the peer's receive buffer. At most
/// [`MAX_REJECT_THREADS`] of these run concurrently; a flood beyond that
/// gets its sockets dropped on the spot, so rejected clients can never
/// mint unbounded threads. (The helpers are detached: up to 32 may
/// linger ~1 s past `serve` returning, holding nothing but a dead
/// socket.)
fn reject_at_capacity(stream: TcpStream, state: &Arc<ServeState>) {
    if state.reject_threads.fetch_add(1, Ordering::SeqCst) >= MAX_REJECT_THREADS {
        state.reject_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood mode: drop without the courtesy line
    }
    let helper_state = state.clone();
    let spawned = std::thread::Builder::new()
        .name("pops-conn-reject".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut writer = stream;
            let response = error_response(
                WireErrorKind::Unavailable,
                format!(
                    "server is at its connection capacity ({})",
                    helper_state.config.max_connections
                ),
            );
            let text = response.to_string();
            if writeln!(writer, "{text}").is_ok() {
                // Even a courtesy rejection is wire traffic and a typed
                // error — the counters must see both.
                helper_state
                    .server_metrics
                    .record_wire_bytes(false, 0, text.len() as u64 + 1);
                helper_state
                    .server_metrics
                    .record_wire_error(WireErrorKind::Unavailable);
            }
            close_after_error(&mut writer);
            helper_state.reject_threads.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        state.reject_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Politely closes a connection after a fatal error line: FIN the write
/// side, then briefly drain pending input — dropping a socket with
/// unread data makes the kernel RST it, which would discard the error
/// line out of the peer's receive buffer before it reads it. The drain
/// is hard-bounded by [`DRAIN_BUDGET`] wall-clock and [`DRAIN_MAX_BYTES`]
/// total, so a client dripping bytes cannot pin the thread.
fn close_after_error(writer: &mut TcpStream) {
    let _ = writer.shutdown(Shutdown::Write);
    let deadline = Instant::now() + DRAIN_BUDGET;
    let mut budget = DRAIN_MAX_BYTES;
    let mut sink = [0u8; 1024];
    while budget > 0 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() || writer.set_read_timeout(Some(remaining)).is_err() {
            break;
        }
        match std::io::Read::read(writer, &mut sink) {
            Ok(n) if n > 0 => budget = budget.saturating_sub(n),
            _ => break, // EOF, timeout, or error — done draining
        }
    }
}

/// How reading one request line ended. Shared with the recording proxy
/// ([`crate::record`]), which reads client traffic under the same caps.
pub(crate) enum LineOutcome {
    /// A complete line (newline stripped, possibly invalid JSON).
    Line(String),
    /// The peer closed the connection (mid-line partials are dropped).
    Eof,
    /// The line exceeded the configured cap; carries the bytes consumed
    /// before giving up, so the traffic counters still see them.
    TooLong { consumed: u64 },
    /// No complete line arrived within the read deadline; carries the
    /// partial bytes consumed while waiting.
    TimedOut { consumed: u64 },
    /// The server is shutting down and no bytes were pending — the
    /// handler should close quietly.
    ShuttingDown,
}

/// Reads one `\n`-terminated line, enforcing the length cap and the
/// whole-line deadline. Waits in [`SHUTDOWN_POLL`] slices so the shutdown
/// flag is noticed promptly — but only on a tick where no data was
/// pending, and even then only after one extra grace tick (catching a
/// request segment that was in flight when the flag flipped). A request
/// line delivered before shutdown is therefore read and served, and no
/// socket is ever torn down mid-request; only partial lines are dropped.
pub(crate) fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max_bytes: usize,
    deadline: Option<Duration>,
    shutdown: &AtomicBool,
) -> std::io::Result<LineOutcome> {
    let mut line: Vec<u8> = Vec::new();
    let started = Instant::now();
    let mut shutdown_grace_used = false;
    loop {
        let consumed = line.len() as u64;
        let mut slice = SHUTDOWN_POLL;
        if let Some(budget) = deadline {
            match budget.checked_sub(started.elapsed()) {
                None => return Ok(LineOutcome::TimedOut { consumed }),
                Some(remaining) if remaining.is_zero() => {
                    return Ok(LineOutcome::TimedOut { consumed })
                }
                Some(remaining) => slice = slice.min(remaining),
            }
        }
        reader.get_ref().set_read_timeout(Some(slice))?;
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Nothing arrived this tick: notice a shutdown (after one
                // grace tick for a segment racing the flag), otherwise
                // keep waiting towards the line deadline.
                if shutdown.load(Ordering::SeqCst) {
                    if shutdown_grace_used {
                        return Ok(LineOutcome::ShuttingDown);
                    }
                    shutdown_grace_used = true;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineOutcome::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if line.len() + newline > max_bytes {
                    return Ok(LineOutcome::TooLong {
                        consumed: (line.len() + newline) as u64,
                    });
                }
                // lint: allow(panic-freedom) -- `newline` was returned by position() over `available`
                line.extend_from_slice(&available[..newline]);
                reader.consume(newline + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                // Invalid UTF-8 flows through lossily and fails JSON
                // parsing with a structured `parse` error.
                return Ok(LineOutcome::Line(
                    String::from_utf8_lossy(&line).into_owned(),
                ));
            }
            None => {
                let chunk = available.len();
                if line.len() + chunk > max_bytes {
                    return Ok(LineOutcome::TooLong {
                        consumed: (line.len() + chunk) as u64,
                    });
                }
                line.extend_from_slice(available);
                reader.consume(chunk);
                // Still mid-line: a shutdown abandons the partial (only
                // *complete* lines are owed a response). Without this, a
                // client dripping bytes would dodge the WouldBlock tick
                // below and stall the drain for the whole read deadline —
                // or forever with timeouts disabled.
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(LineOutcome::ShuttingDown);
                }
            }
        }
    }
}

/// How reading one binary frame ended — the frame-mode mirror of
/// [`LineOutcome`], under the same caps and deadlines.
pub(crate) enum FrameOutcome {
    /// A complete frame payload (the 4-byte length prefix stripped).
    Frame(Vec<u8>),
    /// The peer closed the connection (mid-frame partials are dropped).
    Eof,
    /// The declared payload length exceeded the configured cap; carries
    /// the prefix bytes consumed.
    TooLong { consumed: u64 },
    /// No complete frame arrived within the read deadline; carries the
    /// partial bytes consumed while waiting.
    TimedOut { consumed: u64 },
    /// The server is shutting down — the handler should close quietly.
    ShuttingDown,
}

/// Reads one length-prefixed frame, enforcing the payload cap and the
/// whole-frame deadline with the same shutdown-poll contract as
/// [`read_bounded_line`]: a frame fully delivered before shutdown is
/// read and served; only partial frames are dropped. The cap is checked
/// against the **declared** length as soon as the 4-byte prefix arrives,
/// so an oversized frame is refused before buffering any of its payload.
pub(crate) fn read_bounded_frame(
    reader: &mut BufReader<TcpStream>,
    max_bytes: usize,
    deadline: Option<Duration>,
    shutdown: &AtomicBool,
) -> std::io::Result<FrameOutcome> {
    let mut buf: Vec<u8> = Vec::new();
    let mut payload_len: Option<usize> = None;
    let started = Instant::now();
    let mut shutdown_grace_used = false;
    loop {
        let consumed = buf.len() as u64;
        let mut slice = SHUTDOWN_POLL;
        if let Some(budget) = deadline {
            match budget.checked_sub(started.elapsed()) {
                None => return Ok(FrameOutcome::TimedOut { consumed }),
                Some(remaining) if remaining.is_zero() => {
                    return Ok(FrameOutcome::TimedOut { consumed })
                }
                Some(remaining) => slice = slice.min(remaining),
            }
        }
        reader.get_ref().set_read_timeout(Some(slice))?;
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if shutdown_grace_used {
                        return Ok(FrameOutcome::ShuttingDown);
                    }
                    shutdown_grace_used = true;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(FrameOutcome::Eof);
        }
        // Consume only this frame's bytes; pipelined frames stay buffered.
        let needed = match payload_len {
            None => 4 - buf.len(),
            Some(len) => 4 + len - buf.len(),
        };
        let take = needed.min(available.len());
        // lint: allow(panic-freedom) -- `take` is clamped to available.len() on the line above
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if let (None, Some(header)) = (payload_len, buf.first_chunk::<4>()) {
            let len = u32::from_le_bytes(*header) as usize;
            if len > max_bytes {
                return Ok(FrameOutcome::TooLong { consumed: 4 });
            }
            payload_len = Some(len);
        }
        if let Some(len) = payload_len {
            if buf.len() == 4 + len {
                buf.drain(..4);
                return Ok(FrameOutcome::Frame(buf));
            }
        }
        // Still mid-frame: a shutdown abandons the partial (only complete
        // frames are owed a response), exactly like the line reader.
        if shutdown.load(Ordering::SeqCst) {
            return Ok(FrameOutcome::ShuttingDown);
        }
    }
}

/// One response unit: a JSON document (a line on JSON connections, a
/// `TAG_JSON` frame on binary ones) or an already-encoded binary frame
/// payload (binary connections only — the JSON dispatcher never emits
/// these).
enum Outgoing {
    Json(Json),
    Frame(Vec<u8>),
}

/// Writes one batch of responses in the connection's negotiated format,
/// returning the bytes put on the wire (newlines and length prefixes
/// included) for the per-format traffic counters.
fn write_responses(
    writer: &mut TcpStream,
    format: WireFormat,
    responses: &[Outgoing],
) -> std::io::Result<u64> {
    // The whole batch goes out in ONE write: per-response (or worse,
    // per-fragment) writes on a raw socket without TCP_NODELAY let
    // Nagle hold the tail segment until the peer's delayed ACK fires —
    // a ~40 ms stall per reply that the soak harness flags as p99.
    let mut wire: Vec<u8> = Vec::new();
    for response in responses {
        match (format, response) {
            (WireFormat::Json, Outgoing::Json(doc)) => {
                wire.extend_from_slice(doc.to_string().as_bytes());
                wire.push(b'\n');
            }
            (WireFormat::Json, Outgoing::Frame(_)) => {
                // The JSON dispatcher never queues binary frames; refuse
                // the write rather than panic the connection thread.
                return Err(std::io::Error::other(
                    "internal: binary frame queued on a JSON connection",
                ));
            }
            (WireFormat::Binary, Outgoing::Json(doc)) => {
                let payload = frame::json_payload(doc);
                wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                wire.extend_from_slice(&payload);
            }
            (WireFormat::Binary, Outgoing::Frame(payload)) => {
                wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                wire.extend_from_slice(payload);
            }
        }
    }
    writer.write_all(&wire)?;
    writer.flush()?;
    Ok(wire.len() as u64)
}

/// Records the typed `kind` of every `ok: false` JSON response about to
/// go on the wire, feeding the `error_kind`-labelled exposition family.
fn record_wire_errors(metrics: &ServiceMetrics, responses: &[Outgoing]) {
    for response in responses {
        let Outgoing::Json(doc) = response else {
            continue;
        };
        if doc.get("ok").and_then(Json::as_bool) != Some(false) {
            continue;
        }
        if let Some(kind) = doc
            .get("kind")
            .and_then(Json::as_str)
            .and_then(WireErrorKind::from_name)
        {
            metrics.record_wire_error(kind);
        }
    }
}

/// One fully-read request's worth of work: its trace, the responses to
/// write, the request bytes consumed, whether the connection should stop,
/// and a wire-format switch negotiated by a `hello`.
type Exchange = (RequestTrace, Vec<Outgoing>, u64, bool, Option<WireFormat>);

fn handle_connection(stream: TcpStream, state: &ServeState, conn_id: u64) -> std::io::Result<()> {
    if state.config.tcp_nodelay {
        let _ = stream.set_nodelay(true);
    }
    stream.set_write_timeout(state.config.write_timeout)?;
    let metrics = &state.server_metrics;
    let peer = stream.peer_addr().ok().map(|addr| addr.ip());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut format = WireFormat::Json;
    let mut seq: u64 = 0;
    loop {
        // No shutdown check here: already-delivered requests (buffered or
        // still a segment in flight) must be served first, and the reader
        // notices the flag itself within two poll ticks.
        let fatal = |kind: WireErrorKind, msg: String, consumed: u64| (kind, msg, consumed);
        let exchange: Result<Exchange, _> = match format {
            WireFormat::Json => {
                let outcome = read_bounded_line(
                    &mut reader,
                    state.config.max_line_bytes,
                    state.config.read_timeout,
                    &state.shutdown,
                )?;
                match outcome {
                    LineOutcome::Eof | LineOutcome::ShuttingDown => break,
                    LineOutcome::TimedOut { consumed } => {
                        metrics.record_read_timeout();
                        Err(fatal(
                            WireErrorKind::Timeout,
                            format!(
                                "no complete request line within {:?}",
                                state.config.read_timeout.unwrap_or_default()
                            ),
                            consumed,
                        ))
                    }
                    LineOutcome::TooLong { consumed } => {
                        metrics.record_oversized_line();
                        Err(fatal(
                            WireErrorKind::TooLarge,
                            format!(
                                "request line exceeds the {}-byte cap",
                                state.config.max_line_bytes
                            ),
                            consumed,
                        ))
                    }
                    LineOutcome::Line(line) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        // A scraper, not a wire client: answer the
                        // HTTP request and close.
                        if let Some(path) = exposition::http_request_path(&line) {
                            let bytes_out = answer_http(&mut writer, state, path);
                            metrics.record_wire_bytes(false, line.len() as u64 + 1, bytes_out);
                            break;
                        }
                        seq += 1;
                        let mut trace = RequestTrace::start(conn_id, seq);
                        state.requests.fetch_add(1, Ordering::Relaxed);
                        let (responses, stop, negotiated) =
                            respond(&line, state, format, peer, &mut trace);
                        Ok((trace, responses, line.len() as u64 + 1, stop, negotiated))
                    }
                }
            }
            WireFormat::Binary => {
                let outcome = read_bounded_frame(
                    &mut reader,
                    state.config.max_line_bytes,
                    state.config.read_timeout,
                    &state.shutdown,
                )?;
                match outcome {
                    FrameOutcome::Eof | FrameOutcome::ShuttingDown => break,
                    FrameOutcome::TimedOut { consumed } => {
                        metrics.record_read_timeout();
                        Err(fatal(
                            WireErrorKind::Timeout,
                            format!(
                                "no complete frame within {:?}",
                                state.config.read_timeout.unwrap_or_default()
                            ),
                            consumed,
                        ))
                    }
                    FrameOutcome::TooLong { consumed } => {
                        metrics.record_oversized_line();
                        Err(fatal(
                            WireErrorKind::TooLarge,
                            format!(
                                "frame exceeds the {}-byte payload cap",
                                state.config.max_line_bytes
                            ),
                            consumed,
                        ))
                    }
                    FrameOutcome::Frame(payload) => {
                        seq += 1;
                        let mut trace = RequestTrace::start(conn_id, seq);
                        state.requests.fetch_add(1, Ordering::Relaxed);
                        let (responses, stop) = respond_frame(&payload, state, peer, &mut trace);
                        Ok((trace, responses, payload.len() as u64 + 4, stop, None))
                    }
                }
            }
        };
        match exchange {
            Err((kind, msg, bytes_in)) => {
                // Fatal transport-level problem: answer in the connection's
                // negotiated format (best effort) and close. The partial
                // request bytes consumed before giving up still count.
                metrics.record_wire_error(kind);
                let responses = [Outgoing::Json(error_response(kind, msg))];
                let bytes_out = write_responses(&mut writer, format, &responses).unwrap_or(0);
                metrics.record_wire_bytes(format == WireFormat::Binary, bytes_in, bytes_out);
                close_after_error(&mut writer);
                break;
            }
            Ok((mut trace, mut responses, bytes_in, stop, negotiated)) => {
                record_wire_errors(metrics, &responses);
                // Echo the trace id on every JSON response so a client
                // can quote it back and an operator can match it to the
                // slow-request log. (Dense binary reply frames have no
                // spare field; their trace ids appear in the log only.)
                for response in &mut responses {
                    if let Outgoing::Json(doc) = response {
                        let tagged =
                            attach_trace(std::mem::replace(doc, Json::Bool(false)), trace.id());
                        *doc = tagged;
                    }
                }
                // One request may stream several responses (the batch op:
                // one per item, then the summary) — written in order on
                // this connection, each under the write timeout.
                let bytes_out = write_responses(&mut writer, format, &responses)?;
                metrics.record_wire_bytes(format == WireFormat::Binary, bytes_in, bytes_out);
                trace.stage("serialize");
                if let Some(slow_log) = &state.slow_log {
                    match slow_log.observe(&trace) {
                        SlowVerdict::Fast => {}
                        SlowVerdict::Emit(line) => {
                            metrics.record_slow_trace(true);
                            eprintln!("{line}");
                        }
                        SlowVerdict::Suppressed => metrics.record_slow_trace(false),
                    }
                }
                if let Some(new_format) = negotiated {
                    if new_format == WireFormat::Binary && format != WireFormat::Binary {
                        metrics.record_binary_negotiated();
                    }
                    format = new_format;
                }
                if stop {
                    state.initiate_shutdown();
                    break;
                }
            }
        }
    }
    Ok(())
}

/// The `(d, g)`-selected backend for one request, or the error line to
/// answer with: unacceptable shapes are `bad-request`, a full registry of
/// pinned topologies is `topology-limit`.
fn select_service(
    state: &ServeState,
    d: usize,
    g: usize,
) -> Result<Arc<RoutingService>, (WireErrorKind, String)> {
    state.router.get(d, g).map_err(|e| match e {
        RouterError::BadShape(_) => (WireErrorKind::BadRequest, e.to_string()),
        RouterError::AtCapacity { .. } => (WireErrorKind::TopologyLimit, e.to_string()),
    })
}

/// The operator-declared baseline fault ids for shape `(d, g)`, empty
/// when the shape has none.
fn baseline_fault_ids(config: &ServerConfig, d: usize, g: usize) -> &[usize] {
    config
        .baseline_faults
        .iter()
        .find(|((bd, bg), _)| (*bd, *bg) == (d, g))
        .map(|(_, ids)| ids.as_slice())
        .unwrap_or(&[])
}

/// Composes the baseline fault set into one route request: a `theorem2`
/// request on a shape with declared faults becomes a fault-routing
/// request, an explicit fault request gains the baseline's couplers (set
/// union), and the diagnostic kinds pass through untouched — they probe
/// the healthy fabric by definition. With an empty baseline this is the
/// identity.
fn compose_baseline_route(
    req: ServiceRequest,
    baseline: &[usize],
    topology: &PopsTopology,
) -> ServiceRequest {
    if baseline.is_empty() {
        return req;
    }
    // Out-of-range ids were refused at boot; the filter keeps this
    // total (fail_coupler panics) whatever the config's provenance.
    let add_baseline = |faults: &mut FaultSet| {
        for &c in baseline.iter().filter(|&&c| c < topology.coupler_count()) {
            faults.fail_coupler(c);
        }
    };
    match req {
        ServiceRequest::Theorem2 { pi } => {
            let mut faults = FaultSet::none(topology);
            add_baseline(&mut faults);
            ServiceRequest::WithFaults { pi, faults }
        }
        ServiceRequest::WithFaults { pi, mut faults } => {
            add_baseline(&mut faults);
            ServiceRequest::WithFaults { pi, faults }
        }
        other => other,
    }
}

/// The wire error kind for a routing failure: a fault set that
/// disconnects a group pair is the typed `unroutable` refusal (the
/// service's pre-flight check raises it before planning); everything
/// else stays the generic `routing` kind.
fn route_error_kind(e: &RoutingError) -> WireErrorKind {
    match e {
        RoutingError::Fault(FaultRoutingError::Disconnected { .. }) => WireErrorKind::Unroutable,
        _ => WireErrorKind::Routing,
    }
}

/// The fleet-wide aggregate snapshot plus the per-topology breakdown the
/// `stats` op reports. The aggregate includes the **retired ledger** —
/// counters of topologies evicted since boot — so fleet totals stay
/// monotonic across LRU churn.
fn aggregate_stats(state: &ServeState) -> (MetricsSnapshot, Vec<(usize, usize, MetricsSnapshot)>) {
    let mut aggregate = state.server_metrics.snapshot();
    aggregate.absorb(&state.router.retired_metrics());
    let mut per_topology = Vec::new();
    for (topology, service) in state.router.services() {
        let snap = service.metrics();
        aggregate.absorb(&snap);
        per_topology.push((topology.d(), topology.g(), snap));
    }
    (aggregate, per_topology)
}

/// Renders the Prometheus exposition for the current fleet state.
fn render_metrics(state: &ServeState) -> String {
    let (aggregate, per_topology) = aggregate_stats(state);
    exposition::render(&Exposition {
        aggregate: &aggregate,
        topologies: &per_topology,
        router: &state.router.stats(),
        version: env!("CARGO_PKG_VERSION"),
        uptime_secs: state.started.elapsed().as_secs(),
    })
}

/// Answers one HTTP request line on an already-sniffed connection:
/// `GET /metrics` gets the exposition, anything else a 404. Returns the
/// bytes written. The response is `HTTP/1.0` + `Connection: close`, so
/// the caller closes afterwards; any headers the client pipelined behind
/// the request line are swallowed by the close-side drain.
fn answer_http(writer: &mut TcpStream, state: &ServeState, path: &str) -> u64 {
    let response = if path == exposition::METRICS_PATH {
        exposition::http_ok(&render_metrics(state))
    } else {
        exposition::http_not_found()
    };
    let written = match writer.write_all(&response) {
        Ok(()) => response.len() as u64,
        Err(_) => 0,
    };
    let _ = writer.flush();
    close_after_error(writer);
    written
}

/// The metrics sidecar accept loop: answers `GET /metrics` (and 404s any
/// other path) until the server shuts down. Scrapes are short-lived
/// one-request connections handled inline — a scraper that stalls
/// mid-request is bounded by a short fixed read deadline, not the main
/// listener's configurable one.
fn metrics_sidecar_loop(listener: TcpListener, state: &Arc<ServeState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => continue,
                });
                let mut writer = stream;
                let outcome = read_bounded_line(
                    &mut reader,
                    8 * 1024,
                    Some(Duration::from_secs(2)),
                    &state.shutdown,
                );
                if let Ok(LineOutcome::Line(line)) = outcome {
                    let path = exposition::http_request_path(&line).unwrap_or("");
                    let bytes_out = answer_http(&mut writer, state, path);
                    state
                        .server_metrics
                        .record_wire_bytes(false, line.len() as u64 + 1, bytes_out);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(SHUTDOWN_POLL);
            }
            Err(_) => std::thread::sleep(SHUTDOWN_POLL),
        }
    }
}

/// Records a shed in the connection-layer registry and builds the typed
/// `overloaded` response the client gets instead of queueing.
fn shed_response(state: &ServeState, shed: Shed) -> Json {
    state.server_metrics.record_shed(shed.quota);
    overloaded_response(shed.msg, shed.retry_after_ms)
}

/// Answers one JSON request document with one or more responses; the
/// flags say "stop the server after this" and "the connection negotiated
/// this format". Route and batch requests select their backend by the
/// request's `d`/`g` fields (defaulting to the server's boot topology
/// field by field) and pass through overload control first; every other
/// op is topology-independent and never shed. In binary mode the same
/// dispatcher serves `TAG_JSON` frames — everything works identically
/// except `hello`, which is only meaningful on a JSON line.
fn respond(
    line: &str,
    state: &ServeState,
    format: WireFormat,
    peer: Option<IpAddr>,
    trace: &mut RequestTrace,
) -> (Vec<Outgoing>, bool, Option<WireFormat>) {
    let router = &state.router;
    let one = |response: Json| (vec![Outgoing::Json(response)], false, None);
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return one(error_response(WireErrorKind::Parse, e.to_string())),
    };
    trace.stage("parse");
    let default = router.default_topology();

    // Format negotiation. The acknowledgement rides the current format;
    // the switch takes effect on the next exchange.
    if doc.get("op").and_then(Json::as_str) == Some("hello") {
        if format == WireFormat::Binary {
            return one(error_response(
                WireErrorKind::BadRequest,
                "connection already negotiated the binary framing",
            ));
        }
        let name = doc.get("format").and_then(Json::as_str).unwrap_or("json");
        return match WireFormat::from_name(name) {
            None => one(error_response(
                WireErrorKind::BadRequest,
                format!("unknown format '{name}' (json|binary)"),
            )),
            Some(requested) => (
                vec![Outgoing::Json(hello_response(requested))],
                false,
                Some(requested),
            ),
        };
    }

    // Route ops resolve their backend before body parsing (the body's
    // size validation needs the right topology in hand).
    if doc.get("op").and_then(Json::as_str) == Some("route") {
        let (d, g) = match requested_shape(&doc, &default) {
            Ok(shape) => shape,
            Err(e) => return one(error_response(WireErrorKind::BadRequest, e)),
        };
        // Overload control gates everything expensive: admitting the
        // topology (which may construct a warm service) and routing.
        let _admitted = match state.overload.try_admit(peer) {
            Ok(guard) => guard,
            Err(shed) => return one(shed_response(state, shed)),
        };
        trace.stage("admission");
        let service = match select_service(state, d, g) {
            Ok(service) => service,
            Err((kind, msg)) => return one(error_response(kind, msg)),
        };
        return match parse_request(&doc, &service.topology()) {
            Err(e) => one(error_response(WireErrorKind::BadRequest, e)),
            Ok(WireRequest::Route { req, want_schedule }) => {
                // Tee the request *as the client sent it* (request-level
                // faults only, no baseline) so traces port across
                // baseline configurations.
                if let Some(recorder) = &state.recorder {
                    recorder.record(format, crate::record::recorded_route(d, g, &req));
                }
                let req = compose_baseline_route(
                    req,
                    baseline_fault_ids(&state.config, d, g),
                    &service.topology(),
                );
                match service.route(&req) {
                    Ok(reply) => {
                        trace.stage(if reply.cache_hit { "cache" } else { "plan" });
                        one(route_response(req.kind(), &reply, want_schedule))
                    }
                    Err(e) => {
                        trace.stage("plan");
                        one(error_response(route_error_kind(&e), e.to_string()))
                    }
                }
            }
            Ok(_) => one(error_response(
                WireErrorKind::BadRequest,
                "internal: op 'route' parsed to a non-route request",
            )),
        };
    }

    match parse_request(&doc, &default) {
        Err(e) => one(error_response(WireErrorKind::BadRequest, e)),
        Ok(WireRequest::Ping) => one(pong_response()),
        Ok(WireRequest::Info) => {
            let service = router.default_service();
            let shapes: Vec<(usize, usize)> = router
                .services()
                .iter()
                .map(|(t, _)| (t.d(), t.g()))
                .collect();
            one(info_response(
                &default,
                service.shard_count(),
                service.cache_capacity(),
                &shapes,
                router.max_topologies(),
                env!("CARGO_PKG_VERSION"),
                state.started.elapsed().as_secs(),
            ))
        }
        Ok(WireRequest::Stats) => {
            let (aggregate, per_topology) = aggregate_stats(state);
            one(stats_response(&aggregate, &per_topology, &router.stats()))
        }
        Ok(WireRequest::Shutdown) => (vec![Outgoing::Json(shutdown_response())], true, None),
        Ok(WireRequest::Cache { action }) => {
            if let Some(recorder) = &state.recorder {
                recorder.record(format, crate::record::recorded_cache(action));
            }
            one(respond_cache(action, state))
        }
        Ok(WireRequest::Batch {
            items,
            want_schedule,
        }) => {
            if let Some(recorder) = &state.recorder {
                if let Some(op) = crate::record::recorded_batch(&items) {
                    recorder.record(format, op);
                }
            }
            (
                respond_batch(&items, want_schedule, state, false, peer, trace),
                false,
                None,
            )
        }
        Ok(WireRequest::Route { .. }) => one(error_response(
            WireErrorKind::BadRequest,
            "internal: route op fell through its dedicated dispatcher",
        )),
    }
}

/// Answers one binary frame. `TAG_JSON` frames carry any JSON op and ride
/// the ordinary dispatcher (their responses come back as `TAG_JSON`
/// frames); `TAG_ROUTE` and `TAG_BATCH` get the dense binary bodies and
/// binary replies. Malformed frames are answered with a structured JSON
/// error frame — the framing itself stays intact, so the connection
/// survives exactly like a JSON connection survives a bad line.
fn respond_frame(
    payload: &[u8],
    state: &ServeState,
    peer: Option<IpAddr>,
    trace: &mut RequestTrace,
) -> (Vec<Outgoing>, bool) {
    let one = |response: Json| (vec![Outgoing::Json(response)], false);
    let Some((&tag, body)) = payload.split_first() else {
        return one(error_response(WireErrorKind::Parse, "empty frame"));
    };
    match tag {
        TAG_JSON => match std::str::from_utf8(body) {
            Err(_) => one(error_response(
                WireErrorKind::Parse,
                "TAG_JSON frame is not valid UTF-8",
            )),
            Ok(line) => {
                let (responses, stop, _) = respond(line, state, WireFormat::Binary, peer, trace);
                (responses, stop)
            }
        },
        TAG_ROUTE => respond_route_frame(body, state, peer, trace),
        TAG_BATCH => match frame::decode_batch_request(body) {
            Err(e) => one(error_response(WireErrorKind::Parse, e)),
            Ok((frame_items, want_schedule)) => {
                let default = state.router.default_topology();
                let items: Vec<BatchItemRequest> = frame_items
                    .into_iter()
                    .map(|item| {
                        // (0, 0) means "the server's default shape",
                        // mirroring a JSON item without d/g fields.
                        let (d, g) = match item.shape {
                            (0, 0) => (default.d(), default.g()),
                            shape => shape,
                        };
                        let perm = item.perm.and_then(|pi| match d.checked_mul(g) {
                            Some(n) if n == pi.len() => Ok(pi),
                            _ => Err(format!(
                                "item permutation has length {}, POPS({d}, {g}) needs {}",
                                pi.len(),
                                d.saturating_mul(g)
                            )),
                        });
                        // The dense batch body carries no fault lists;
                        // a declared baseline still applies per item.
                        BatchItemRequest {
                            d,
                            g,
                            perm,
                            faults: Vec::new(),
                        }
                    })
                    .collect();
                if let Some(recorder) = &state.recorder {
                    if let Some(op) = crate::record::recorded_batch(&items) {
                        recorder.record(WireFormat::Binary, op);
                    }
                }
                (
                    respond_batch(&items, want_schedule, state, true, peer, trace),
                    false,
                )
            }
        },
        other => one(error_response(
            WireErrorKind::BadRequest,
            format!("unknown frame tag 0x{other:02x}"),
        )),
    }
}

/// Answers one `TAG_ROUTE` frame: resolve the shape, validate the
/// permutation against the selected topology, route, and reply with a
/// `TAG_ROUTE_REPLY` frame (errors stay structured JSON frames).
fn respond_route_frame(
    body: &[u8],
    state: &ServeState,
    peer: Option<IpAddr>,
    trace: &mut RequestTrace,
) -> (Vec<Outgoing>, bool) {
    let one = |response: Json| (vec![Outgoing::Json(response)], false);
    let route = match frame::decode_route_request(body) {
        Ok(route) => route,
        Err(e) => return one(error_response(WireErrorKind::Parse, e)),
    };
    trace.stage("parse");
    let default = state.router.default_topology();
    let (d, g) = match route.shape {
        (0, 0) => (default.d(), default.g()),
        shape => shape,
    };
    let _admitted = match state.overload.try_admit(peer) {
        Ok(guard) => guard,
        Err(shed) => return one(shed_response(state, shed)),
    };
    trace.stage("admission");
    let service = match select_service(state, d, g) {
        Ok(service) => service,
        Err((kind, msg)) => return one(error_response(kind, msg)),
    };
    let pi = match route.perm {
        Ok(pi) => pi,
        Err(e) => return one(error_response(WireErrorKind::BadRequest, e)),
    };
    if pi.len() != service.topology().n() {
        return one(error_response(
            WireErrorKind::BadRequest,
            format!(
                "permutation has length {}, {} needs {}",
                pi.len(),
                service.topology(),
                service.topology().n()
            ),
        ));
    }
    let req = match route.kind {
        RequestKind::Theorem2 => ServiceRequest::Theorem2 { pi },
        RequestKind::SingleSlot => ServiceRequest::SingleSlot { pi },
        RequestKind::Direct => ServiceRequest::Direct { pi },
        RequestKind::Structured => ServiceRequest::Structured { pi },
        // The decoder refuses these kinds; their richer bodies ride
        // TAG_JSON frames instead.
        RequestKind::HRelation | RequestKind::WithFaults => {
            return one(error_response(
                WireErrorKind::BadRequest,
                "h-relation and fault bodies ride TAG_JSON frames, not TAG_ROUTE",
            ))
        }
    };
    if let Some(recorder) = &state.recorder {
        recorder.record(
            WireFormat::Binary,
            crate::record::recorded_route(d, g, &req),
        );
    }
    // A declared baseline degrades dense theorem2 frames too; the binary
    // reply has no degraded flag, but the schedule and the cache key are
    // the fault-aware ones.
    let req = compose_baseline_route(
        req,
        baseline_fault_ids(&state.config, d, g),
        &service.topology(),
    );
    match service.route(&req) {
        Err(e) => {
            trace.stage("plan");
            one(error_response(route_error_kind(&e), e.to_string()))
        }
        Ok(reply) => {
            trace.stage(if reply.cache_hit { "cache" } else { "plan" });
            (
                vec![Outgoing::Frame(frame::encode_route_reply(
                    reply.cache_hit,
                    reply.micros,
                    reply.outcome.schedule(),
                    route.want_schedule,
                ))],
                false,
            )
        }
    }
}

/// Answers a `batch` op with one `batch-item` line per item **in input
/// order**, then one `batch` summary line. Items are grouped by topology
/// and each group rides [`RoutingService::route_batch`] — the in-process
/// threads + no-artefacts fast path — so a mixed-shape batch costs one
/// dispatch per distinct shape, not one per item. A batch larger than
/// `max_batch_items` is refused whole with `too-large` (never silently
/// truncated); per-item problems (bad permutation, unadmittable shape)
/// get per-item error lines without poisoning their siblings.
fn respond_batch(
    items: &[crate::proto::BatchItemRequest],
    want_schedule: bool,
    state: &ServeState,
    binary: bool,
    peer: Option<IpAddr>,
    trace: &mut RequestTrace,
) -> Vec<Outgoing> {
    if items.len() > state.config.max_batch_items {
        return vec![Outgoing::Json(error_response(
            WireErrorKind::TooLarge,
            format!(
                "batch of {} items exceeds the {}-item cap",
                items.len(),
                state.config.max_batch_items
            ),
        ))];
    }
    // A whole batch spends one admission slot/token: its fan-out is
    // bounded by max_batch_items, and charging per item would let one
    // batch line starve every other client's quota.
    let _admitted = match state.overload.try_admit(peer) {
        Ok(guard) => guard,
        Err(shed) => return vec![Outgoing::Json(shed_response(state, shed))],
    };
    trace.stage("admission");
    let start = Instant::now();
    let mut lines: Vec<Option<Outgoing>> = (0..items.len()).map(|_| None).collect();
    let mut groups: BTreeMap<(usize, usize), Vec<(usize, Permutation)>> = BTreeMap::new();
    // Items whose effective fault set (request faults ∪ the shape's
    // declared baseline) is non-empty: they skip the no-artefacts fast
    // path below and ride the cache-aware single-route path, so their
    // plans live under fault-keyed cache entries and their responses
    // carry the degraded flag.
    let mut degraded_items: Vec<(usize, &BatchItemRequest, Permutation)> = Vec::new();
    for (index, item) in items.iter().enumerate() {
        match &item.perm {
            Err(e) => {
                // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                lines[index] = Some(Outgoing::Json(batch_item_error(
                    index,
                    WireErrorKind::BadRequest,
                    e,
                )))
            }
            Ok(pi) => {
                if item.faults.is_empty()
                    && baseline_fault_ids(&state.config, item.d, item.g).is_empty()
                {
                    groups
                        .entry((item.d, item.g))
                        .or_default()
                        .push((index, pi.clone()));
                } else {
                    degraded_items.push((index, item, pi.clone()));
                }
            }
        }
    }
    // Cap the distinct shapes BEFORE any lookup: admission can construct
    // a warm service per shape, so a batch spraying novel shapes would
    // otherwise amplify one request line into hundreds of builds (and
    // churn every other client's warm topology out of the registry).
    let mut shapes: BTreeSet<(usize, usize)> = groups.keys().copied().collect();
    shapes.extend(degraded_items.iter().map(|(_, item, _)| (item.d, item.g)));
    if shapes.len() > state.config.max_batch_topologies {
        return vec![Outgoing::Json(error_response(
            WireErrorKind::TooLarge,
            format!(
                "batch touches {} distinct topologies, exceeding the {}-topology cap",
                shapes.len(),
                state.config.max_batch_topologies
            ),
        ))];
    }
    let mut routed = 0usize;
    let mut slots_total = 0usize;
    let mut topologies: BTreeSet<(usize, usize)> = BTreeSet::new();
    for ((d, g), members) in groups {
        match select_service(state, d, g) {
            Err((kind, msg)) => {
                for (index, _) in members {
                    // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                    lines[index] = Some(Outgoing::Json(batch_item_error(index, kind, msg.clone())));
                }
            }
            Ok(service) => {
                let (indices, perms): (Vec<usize>, Vec<Permutation>) = members.into_iter().unzip();
                let plans = service.route_batch(&perms, None, false);
                topologies.insert((d, g));
                for (&index, plan) in indices.iter().zip(&plans) {
                    routed += 1;
                    slots_total += plan.schedule.slot_count();
                    // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                    lines[index] = Some(if binary {
                        Outgoing::Frame(frame::encode_batch_item(
                            index,
                            d,
                            g,
                            &plan.schedule,
                            want_schedule,
                        ))
                    } else {
                        Outgoing::Json(batch_item_response(
                            index,
                            d,
                            g,
                            &plan.schedule,
                            want_schedule,
                            false,
                        ))
                    });
                }
            }
        }
    }
    for (index, item, pi) in degraded_items {
        match select_service(state, item.d, item.g) {
            Err((kind, msg)) => {
                // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                lines[index] = Some(Outgoing::Json(batch_item_error(index, kind, msg)));
            }
            Ok(service) => {
                let topology = service.topology();
                let mut faults = FaultSet::none(&topology);
                // Item faults were validated in parsing and baseline ids
                // at boot; the filter keeps this total regardless.
                for &c in baseline_fault_ids(&state.config, item.d, item.g)
                    .iter()
                    .chain(&item.faults)
                    .filter(|&&c| c < topology.coupler_count())
                {
                    faults.fail_coupler(c);
                }
                let req = ServiceRequest::WithFaults { pi, faults };
                match service.route(&req) {
                    Err(e) => {
                        // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                        lines[index] = Some(Outgoing::Json(batch_item_error(
                            index,
                            route_error_kind(&e),
                            e.to_string(),
                        )));
                    }
                    Ok(reply) => {
                        routed += 1;
                        let schedule = reply.outcome.schedule();
                        slots_total += schedule.slot_count();
                        topologies.insert((item.d, item.g));
                        // lint: allow(panic-freedom) -- `index` comes from enumerate() over `items`; lines.len() == items.len()
                        lines[index] = Some(if binary {
                            Outgoing::Frame(frame::encode_batch_item(
                                index,
                                item.d,
                                item.g,
                                schedule,
                                want_schedule,
                            ))
                        } else {
                            Outgoing::Json(batch_item_response(
                                index,
                                item.d,
                                item.g,
                                schedule,
                                want_schedule,
                                reply.degraded,
                            ))
                        });
                    }
                }
            }
        }
    }
    trace.stage("plan");
    let mut out: Vec<Outgoing> = lines
        .into_iter()
        .enumerate()
        .map(|(index, line)| {
            // Every index is assigned exactly once above (error or plan);
            // answer with a structured error rather than panic if not.
            line.unwrap_or_else(|| {
                Outgoing::Json(batch_item_error(
                    index,
                    WireErrorKind::BadRequest,
                    "internal: batch item was not answered",
                ))
            })
        })
        .collect();
    let topologies: Vec<(usize, usize)> = topologies.into_iter().collect();
    out.push(Outgoing::Json(batch_summary_response(
        items.len(),
        routed,
        items.len() - routed,
        slots_total,
        start.elapsed().as_micros() as u64,
        &topologies,
    )));
    out
}

/// Answers a `cache` op across **every resident topology**. The spill
/// paths are fixed server-side (one file per topology under
/// `--cache-dir`) — a client can trigger persistence but never chooses
/// where the bytes go; without a configured directory the persistence
/// actions are `bad-request`. A save stops at the first filesystem
/// failure (`unavailable`); a load skips unmatchable files (wrong
/// topology, corrupt) and reports how many, failing only if the
/// directory itself cannot be listed.
fn respond_cache(action: CacheAction, state: &ServeState) -> Json {
    let router = &state.router;
    match action {
        CacheAction::Stats => {
            let (aggregate, _) = aggregate_stats(state);
            cache_stats_response(&aggregate)
        }
        CacheAction::Save | CacheAction::Load => {
            let Some(dir) = &state.config.cache_dir else {
                return error_response(
                    WireErrorKind::BadRequest,
                    "server started without --cache-dir; cache persistence is disabled",
                );
            };
            match action {
                CacheAction::Save => match router.save_all(dir) {
                    Ok(written) => cache_persist_response(
                        action,
                        written.iter().map(|(_, s)| s.l1_entries).sum(),
                        written.iter().map(|(_, s)| s.l2_entries).sum(),
                        0,
                    ),
                    Err(e) => error_response(
                        WireErrorKind::Unavailable,
                        format!("cache save failed: {e}"),
                    ),
                },
                CacheAction::Load => match router.load_dir(dir) {
                    Ok(report) => cache_persist_response(
                        action,
                        report.l1_entries(),
                        report.l2_entries(),
                        report.skipped.len(),
                    ),
                    Err(e) => error_response(
                        WireErrorKind::Unavailable,
                        format!("cache load failed: {e}"),
                    ),
                },
                // lint: allow(panic-freedom) -- the outer match answers `Stats` before this arm can be reached
                CacheAction::Stats => unreachable!("handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServiceClient;
    use crate::service::ServiceConfig;
    use pops_bipartite::ColorerKind;
    use pops_network::Simulator;
    use pops_permutation::families::vector_reversal;

    fn spawn_server(
        topology: PopsTopology,
    ) -> (SocketAddr, std::thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(RoutingService::with_config(
            topology,
            ServiceConfig {
                shards: 2,
                cache_capacity: 32,
                max_in_flight: 4,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let handle = std::thread::spawn(move || serve(listener, service).unwrap());
        (addr, handle)
    }

    #[test]
    fn end_to_end_route_verify_stats_shutdown() {
        let t = PopsTopology::new(4, 4);
        let (addr, handle) = spawn_server(t);
        let mut client = ServiceClient::connect(addr).unwrap();

        client.ping().unwrap();
        let info = client.info().unwrap();
        assert_eq!((info.d, info.g), (4, 4));

        let pi = vector_reversal(16);
        let first = client.route_permutation("theorem2", &pi).unwrap();
        assert_eq!(first.slots, 2);
        assert!(!first.cache_hit);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&first.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();

        let again = client.route_permutation("theorem2", &pi).unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.schedule, first.schedule);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));
        // The new gauges ride along in the stats response.
        assert!(stats.get("arena_bytes").unwrap().as_u64().unwrap() > 0);
        assert_eq!(stats.get("cache_entries").unwrap().as_u64(), Some(1));

        client.shutdown().unwrap();
        let summary = handle.join().unwrap();
        assert!(summary.requests >= 5);
        assert!(summary.connections >= 1);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_server() {
        let (addr, handle) = spawn_server(PopsTopology::new(2, 2));
        let mut client = ServiceClient::connect(addr).unwrap();
        for bad in [
            "this is not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"route","perm":[0,1]}"#,
        ] {
            let err = client.call_raw(bad).unwrap_err();
            assert!(err.to_string().contains("server error"), "{err}");
        }
        // Still alive and serving.
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn cache_op_persists_across_server_restarts() {
        let t = PopsTopology::new(4, 4);
        let dir = std::env::temp_dir().join(format!(
            "pops-server-cache-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let config = || ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let spawn = |config: ServerConfig| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let service = Arc::new(RoutingService::with_config(
                t,
                ServiceConfig {
                    shards: 1,
                    cache_capacity: 16,
                    max_in_flight: 2,
                    colorer: ColorerKind::AlternatingPath,
                    ..ServiceConfig::default()
                },
            ));
            let handle =
                std::thread::spawn(move || serve_with_config(listener, service, config).unwrap());
            (addr, handle)
        };

        // First server: route, save, shut down.
        let (addr, handle) = spawn(config());
        let mut client = ServiceClient::connect(addr).unwrap();
        let pi = vector_reversal(16);
        assert!(!client.route_permutation("theorem2", &pi).unwrap().cache_hit);
        let saved = client.cache_op("save").unwrap();
        assert_eq!(saved.get("l1_entries").unwrap().as_u64(), Some(1));
        let stats = client.cache_op("stats").unwrap();
        assert_eq!(
            stats
                .get("cache")
                .unwrap()
                .get("l1")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        client.shutdown().unwrap();
        handle.join().unwrap();

        // Restarted server: load, and the very first repeat is a hit.
        let (addr, handle) = spawn(config());
        let mut client = ServiceClient::connect(addr).unwrap();
        let loaded = client.cache_op("load").unwrap();
        assert_eq!(loaded.get("l1_entries").unwrap().as_u64(), Some(1));
        let reply = client.route_permutation("theorem2", &pi).unwrap();
        assert!(reply.cache_hit, "warm restart must hit immediately");
        // The restored schedule still passes the client-side referee.
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&reply.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();

        // A server without --cache-dir refuses persistence, structurally.
        let (addr, handle) = spawn(ServerConfig::default());
        let mut client = ServiceClient::connect(addr).unwrap();
        let err = client.cache_op("save").unwrap_err();
        assert_eq!(err.remote_kind(), Some("bad-request"), "{err}");
        client.shutdown().unwrap();
        handle.join().unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_negotiation_routes_batches_and_counts_bytes() {
        let t = PopsTopology::new(4, 4);
        let (addr, handle) = spawn_server(t);
        let mut client = ServiceClient::connect(addr).unwrap();

        client.set_format(WireFormat::Binary).unwrap();
        assert_eq!(client.format(), WireFormat::Binary);
        // Re-negotiating the current format is a client-side no-op...
        client.set_format(WireFormat::Binary).unwrap();
        // ...but a second hello on the wire is a structural error.
        let err = client.call_raw(r#"{"op":"hello","format":"binary"}"#);
        assert_eq!(err.unwrap_err().remote_kind(), Some("bad-request"));

        // Control ops ride JSON-in-a-frame transparently.
        client.ping().unwrap();
        let info = client.info().unwrap();
        assert_eq!((info.d, info.g), (4, 4));

        // Dense binary route: referee the schedule, then hit the cache.
        let pi = vector_reversal(16);
        let first = client.route_permutation("theorem2", &pi).unwrap();
        assert_eq!(first.slots, 2);
        assert!(!first.cache_hit);
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&first.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        let again = client.route_permutation("theorem2", &pi).unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.schedule, first.schedule);

        // Dense binary batch, schedules included, default + explicit shape.
        let items = vec![
            crate::client::BatchItem {
                pi: pi.clone(),
                shape: None,
                faults: vec![],
            },
            crate::client::BatchItem {
                pi: pi.clone(),
                shape: Some((4, 4)),
                faults: vec![],
            },
        ];
        let batch = client.batch(&items, true).unwrap();
        assert_eq!(batch.summary.routed, 2);
        for item in &batch.items {
            let item = item.as_ref().unwrap();
            assert_eq!(item.slots, 2);
            let mut sim = Simulator::with_unit_packets(t);
            sim.execute_schedule(&item.schedule).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }

        // The stats op reports this connection as binary and the wire
        // byte counters from completed exchanges are non-zero. (Bytes
        // are recorded per exchange, so everything before this stats
        // request is already counted.)
        let stats = client.stats().unwrap();
        let conns = stats.get("connections").unwrap();
        assert_eq!(conns.get("binary").unwrap().as_u64(), Some(1));
        let wire = stats.get("wire").unwrap();
        let binary = wire.get("binary").unwrap();
        assert!(binary.get("bytes_in").unwrap().as_u64().unwrap() > 0);
        assert!(binary.get("bytes_out").unwrap().as_u64().unwrap() > 0);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn binary_and_json_clients_interoperate_on_one_server() {
        let t = PopsTopology::new(2, 8);
        let (addr, handle) = spawn_server(t);
        let pi = vector_reversal(16);

        let mut json_client = ServiceClient::connect(addr).unwrap();
        let mut binary_client = ServiceClient::connect(addr).unwrap();
        binary_client.set_format(WireFormat::Binary).unwrap();

        // Identical requests produce identical schedules regardless of
        // the transport (the second is the first's cache hit).
        let via_json = json_client.route_permutation("theorem2", &pi).unwrap();
        let via_binary = binary_client.route_permutation("theorem2", &pi).unwrap();
        assert_eq!(via_json.schedule, via_binary.schedule);
        assert!(via_binary.cache_hit);

        let stats = json_client.stats().unwrap();
        let conns = stats.get("connections").unwrap();
        assert_eq!(conns.get("binary").unwrap().as_u64(), Some(1));
        assert_eq!(conns.get("json").unwrap().as_u64(), Some(1));

        json_client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_binary_frames_get_error_frames_and_do_not_kill_the_connection() {
        let (addr, handle) = spawn_server(PopsTopology::new(2, 2));
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(stream, r#"{{"op":"hello","format":"binary"}}"#).unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.contains(r#""format":"binary""#), "{ack}");

        // An unknown tag is answered with a structured JSON error frame
        // and the connection survives.
        crate::frame::write_frame(&mut stream, &[0xff]).unwrap();
        let payload = crate::frame::read_frame(&mut reader, 1 << 20).unwrap();
        assert_eq!(payload[0], TAG_JSON);
        let doc = Json::parse(std::str::from_utf8(&payload[1..]).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("bad-request"));

        // Still serving: a ping in a JSON frame round-trips.
        let json_frame = |body: &[u8]| {
            let mut payload = vec![TAG_JSON];
            payload.extend_from_slice(body);
            payload
        };
        crate::frame::write_frame(&mut stream, &json_frame(br#"{"op":"ping"}"#)).unwrap();
        let payload = crate::frame::read_frame(&mut reader, 1 << 20).unwrap();
        assert_eq!(payload[0], TAG_JSON);
        assert!(std::str::from_utf8(&payload[1..]).unwrap().contains("pong"));

        // A shutdown in a JSON frame stops the server.
        crate::frame::write_frame(&mut stream, &json_frame(br#"{"op":"shutdown"}"#)).unwrap();
        let _ = crate::frame::read_frame(&mut reader, 1 << 20).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (addr, handle) = spawn_server(PopsTopology::new(4, 4));
        let pi = vector_reversal(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pi = pi.clone();
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let reply = client.route_permutation("theorem2", &pi).unwrap();
                        assert_eq!(reply.slots, 2);
                    }
                });
            }
        });
        let mut client = ServiceClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        // All 20 requests share one key. The service does not coalesce
        // in-flight duplicates, so each client's *first* request can race
        // into the miss window — between 1 and 4 misses, the rest hits.
        let misses = stats.get("misses").unwrap().as_u64().unwrap();
        let hits = stats.get("hits").unwrap().as_u64().unwrap();
        assert!((1..=4).contains(&misses), "misses {misses}");
        assert_eq!(hits + misses, 20);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    fn spawn_server_with(
        topology: PopsTopology,
        config: ServerConfig,
    ) -> (SocketAddr, std::thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(RoutingService::with_config(
            topology,
            ServiceConfig {
                shards: 2,
                cache_capacity: 32,
                max_in_flight: 4,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let handle =
            std::thread::spawn(move || serve_with_config(listener, service, config).unwrap());
        (addr, handle)
    }

    /// One HTTP exchange against `addr`: request `path`, read to EOF.
    fn http_get(addr: SocketAddr, path: &str) -> String {
        use std::io::Read as _;
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: pops\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut page = String::new();
        stream.read_to_string(&mut page).unwrap();
        page
    }

    /// [`http_get`], but retrying the connect — for the sidecar listener,
    /// which binds on the serve thread after the test already holds the
    /// main address.
    fn http_get_retry(addr: SocketAddr, path: &str) -> String {
        for _ in 0..200 {
            if TcpStream::connect(addr).is_ok() {
                return http_get(addr, path);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("metrics sidecar on {addr} never came up");
    }

    #[test]
    fn overload_control_enforces_the_watermark_and_the_quota() {
        let peer = Some("10.0.0.1".parse().unwrap());

        // Watermark: one in-flight slot, released by the guard's drop.
        let control = OverloadControl::from_config(&ServerConfig {
            overload_watermark: Some(1),
            ..ServerConfig::default()
        });
        let guard = control.try_admit(peer).unwrap();
        let shed = control.try_admit(peer).err().expect("second admit sheds");
        assert!(!shed.quota);
        assert_eq!(shed.retry_after_ms, WATERMARK_RETRY_MS);
        drop(guard);
        assert!(control.try_admit(peer).is_ok(), "slot freed by drop");

        // Quota: a burst of two tokens, then a deficit-derived hint.
        let control = OverloadControl::from_config(&ServerConfig {
            quota_rps: Some(1),
            quota_burst: Some(2),
            ..ServerConfig::default()
        });
        assert!(control.try_admit(peer).is_ok());
        assert!(control.try_admit(peer).is_ok());
        let shed = control.try_admit(peer).err().expect("burst spent");
        assert!(shed.quota);
        assert!(shed.retry_after_ms >= 1, "{}", shed.retry_after_ms);
        // Another peer has its own bucket.
        let other = Some("10.0.0.2".parse().unwrap());
        assert!(control.try_admit(other).is_ok());

        // A peerless connection (no resolvable address) bypasses quota
        // but still honours the watermark.
        let control = OverloadControl::from_config(&ServerConfig {
            overload_watermark: Some(0),
            quota_rps: Some(1),
            ..ServerConfig::default()
        });
        let shed = control.try_admit(None).err().expect("watermark zero");
        assert!(!shed.quota);
    }

    #[test]
    fn quota_bucket_map_is_pruned_at_the_client_cap() {
        // A source-address spray must degrade quota precision, never
        // memory: crossing MAX_QUOTA_CLIENTS prunes refilled (idle)
        // buckets, and when no bucket is idle the map is cleared.
        let spray_ip = |i: usize| IpAddr::from([10, (i >> 16) as u8, (i >> 8) as u8, i as u8]);

        // rps = 1: no bucket can refill within the loop, so the prune
        // finds nothing idle and falls back to clearing the whole map.
        let control = OverloadControl::from_config(&ServerConfig {
            quota_rps: Some(1),
            quota_burst: Some(1),
            ..ServerConfig::default()
        });
        for i in 0..=MAX_QUOTA_CLIENTS {
            assert!(
                control.try_admit(Some(spray_ip(i))).is_ok(),
                "every distinct peer admits on its burst token"
            );
        }
        let len = control.buckets.lock().unwrap().len();
        assert_eq!(len, 0, "nothing idle: the cap clears the map");

        // A fast refill rate leaves earlier buckets idle by the time the
        // cap is crossed, so the prune keeps the map bounded without the
        // clear fallback.
        let control = OverloadControl::from_config(&ServerConfig {
            quota_rps: Some(1_000_000),
            quota_burst: Some(1),
            ..ServerConfig::default()
        });
        for i in 0..=MAX_QUOTA_CLIENTS {
            assert!(control.try_admit(Some(spray_ip(i))).is_ok());
        }
        let len = control.buckets.lock().unwrap().len();
        assert!(
            len <= MAX_QUOTA_CLIENTS,
            "the map stays bounded after the prune (kept {len})"
        );

        // Quota still functions for a fresh peer after prune/clear.
        assert!(control
            .try_admit(Some(IpAddr::from([192, 168, 0, 1])))
            .is_ok());
    }

    #[test]
    fn a_zero_watermark_sheds_routes_with_typed_errors_but_not_control_ops() {
        let (addr, handle) = spawn_server_with(
            PopsTopology::new(4, 4),
            ServerConfig {
                overload_watermark: Some(0),
                ..ServerConfig::default()
            },
        );
        let mut client = ServiceClient::connect(addr).unwrap();
        // Control ops are never shed: the server stays observable.
        client.ping().unwrap();
        let err = client
            .route_permutation("theorem2", &vector_reversal(16))
            .unwrap_err();
        assert_eq!(err.remote_kind(), Some("overloaded"), "{err}");
        assert_eq!(err.retry_after_ms(), Some(WATERMARK_RETRY_MS));
        // The connection survives a shed; the next call works.
        let stats = client.stats().unwrap();
        let sheds = stats.get("sheds").unwrap();
        assert_eq!(sheds.get("watermark").unwrap().as_u64(), Some(1));
        assert_eq!(sheds.get("quota").unwrap().as_u64(), Some(0));
        let wire_errors = stats.get("wire_errors").unwrap();
        assert_eq!(wire_errors.get("overloaded").unwrap().as_u64(), Some(1));
        // The shed reaches the exposition with its cause label.
        let page = http_get(addr, "/metrics");
        assert!(
            page.contains(r#"pops_sheds_total{cause="watermark"} 1"#),
            "{page}"
        );
        assert!(
            page.contains(r#"pops_wire_errors_total{error_kind="overloaded"} 1"#),
            "{page}"
        );
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn a_quota_shed_carries_a_deficit_derived_retry_hint() {
        let (addr, handle) = spawn_server_with(
            PopsTopology::new(4, 4),
            ServerConfig {
                quota_rps: Some(1),
                quota_burst: Some(1),
                ..ServerConfig::default()
            },
        );
        let mut client = ServiceClient::connect(addr).unwrap();
        let pi = vector_reversal(16);
        client.route_permutation("theorem2", &pi).unwrap();
        let err = client.route_permutation("theorem2", &pi).unwrap_err();
        assert_eq!(err.remote_kind(), Some("overloaded"), "{err}");
        assert!(err.retry_after_ms().unwrap() >= 1, "{err}");
        let stats = client.stats().unwrap();
        let quota_sheds = stats.get("sheds").unwrap().get("quota").unwrap();
        assert!(quota_sheds.as_u64().unwrap() >= 1);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn get_metrics_on_the_main_listener_returns_the_exposition() {
        let (addr, handle) = spawn_server(PopsTopology::new(4, 4));
        let mut client = ServiceClient::connect(addr).unwrap();
        client
            .route_permutation("theorem2", &vector_reversal(16))
            .unwrap();

        let page = http_get(addr, "/metrics");
        assert!(page.starts_with("HTTP/1.0 200 OK\r\n"), "{page}");
        assert!(page.contains(exposition::CONTENT_TYPE), "{page}");
        assert!(
            page.contains("# TYPE pops_requests_total counter"),
            "{page}"
        );
        assert!(
            page.contains(r#"pops_requests_total{kind="theorem2"} 1"#),
            "{page}"
        );
        assert!(
            page.contains(r#"pops_topology_requests_total{topology="4x4"} 1"#),
            "{page}"
        );
        assert!(page.contains("pops_uptime_seconds"), "{page}");
        assert!(page.contains("pops_build_info{"), "{page}");

        // Unknown paths 404; the JSON protocol is undisturbed either way.
        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn the_metrics_sidecar_serves_the_exposition_and_stops_with_the_server() {
        // Reserve a free port, then hand it to the sidecar.
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let (addr, handle) = spawn_server_with(
            PopsTopology::new(2, 2),
            ServerConfig {
                metrics_port: Some(port),
                ..ServerConfig::default()
            },
        );
        let sidecar = SocketAddr::from(([127, 0, 0, 1], port));
        let page = http_get_retry(sidecar, "/metrics");
        assert!(page.starts_with("HTTP/1.0 200 OK\r\n"), "{page}");
        assert!(page.contains("pops_build_info{"), "{page}");
        assert!(page.contains("pops_connections_active"), "{page}");

        // serve() joins the sidecar thread on shutdown — if it hangs,
        // this join hangs and the test harness times out.
        let mut client = ServiceClient::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn a_zero_slow_threshold_traces_every_request_and_rate_limits_the_log() {
        let (addr, handle) = spawn_server_with(
            PopsTopology::new(2, 2),
            ServerConfig {
                slow_threshold: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        );
        let mut client = ServiceClient::connect(addr).unwrap();
        // Every JSON response echoes its trace id.
        let doc = client.call_raw(r#"{"op":"ping"}"#).unwrap();
        let trace = doc.get("trace").and_then(Json::as_str).unwrap();
        assert!(trace.starts_with('c') && trace.contains("-r"), "{trace}");
        for _ in 0..5 {
            client.ping().unwrap();
        }
        // Six exchanges observed so far (the stats request below is only
        // observed after its response is written): the limiter lets one
        // through per interval and suppresses the rest of the storm.
        let stats = client.stats().unwrap();
        let slow = stats.get("slow_traces").unwrap();
        let emitted = slow.get("emitted").unwrap().as_u64().unwrap();
        let suppressed = slow.get("suppressed").unwrap().as_u64().unwrap();
        assert!(emitted >= 1, "emitted={emitted}");
        assert!(suppressed >= 1, "suppressed={suppressed}");
        assert_eq!(emitted + suppressed, 6);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn trace_ids_are_echoed_even_without_a_slow_log() {
        let (addr, handle) = spawn_server(PopsTopology::new(2, 2));
        let mut client = ServiceClient::connect(addr).unwrap();
        let doc = client.call_raw(r#"{"op":"ping"}"#).unwrap();
        assert!(doc.get("trace").and_then(Json::as_str).is_some());
        // Request sequence numbers advance per connection.
        let first = doc.get("trace").unwrap().as_str().unwrap().to_string();
        let doc = client.call_raw(r#"{"op":"ping"}"#).unwrap();
        let second = doc.get("trace").unwrap().as_str().unwrap();
        assert_ne!(first, second);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn fatal_oversized_lines_charge_consumed_bytes_and_the_error_response() {
        let (addr, handle) = spawn_server_with(
            PopsTopology::new(2, 2),
            ServerConfig {
                max_line_bytes: 256,
                ..ServerConfig::default()
            },
        );
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(&vec![b'x'; 1024]).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("too-large"), "{reply}");
        let error_len = reply.len() as u64;
        // Fatal framing errors close the connection.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);

        // A fresh connection's stats see the aborted exchange's bytes:
        // at least the refused prefix on the way in, and exactly the
        // error response on the way out.
        let mut client = ServiceClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        let json = stats.get("wire").unwrap().get("json").unwrap();
        let bytes_in = json.get("bytes_in").unwrap().as_u64().unwrap();
        assert!(bytes_in >= 256, "bytes_in={bytes_in}");
        assert_eq!(json.get("bytes_out").unwrap().as_u64(), Some(error_len));
        let wire_errors = stats.get("wire_errors").unwrap();
        assert_eq!(wire_errors.get("too-large").unwrap().as_u64(), Some(1));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn baseline_faults_degrade_served_plans_and_key_them_apart() {
        let t = PopsTopology::new(4, 4);
        let (addr, handle) = spawn_server_with(
            t,
            ServerConfig {
                baseline_faults: vec![((4, 4), vec![1])],
                ..ServerConfig::default()
            },
        );
        let mut client = ServiceClient::connect(addr).unwrap();
        let pi = vector_reversal(16);
        // A plain theorem2 request degrades under the declared baseline,
        // and its schedule verifies on the degraded fabric.
        let reply = client.route_permutation("theorem2", &pi).unwrap();
        assert!(reply.degraded, "baseline fault must degrade theorem2");
        assert!(!reply.cache_hit);
        let mut faults = FaultSet::none(&t);
        faults.fail_coupler(1);
        let mut sim = Simulator::with_unit_packets_and_faults(t, faults);
        sim.execute_schedule(&reply.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        // Request faults compose with the baseline as a set union: the
        // same effective set is the same cache key, a wider one is not.
        let same = client
            .route_permutation_with_faults("theorem2", &pi, None, &[1])
            .unwrap();
        assert!(same.cache_hit, "identical effective fault set must hit");
        assert!(same.degraded);
        let wider = client
            .route_permutation_with_faults("theorem2", &pi, None, &[2])
            .unwrap();
        assert!(!wider.cache_hit, "a wider fault set is a distinct key");
        assert!(wider.degraded);
        let stats = client.stats().unwrap();
        let degraded = stats.get("degraded").unwrap();
        assert_eq!(degraded.get("plans").unwrap().as_u64(), Some(2));
        assert_eq!(degraded.get("hits").unwrap().as_u64(), Some(1));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn an_unroutable_fault_set_is_refused_with_the_typed_wire_error() {
        let t = PopsTopology::new(2, 3);
        let (addr, handle) = spawn_server(t);
        let mut client = ServiceClient::connect(addr).unwrap();
        // Kill every coupler into group 1 — c(1, src) = 1·g + src — so no
        // packet can reach that group and the fabric is not fully
        // routable.
        let faults: Vec<usize> = (0..3).map(|src| 3 + src).collect();
        let pi = vector_reversal(6);
        let err = client
            .route_permutation_with_faults("theorem2", &pi, None, &faults)
            .unwrap_err();
        assert_eq!(err.remote_kind(), Some("unroutable"), "{err}");
        // The refusal reaches the stats document and the exposition.
        let stats = client.stats().unwrap();
        let wire_errors = stats.get("wire_errors").unwrap();
        assert_eq!(wire_errors.get("unroutable").unwrap().as_u64(), Some(1));
        let degraded = stats.get("degraded").unwrap();
        assert_eq!(
            degraded.get("unroutable_refusals").unwrap().as_u64(),
            Some(1)
        );
        let page = http_get(addr, "/metrics");
        assert!(page.contains("pops_unroutable_refusals_total 1"), "{page}");
        assert!(
            page.contains(r#"pops_wire_errors_total{error_kind="unroutable"} 1"#),
            "{page}"
        );
        // The connection and the server survive; healthy traffic routes.
        let healthy = client.route_permutation("theorem2", &pi).unwrap();
        assert!(!healthy.degraded);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn batch_items_carry_their_own_fault_sets() {
        let t = PopsTopology::new(4, 4);
        let (addr, handle) = spawn_server(t);
        let mut client = ServiceClient::connect(addr).unwrap();
        let pi = vector_reversal(16);
        let items = vec![
            crate::client::BatchItem {
                pi: pi.clone(),
                shape: None,
                faults: vec![],
            },
            crate::client::BatchItem {
                pi: pi.clone(),
                shape: None,
                faults: vec![5],
            },
        ];
        let batch = client.batch(&items, true).unwrap();
        assert_eq!(batch.summary.routed, 2);
        let healthy = batch.items[0].as_ref().unwrap();
        assert!(!healthy.degraded);
        let degraded = batch.items[1].as_ref().unwrap();
        assert!(degraded.degraded, "faulted item must be flagged");
        // The degraded item's schedule verifies under its declared
        // fault set; the healthy one on the pristine fabric.
        let mut sim = Simulator::with_unit_packets(t);
        sim.execute_schedule(&healthy.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        let mut faults = FaultSet::none(&t);
        faults.fail_coupler(5);
        let mut sim = Simulator::with_unit_packets_and_faults(t, faults);
        sim.execute_schedule(&degraded.schedule).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn an_out_of_range_baseline_fault_refuses_to_serve() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let service = Arc::new(RoutingService::with_config(
            PopsTopology::new(2, 2),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        ));
        let err = serve_with_config(
            listener,
            service,
            ServerConfig {
                baseline_faults: vec![((2, 2), vec![99])],
                ..ServerConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn the_hello_exchange_is_charged_to_the_json_byte_counters() {
        let (addr, handle) = spawn_server(PopsTopology::new(2, 2));
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let request = r#"{"op":"hello","format":"binary"}"#;
        writeln!(stream, "{request}").unwrap();
        stream.flush().unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.contains(r#""format":"binary""#), "{ack}");

        // The negotiation itself happened in JSON, and is accounted as
        // such; no binary bytes have moved yet.
        let mut client = ServiceClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        let wire = stats.get("wire").unwrap();
        let json = wire.get("json").unwrap();
        assert_eq!(
            json.get("bytes_in").unwrap().as_u64(),
            Some(request.len() as u64 + 1)
        );
        assert_eq!(
            json.get("bytes_out").unwrap().as_u64(),
            Some(ack.len() as u64)
        );
        let binary = wire.get("binary").unwrap();
        assert_eq!(binary.get("bytes_in").unwrap().as_u64(), Some(0));
        assert_eq!(binary.get("bytes_out").unwrap().as_u64(), Some(0));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
