//! The routing service front door: admission → cache L1/L2 → pool →
//! metrics.
//!
//! A [`RoutingService`] serves Mei–Rizzi routing for **one** topology as a
//! shared, thread-safe facility:
//!
//! 1. the **admission gate** bounds in-flight requests (excess callers
//!    queue on a condvar rather than piling onto the engine shards);
//! 2. the **two-level plan cache** ([`crate::cache`]) answers repeated
//!    requests with an `Arc` clone of the previously computed outcome
//!    (level 1, whole-request keys) and assembles h-relations from cached
//!    per-phase Theorem-2 plans (level 2, completed-permutation keys) —
//!    both levels sharded so concurrent hits never serialize on one lock;
//! 3. misses run on the **engine pool** ([`crate::pool`]) of warm,
//!    zero-allocation engines;
//! 4. every step feeds the [`ServiceMetrics`] registry, and both cache
//!    levels can be spilled to and restored from disk ([`crate::persist`])
//!    so a restarted server starts warm.
//!
//! ```
//! use pops_permutation::families::vector_reversal;
//! use pops_network::PopsTopology;
//! use pops_service::{RoutingService, ServiceRequest};
//!
//! let service = RoutingService::new(PopsTopology::new(4, 4));
//! let req = ServiceRequest::Theorem2 { pi: vector_reversal(16) };
//! let first = service.route(&req).unwrap();
//! let again = service.route(&req).unwrap();
//! assert_eq!(first.outcome.schedule().slot_count(), 2);
//! assert!(!first.cache_hit && again.cache_hit);
//! ```

use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use pops_bipartite::ColorerKind;
use pops_core::{
    BatchRouter, FaultRoutingError, HRelation, HRelationRouting, Router, RoutingEngine,
    RoutingError, RoutingOutcome, RoutingPlan, RoutingRequest,
};
use pops_network::{FaultSet, PopsTopology, Schedule, UNREACHABLE};
use pops_permutation::Permutation;

use crate::cache::{canonical_key, phase_key, CachedOutcome, CachedPhase, ShardedPlanCache};
use crate::metrics::{MetricsSnapshot, RequestKind, ServiceMetrics};
use crate::persist::{self, PersistSummary};
use crate::pool::EnginePool;

/// An owned routing query — the service-boundary mirror of the borrowing
/// [`RoutingRequest`].
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Route an arbitrary permutation with the Theorem-2 construction.
    Theorem2 {
        /// The permutation to route.
        pi: Permutation,
    },
    /// Route in a single slot if the demand condition holds.
    SingleSlot {
        /// The permutation to route.
        pi: Permutation,
    },
    /// Route an h-relation by König decomposition.
    HRelation {
        /// The relation to route.
        relation: HRelation,
    },
    /// Route a permutation around failed couplers.
    WithFaults {
        /// The permutation to route.
        pi: Permutation,
        /// The failed couplers.
        faults: FaultSet,
    },
    /// The direct single-hop baseline.
    Direct {
        /// The permutation to route.
        pi: Permutation,
    },
    /// The structured (Sahni-style) baseline.
    Structured {
        /// The permutation to route.
        pi: Permutation,
    },
}

impl ServiceRequest {
    /// The request's metrics kind.
    pub fn kind(&self) -> RequestKind {
        match self {
            ServiceRequest::Theorem2 { .. } => RequestKind::Theorem2,
            ServiceRequest::SingleSlot { .. } => RequestKind::SingleSlot,
            ServiceRequest::HRelation { .. } => RequestKind::HRelation,
            ServiceRequest::WithFaults { .. } => RequestKind::WithFaults,
            ServiceRequest::Direct { .. } => RequestKind::Direct,
            ServiceRequest::Structured { .. } => RequestKind::Structured,
        }
    }

    /// The borrowing engine request this owns.
    fn as_routing_request(&self) -> RoutingRequest<'_> {
        match self {
            ServiceRequest::Theorem2 { pi } => RoutingRequest::Theorem2 { pi },
            ServiceRequest::SingleSlot { pi } => RoutingRequest::SingleSlot { pi },
            ServiceRequest::HRelation { relation } => RoutingRequest::HRelation { relation },
            ServiceRequest::WithFaults { pi, faults } => RoutingRequest::WithFaults { pi, faults },
            ServiceRequest::Direct { pi } => RoutingRequest::DirectBaseline { pi },
            ServiceRequest::Structured { pi } => RoutingRequest::StructuredBaseline { pi },
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine-pool shards (default: available parallelism).
    pub shards: usize,
    /// Level-1 (whole-request) plan-cache capacity in entries; 0 disables
    /// that level.
    pub cache_capacity: usize,
    /// Level-2 (per-phase) cache capacity in entries; 0 disables phase
    /// caching (h-relations are still assembled phase by phase, every
    /// phase a miss).
    pub phase_cache_capacity: usize,
    /// Lock shards per cache level (clamped to the level's capacity). One
    /// mutex per shard: the single-lock LRU was the documented throughput
    /// ceiling above ~10⁶ hits/sec.
    pub cache_shards: usize,
    /// Maximum requests in flight; excess callers wait at the admission
    /// gate.
    pub max_in_flight: usize,
    /// The edge-colouring engine of the pooled engines.
    pub colorer: ColorerKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, NonZeroUsize::get);
        Self {
            shards,
            cache_capacity: 1024,
            phase_cache_capacity: 1024,
            cache_shards: shards.next_power_of_two(),
            max_in_flight: 4 * shards,
            colorer: ColorerKind::AlternatingPath,
        }
    }
}

/// What [`RoutingService::route`] hands back.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// The routing outcome, shared with the cache (and any other caller
    /// holding the same plan).
    pub outcome: CachedOutcome,
    /// Whether the plan came from the level-1 cache.
    pub cache_hit: bool,
    /// For h-relation requests assembled on a level-1 miss: how many of
    /// the relation's phases were answered by the level-2 phase cache
    /// (0 for every other kind and for level-1 hits).
    pub phase_hits: u64,
    /// Whether the plan was produced by the greedy fault router under a
    /// **non-empty** fault set — the degraded fallback to the Theorem-2
    /// construction. Cache hits report the flag of the request that is
    /// being answered, so a degraded repeat stays visibly degraded.
    pub degraded: bool,
    /// Wall-clock service time in microseconds.
    pub micros: u64,
}

/// The admission gate: a counting semaphore on `Mutex<usize>` + `Condvar`.
#[derive(Debug)]
struct Admission {
    max: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(max: usize) -> Self {
        Self {
            max: max.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire<'a>(&'a self, metrics: &ServiceMetrics) -> AdmissionGuard<'a> {
        let mut count = self
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *count >= self.max {
            metrics.record_admission_wait();
            while *count >= self.max {
                count = self
                    .freed
                    .wait(count)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        *count += 1;
        AdmissionGuard(self)
    }
}

struct AdmissionGuard<'a>(&'a Admission);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut count = self
            .0
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *count -= 1;
        drop(count);
        self.0.freed.notify_one();
    }
}

/// The concurrent routing service. See the [module docs](self).
///
/// ```
/// use pops_permutation::families::vector_reversal;
/// use pops_network::PopsTopology;
/// use pops_service::{RoutingService, ServiceRequest};
///
/// let service = RoutingService::new(PopsTopology::new(4, 4));
/// let req = ServiceRequest::Theorem2 { pi: vector_reversal(16) };
/// assert!(!service.route(&req).unwrap().cache_hit); // computed
/// assert!(service.route(&req).unwrap().cache_hit); // level-1 hit
/// ```
#[derive(Debug)]
pub struct RoutingService {
    topology: PopsTopology,
    colorer: ColorerKind,
    pool: EnginePool,
    /// Level 1: whole-request canonical keys → shared outcomes.
    cache: ShardedPlanCache<CachedOutcome>,
    /// Level 2: completed-permutation phase keys → Theorem-2 schedules.
    phase_cache: ShardedPlanCache<CachedPhase>,
    /// Whether level 2 has any capacity — guards the schedule clones that
    /// would otherwise be paid just to be dropped by a zero-capacity
    /// insert.
    phase_caching: bool,
    /// Persistent batch executor: worker engines warmed by the first
    /// batch op and reused by every later one, so repeated wire batches
    /// stay on the zero-allocation hot path. Batches serialize on this
    /// lock (each already occupies a whole admission slot).
    batch_router: Mutex<BatchRouter>,
    metrics: Arc<ServiceMetrics>,
    admission: Admission,
}

impl RoutingService {
    /// A service for `topology` with the default configuration.
    pub fn new(topology: PopsTopology) -> Self {
        Self::with_config(topology, ServiceConfig::default())
    }

    /// A service for `topology` with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn with_config(topology: PopsTopology, config: ServiceConfig) -> Self {
        let metrics = Arc::new(ServiceMetrics::new());
        Self {
            topology,
            colorer: config.colorer,
            pool: EnginePool::new(topology, config.colorer, config.shards, metrics.clone()),
            cache: ShardedPlanCache::new(config.cache_capacity, config.cache_shards),
            phase_cache: ShardedPlanCache::new(config.phase_cache_capacity, config.cache_shards),
            phase_caching: config.phase_cache_capacity > 0,
            batch_router: Mutex::new(BatchRouter::new(topology, config.colorer)),
            metrics,
            admission: Admission::new(config.max_in_flight),
        }
    }

    /// The topology this service routes on.
    pub fn topology(&self) -> PopsTopology {
        self.topology
    }

    /// The colourer this service's engines run.
    pub fn colorer(&self) -> ColorerKind {
        self.colorer
    }

    /// The pool's shard count.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// The level-1 cache capacity.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Level-1 entries currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// The level-2 (phase) cache capacity.
    pub fn phase_cache_capacity(&self) -> usize {
        self.phase_cache.capacity()
    }

    /// Level-2 (phase) entries currently cached.
    pub fn cached_phases(&self) -> usize {
        self.phase_cache.len()
    }

    /// Lock shards per cache level.
    pub fn cache_shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// A snapshot of the metrics registry, with the service-level gauges
    /// (arena footprint, occupancy of both cache levels) filled in — the
    /// raw registry cannot see the pool or the caches.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.arena_bytes = self.arena_footprint() as u64;
        snap.cache_entries = self.cache.len() as u64;
        snap.cache_capacity = self.cache.capacity() as u64;
        snap.phase_cache_entries = self.phase_cache.len() as u64;
        snap.phase_cache_capacity = self.phase_cache.capacity() as u64;
        snap
    }

    /// The live metrics registry (shared with the pool).
    pub fn metrics_registry(&self) -> Arc<ServiceMetrics> {
        self.metrics.clone()
    }

    /// Total engine-arena bytes across the pool.
    pub fn arena_footprint(&self) -> usize {
        self.pool.arena_footprint()
    }

    /// Sheds pool arena memory and drops every cached plan on both levels.
    pub fn reset(&self) {
        self.pool.reset_all();
        self.cache.clear();
        self.phase_cache.clear();
    }

    /// Routes one request through admission, the two cache levels, and the
    /// pool.
    ///
    /// Successful outcomes are cached under the request's canonical key
    /// (level 1); h-relation requests are additionally routed **phase by
    /// phase** so shared phases across different relations are answered by
    /// the level-2 cache, and `theorem2` misses populate level 2 too (a
    /// permutation routed once later serves as a cached phase). Errors are
    /// returned (and counted) but never cached, so a transient client
    /// mistake cannot poison the cache.
    pub fn route(&self, req: &ServiceRequest) -> Result<ServiceReply, RoutingError> {
        let _slot = self.admission.acquire(&self.metrics);
        let start = Instant::now();
        let kind = req.kind();
        let degraded =
            matches!(req, ServiceRequest::WithFaults { faults, .. } if !faults.is_empty());
        let key = canonical_key(self.topology.d(), self.topology.g(), req);

        if let Some(outcome) = self.cache.get(&key) {
            let micros = start.elapsed().as_micros() as u64;
            self.metrics.record_hit(kind, micros);
            if degraded {
                self.metrics.record_degraded_hit();
            }
            return Ok(ServiceReply {
                outcome,
                cache_hit: true,
                phase_hits: 0,
                degraded,
                micros,
            });
        }

        // Pre-flight for degraded requests: a fault set under which some
        // ordered group pair has no surviving path cannot route arbitrary
        // permutations — refuse it with a typed error before planning
        // instead of letting the greedy router fail (or worse, a bogus
        // partial schedule escape).
        if degraded {
            if let ServiceRequest::WithFaults { faults, .. } = req {
                if let Some((src_group, dst_group)) = disconnected_pair(faults, &self.topology) {
                    self.metrics.record_error(kind);
                    self.metrics.record_unroutable();
                    return Err(RoutingError::Fault(FaultRoutingError::Disconnected {
                        src_group,
                        dst_group,
                    }));
                }
            }
        }

        let planned = match req {
            ServiceRequest::HRelation { relation } => self.assemble_h_relation(relation),
            _ => self
                .pool
                .with_engine(|engine| engine.plan(&req.as_routing_request()))
                .map(|outcome| (outcome, 0)),
        };
        match planned {
            Ok((outcome, phase_hits)) => {
                let slots = outcome.schedule().slot_count();
                let outcome = Arc::new(outcome);
                if self.phase_caching && matches!(req, ServiceRequest::Theorem2 { .. }) {
                    // The theorem2 canonical key IS the phase key of the
                    // same permutation (see `phase_key`), so the plan also
                    // becomes a level-2 entry for future h-relation phases.
                    self.phase_cache
                        .insert(key.clone(), Arc::new(outcome.schedule().clone()));
                }
                self.cache.insert(key, outcome.clone());
                let micros = start.elapsed().as_micros() as u64;
                self.metrics.record_miss(kind, slots, micros);
                if degraded {
                    self.metrics.record_degraded_plan();
                }
                Ok(ServiceReply {
                    outcome,
                    cache_hit: false,
                    phase_hits,
                    degraded,
                    micros,
                })
            }
            Err(e) => {
                self.metrics.record_error(kind);
                Err(e)
            }
        }
    }

    /// Routes an h-relation by König decomposition with per-phase caching:
    /// each completed-permutation phase is looked up in the level-2 cache
    /// and only the missing phases are planned on the pool. Returns the
    /// assembled outcome and how many phases were level-2 hits. The
    /// assembled schedule is byte-identical to
    /// [`RoutingEngine::plan_h_relation`] output because both routes plan
    /// phases with the same deterministic construction.
    fn assemble_h_relation(
        &self,
        relation: &HRelation,
    ) -> Result<(RoutingOutcome, u64), RoutingError> {
        let t = self.topology;
        if relation.n() != t.n() {
            return Err(RoutingError::SizeMismatch {
                expected: t.n(),
                got: relation.n(),
            });
        }
        let phases = self
            .pool
            .with_engine(|engine| engine.decompose_h_relation(relation));
        let mut phase_hits = 0u64;
        let mut blocks: Vec<Schedule> = Vec::with_capacity(phases.len());
        for phase in &phases {
            let completed = phase.complete();
            let pkey = phase_key(t.d(), t.g(), &completed);
            if let Some(cached) = self.phase_cache.get(&pkey) {
                self.metrics.record_phase_hit();
                phase_hits += 1;
                blocks.push(Schedule {
                    slots: cached.slots.clone(),
                });
            } else {
                let plan = self
                    .pool
                    .with_engine(|engine| engine.plan_theorem2(&completed));
                self.metrics.record_phase_miss();
                if self.phase_caching {
                    self.phase_cache
                        .insert(pkey, Arc::new(plan.schedule.clone()));
                }
                blocks.push(plan.schedule);
            }
        }
        Ok((
            RoutingOutcome::HRelation(HRelationRouting::from_phase_schedules(t, phases, blocks)),
            phase_hits,
        ))
    }

    /// Spills both cache levels to `path` in the stable
    /// [`crate::persist`] byte format (level-1 values are persisted as
    /// their schedules). Entries are written least-recently-used first
    /// per shard, so a restore into the same shard layout reproduces each
    /// shard's recency ranking (and approximates it otherwise). The file
    /// is written to a unique temporary sibling and atomically renamed
    /// into place, so a crash mid-spill (or a concurrent save) can never
    /// leave a truncated file where a good one was.
    pub fn save_cache(&self, path: &Path) -> std::io::Result<PersistSummary> {
        let mut l1: Vec<(Box<[u8]>, Schedule)> = Vec::new();
        self.cache.for_each_lru(|key, outcome| {
            l1.push((key.into(), outcome.schedule().clone()));
        });
        let mut l2: Vec<(Box<[u8]>, Schedule)> = Vec::new();
        self.phase_cache.for_each_lru(|key, schedule| {
            l2.push((
                key.into(),
                Schedule {
                    slots: schedule.slots.clone(),
                },
            ));
        });
        let bytes = persist::encode_cache_file(self.topology.d(), self.topology.g(), &l1, &l2);
        // Unique temp name per call: concurrent saves each write their own
        // file and the (atomic) renames serialize on the final path.
        static SPILL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let written: std::io::Result<()> = (|| {
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(PersistSummary {
            l1_entries: l1.len(),
            l2_entries: l2.len(),
        })
    }

    /// Restores both cache levels from a file written by
    /// [`RoutingService::save_cache`] for the **same topology**. Restored
    /// level-1 entries carry the identical schedule and slot count but no
    /// construction artefacts (like a schedule-only reply); restored
    /// entries land in their capacity-bounded shards, so loading a file
    /// larger than the cache keeps (approximately, per shard) its
    /// most-recently-used tail. Decode failures — wrong magic, wrong
    /// topology, truncation, a checksum mismatch, or a phase entry whose
    /// slot count is not this topology's Theorem-2 cost — surface as
    /// [`std::io::ErrorKind::InvalidData`] without touching the cache.
    pub fn load_cache(&self, path: &Path) -> std::io::Result<PersistSummary> {
        let bytes = std::fs::read(path)?;
        let invalid =
            |e: persist::PersistError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let decoded = persist::decode_cache_file(&bytes, self.topology.d(), self.topology.g())
            .map_err(invalid)?;
        // Phase entries feed the h-relation assembler, which (rightly)
        // asserts every block is a Theorem-2 schedule — refuse a file
        // that would plant a panic in the serving path.
        let expect_slots = pops_core::theorem2_slots(self.topology.d(), self.topology.g());
        if let Some((_, bad)) = decoded
            .l2
            .iter()
            .find(|(_, schedule)| schedule.slot_count() != expect_slots)
        {
            return Err(invalid(persist::PersistError(format!(
                "phase entry has {} slots, topology needs {expect_slots}",
                bad.slot_count()
            ))));
        }
        let summary = PersistSummary {
            l1_entries: decoded.l1.len(),
            l2_entries: decoded.l2.len(),
        };
        for (key, schedule) in decoded.l1 {
            self.cache
                .insert(key, Arc::new(RoutingOutcome::Schedule(schedule)));
        }
        for (key, schedule) in decoded.l2 {
            self.phase_cache.insert(key, Arc::new(schedule));
        }
        Ok(summary)
    }

    /// Routes a whole batch of permutations, bypassing the cache and
    /// fanning out over worker threads via the service's persistent
    /// [`BatchRouter`] (worker engines stay warm across batch ops). One
    /// batch occupies one admission slot. With `emit_artefacts = false`
    /// (the fast path) the plans carry schedules only — no per-plan
    /// artefact clones.
    pub fn route_batch(
        &self,
        batch: &[Permutation],
        threads: Option<NonZeroUsize>,
        emit_artefacts: bool,
    ) -> Vec<RoutingPlan> {
        let _slot = self.admission.acquire(&self.metrics);
        let mut router = self
            .batch_router
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        router.set_emit_artefacts(emit_artefacts);
        let plans = router.route_batch(batch, threads);
        drop(router);
        let slots: usize = plans.iter().map(|p| p.schedule.slot_count()).sum();
        self.metrics.record_batch(plans.len(), slots);
        plans
    }

    /// Plans one request on a caller-owned scratch engine, bypassing
    /// admission, cache, and pool — the yardstick the benches use to
    /// price the service layers against a bare cold engine.
    pub fn route_cold(
        topology: PopsTopology,
        colorer: ColorerKind,
        req: &ServiceRequest,
    ) -> Result<RoutingOutcome, RoutingError> {
        RoutingEngine::with_colorer(topology, colorer).plan(&req.as_routing_request())
    }
}

/// The first ordered group pair that cannot communicate under `faults`
/// (either no path at all, or no *non-empty* path for intra-group
/// traffic), or `None` when the fabric is fully routable — the witness
/// behind [`FaultSet::fully_routable`], needed here because the typed
/// refusal names the severed pair.
fn disconnected_pair(faults: &FaultSet, topology: &PopsTopology) -> Option<(usize, usize)> {
    let dist = faults.group_distances(topology);
    let g = topology.g();
    (0..g)
        .flat_map(|a| (0..g).map(move |b| (a, b)))
        .find(|&(a, b)| {
            dist[a][b] == UNREACHABLE
                || faults.group_distance_ge1(topology, &dist, a, b) == UNREACHABLE
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    fn small_service() -> RoutingService {
        RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 2,
                cache_capacity: 8,
                max_in_flight: 4,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn cache_hits_share_the_same_plan() {
        let service = small_service();
        let req = ServiceRequest::Theorem2 {
            pi: vector_reversal(16),
        };
        let a = service.route(&req).unwrap();
        let b = service.route(&req).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert!(Arc::ptr_eq(&a.outcome, &b.outcome), "hits share one Arc");
        let snap = service.metrics();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.slots_emitted, 2, "only the miss emits slots");
    }

    #[test]
    fn schedules_verify_on_the_simulator() {
        let service = small_service();
        let mut rng = SplitMix64::new(11);
        for _ in 0..6 {
            let pi = random_permutation(16, &mut rng);
            let reply = service
                .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
                .unwrap();
            let mut sim = Simulator::with_unit_packets(service.topology());
            sim.execute_schedule(reply.outcome.schedule()).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    /// An h-relation made of `h` random full permutations.
    fn random_relation(n: usize, h: usize, rng: &mut SplitMix64) -> HRelation {
        let mut requests = Vec::with_capacity(n * h);
        for _ in 0..h {
            let p = random_permutation(n, rng);
            requests.extend((0..n).map(|s| (s, p.apply(s))));
        }
        HRelation::new(n, requests).unwrap()
    }

    /// Executes each phase block of `reply` on a fresh simulator and
    /// checks the phase's completed permutation is delivered — the referee
    /// for assembled-from-phases schedules.
    fn verify_phases(service: &RoutingService, reply: &ServiceReply) {
        let RoutingOutcome::HRelation(routing) = reply.outcome.as_ref() else {
            panic!("expected an h-relation outcome");
        };
        for (idx, phase) in routing.phases.iter().enumerate() {
            let completed = phase.complete();
            let mut sim = Simulator::with_unit_packets(service.topology());
            let block = &routing.schedule.slots
                [idx * routing.slots_per_phase..(idx + 1) * routing.slots_per_phase];
            for frame in block {
                sim.execute_frame(frame)
                    .unwrap_or_else(|e| panic!("phase {idx}: {e}"));
            }
            sim.verify_delivery(completed.as_slice())
                .unwrap_or_else(|e| panic!("phase {idx}: {e}"));
        }
    }

    #[test]
    fn h_relations_assemble_from_cached_phases() {
        let service = small_service();
        let mut rng = SplitMix64::new(21);
        let relation = random_relation(16, 3, &mut rng);

        // Cold: every phase is a level-2 miss; the assembled schedule
        // passes the simulator referee phase by phase.
        let cold = service
            .route(&ServiceRequest::HRelation {
                relation: relation.clone(),
            })
            .unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.phase_hits, 0);
        verify_phases(&service, &cold);
        let snap = service.metrics();
        assert_eq!((snap.phase_hits, snap.phase_misses), (0, 3));
        assert_eq!(service.cached_phases(), 3);

        // The identical relation (requests reshuffled) is a level-1 hit.
        let mut shuffled = relation.requests().to_vec();
        shuffled.reverse();
        let again = service
            .route(&ServiceRequest::HRelation {
                relation: HRelation::new(16, shuffled).unwrap(),
            })
            .unwrap();
        assert!(again.cache_hit);

        // A *fresh* relation whose phases are already cached: decompose it
        // up front (same deterministic colourer as the service), route its
        // completed phases as plain theorem2 requests, then route the
        // relation itself — its L1 key is new, but every phase hits L2.
        let fresh = random_relation(16, 2, &mut rng);
        let phases = RoutingEngine::with_colorer(service.topology(), ColorerKind::AlternatingPath)
            .decompose_h_relation(&fresh);
        for phase in &phases {
            service
                .route(&ServiceRequest::Theorem2 {
                    pi: phase.complete(),
                })
                .unwrap();
        }
        let reply = service
            .route(&ServiceRequest::HRelation { relation: fresh })
            .unwrap();
        assert!(!reply.cache_hit, "different relation, different L1 key");
        assert_eq!(
            reply.phase_hits, 2,
            "every phase must be served from level 2"
        );
        verify_phases(&service, &reply);
    }

    #[test]
    fn theorem2_requests_seed_the_phase_cache() {
        let service = small_service();
        let mut rng = SplitMix64::new(22);
        let pi = random_permutation(16, &mut rng);
        // Route the permutation as a plain request first...
        service
            .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
            .unwrap();
        assert_eq!(service.cached_phases(), 1, "theorem2 misses seed level 2");
        // ...then as a 1-relation: its single phase is exactly `pi`, so
        // the assembly is all level-2 hits.
        let relation = HRelation::new(16, (0..16).map(|s| (s, pi.apply(s))).collect()).unwrap();
        let reply = service
            .route(&ServiceRequest::HRelation { relation })
            .unwrap();
        assert!(!reply.cache_hit);
        assert_eq!(reply.phase_hits, 1, "the phase rides the theorem2 plan");
        verify_phases(&service, &reply);
    }

    #[test]
    fn assembled_schedules_match_the_engine_exactly() {
        // The per-phase cached assembly must be byte-identical to a bare
        // engine's plan_h_relation, hits and misses alike.
        let mut rng = SplitMix64::new(23);
        let service = small_service();
        let mut engine =
            RoutingEngine::with_colorer(service.topology(), ColorerKind::AlternatingPath);
        for h in [1usize, 2, 4] {
            let relation = random_relation(16, h, &mut rng);
            let reply = service
                .route(&ServiceRequest::HRelation {
                    relation: relation.clone(),
                })
                .unwrap();
            let direct = engine.plan_h_relation(&relation);
            assert_eq!(reply.outcome.schedule(), &direct.schedule, "h = {h}");
        }
    }

    #[test]
    fn cache_spills_and_restores_across_service_instances() {
        let dir = std::env::temp_dir().join(format!(
            "pops-cache-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = crate::persist::cache_file_path(&dir);

        let mut rng = SplitMix64::new(24);
        let pi = random_permutation(16, &mut rng);
        let relation = random_relation(16, 2, &mut rng);

        let first = small_service();
        first
            .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
            .unwrap();
        first
            .route(&ServiceRequest::HRelation {
                relation: relation.clone(),
            })
            .unwrap();
        let saved = first.save_cache(&path).unwrap();
        assert_eq!(saved.l1_entries, 2);
        assert_eq!(saved.l2_entries, 3, "1 theorem2-seeded + 2 relation phases");

        // A restarted server: loads the spill, first repeats are hits.
        let second = small_service();
        let loaded = second.load_cache(&path).unwrap();
        assert_eq!((loaded.l1_entries, loaded.l2_entries), (2, 3));
        let reply = second
            .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
            .unwrap();
        assert!(reply.cache_hit, "warm restart must hit on repeats");
        // The restored schedule still routes correctly.
        let mut sim = Simulator::with_unit_packets(second.topology());
        sim.execute_schedule(reply.outcome.schedule()).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        assert!(
            second
                .route(&ServiceRequest::HRelation { relation })
                .unwrap()
                .cache_hit
        );

        // Loading onto the wrong topology is refused.
        let wrong = RoutingService::with_config(
            PopsTopology::new(2, 8),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        );
        let err = wrong.load_cache(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_counted_not_cached() {
        let service = small_service();
        let req = ServiceRequest::SingleSlot {
            pi: vector_reversal(16), // concentrates demand: not single-slot
        };
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::NotSingleSlotRoutable)
        ));
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::NotSingleSlotRoutable)
        ));
        let snap = service.metrics();
        assert_eq!(snap.errors, 2);
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn size_mismatch_is_an_error_not_a_panic() {
        let service = small_service();
        let req = ServiceRequest::Theorem2 {
            pi: vector_reversal(6),
        };
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::SizeMismatch {
                expected: 16,
                got: 6
            })
        ));
    }

    #[test]
    fn lru_capacity_bounds_the_cache() {
        let service = small_service(); // capacity 8
        let mut rng = SplitMix64::new(12);
        for _ in 0..20 {
            let pi = random_permutation(16, &mut rng);
            service.route(&ServiceRequest::Theorem2 { pi }).unwrap();
        }
        assert_eq!(service.cached_plans(), 8);
    }

    #[test]
    fn batch_counts_metrics_and_matches_single_plans() {
        let service = small_service();
        let mut rng = SplitMix64::new(13);
        let perms: Vec<_> = (0..10).map(|_| random_permutation(16, &mut rng)).collect();
        let plans = service.route_batch(&perms, NonZeroUsize::new(3), false);
        assert_eq!(plans.len(), 10);
        for (pi, plan) in perms.iter().zip(&plans) {
            assert!(plan.fair_distribution.is_none(), "fast path: no artefacts");
            let reply = service
                .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
                .unwrap();
            assert_eq!(reply.outcome.schedule(), &plan.schedule);
        }
        let snap = service.metrics();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_plans, 10);
    }

    #[test]
    fn reset_sheds_arenas_and_cache() {
        let service = small_service();
        service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert!(service.arena_footprint() > 0);
        assert_eq!(service.cached_plans(), 1);
        service.reset();
        assert_eq!(service.arena_footprint(), 0);
        assert_eq!(service.cached_plans(), 0);
        // Still serves correctly afterwards.
        let reply = service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert_eq!(reply.outcome.schedule().slot_count(), 2);
    }

    #[test]
    fn metrics_snapshot_carries_memory_gauges() {
        let service = small_service();
        let before = service.metrics();
        assert_eq!(before.cache_entries, 0);
        assert_eq!(before.cache_capacity, 8);
        service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        let after = service.metrics();
        assert!(after.arena_bytes > 0, "warm engines hold arena memory");
        assert_eq!(after.cache_entries, 1);
        let rendered = after.to_string();
        assert!(rendered.contains("plan cache: 1/8 entries"), "{rendered}");
    }

    #[test]
    fn all_request_kinds_route() {
        let service = RoutingService::with_config(
            PopsTopology::new(2, 3),
            ServiceConfig {
                shards: 1,
                cache_capacity: 16,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        );
        let pi = vector_reversal(6);
        let t = service.topology();
        let reqs = [
            ServiceRequest::Theorem2 { pi: pi.clone() },
            ServiceRequest::HRelation {
                relation: HRelation::new(6, vec![(0, 1), (1, 0), (2, 5)]).unwrap(),
            },
            ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: FaultSet::none(&t),
            },
            ServiceRequest::Direct { pi: pi.clone() },
            ServiceRequest::Structured { pi: pi.clone() },
        ];
        for req in &reqs {
            let reply = service.route(req).unwrap();
            assert!(reply.outcome.schedule().slot_count() > 0);
            assert!(service.route(req).unwrap().cache_hit, "{:?}", req.kind());
        }
    }

    #[test]
    fn degraded_plans_are_flagged_and_keyed_apart_from_healthy() {
        let service = small_service();
        let t = service.topology();
        let pi = vector_reversal(16);

        let healthy = service
            .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
            .unwrap();
        assert!(!healthy.degraded);

        let mut faults = FaultSet::none(&t);
        faults.fail_coupler(1);
        let req = ServiceRequest::WithFaults {
            pi: pi.clone(),
            faults: faults.clone(),
        };
        let degraded = service.route(&req).unwrap();
        assert!(degraded.degraded);
        assert!(!degraded.cache_hit, "same pi, different fault set: new key");
        assert_eq!(service.cached_plans(), 2, "healthy and degraded coexist");
        // The degraded schedule avoids the failed coupler and delivers.
        let mut sim = pops_network::Simulator::with_unit_packets_and_faults(t, faults);
        sim.execute_schedule(degraded.outcome.schedule()).unwrap();
        sim.verify_delivery(pi.as_slice()).unwrap();
        // The repeat is a hit and stays flagged degraded.
        let again = service.route(&req).unwrap();
        assert!(again.cache_hit && again.degraded);

        // An empty fault set is greedy-but-healthy: not degraded.
        let empty = service
            .route(&ServiceRequest::WithFaults {
                pi,
                faults: FaultSet::none(&t),
            })
            .unwrap();
        assert!(!empty.degraded);

        let snap = service.metrics();
        assert_eq!(snap.degraded_plans, 1);
        assert_eq!(snap.degraded_hits, 1);
    }

    #[test]
    fn unroutable_fault_set_is_a_typed_error_not_a_panic() {
        let service = RoutingService::with_config(
            PopsTopology::new(2, 3),
            ServiceConfig {
                shards: 1,
                cache_capacity: 8,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
                ..ServiceConfig::default()
            },
        );
        let t = service.topology();
        // Sever every coupler into group 1: no permutation can route.
        let mut faults = FaultSet::none(&t);
        for src in 0..3 {
            faults.fail_group_pair(&t, 1, src);
        }
        assert!(!faults.fully_routable(&t));
        let err = service
            .route(&ServiceRequest::WithFaults {
                pi: vector_reversal(6),
                faults,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            RoutingError::Fault(FaultRoutingError::Disconnected { dst_group: 1, .. })
        ));
        assert_eq!(service.cached_plans(), 0, "refusals are never cached");
        assert_eq!(service.metrics().unroutable_refusals, 1);
        // The service still serves healthy traffic afterwards.
        assert!(service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(6),
            })
            .is_ok());
    }
}
