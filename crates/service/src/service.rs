//! The routing service front door: admission → cache → pool → metrics.
//!
//! A [`RoutingService`] serves Mei–Rizzi routing for **one** topology as a
//! shared, thread-safe facility:
//!
//! 1. the **admission gate** bounds in-flight requests (excess callers
//!    queue on a condvar rather than piling onto the engine shards);
//! 2. the **plan cache** ([`crate::cache`]) answers repeated requests with
//!    an `Arc` clone of the previously computed outcome;
//! 3. misses run on the **engine pool** ([`crate::pool`]) of warm,
//!    zero-allocation engines;
//! 4. every step feeds the [`ServiceMetrics`] registry.
//!
//! ```
//! use pops_permutation::families::vector_reversal;
//! use pops_network::PopsTopology;
//! use pops_service::{RoutingService, ServiceRequest};
//!
//! let service = RoutingService::new(PopsTopology::new(4, 4));
//! let req = ServiceRequest::Theorem2 { pi: vector_reversal(16) };
//! let first = service.route(&req).unwrap();
//! let again = service.route(&req).unwrap();
//! assert_eq!(first.outcome.schedule().slot_count(), 2);
//! assert!(!first.cache_hit && again.cache_hit);
//! ```

use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use pops_bipartite::ColorerKind;
use pops_core::{
    route_batch_with, HRelation, Router, RoutingEngine, RoutingError, RoutingOutcome, RoutingPlan,
    RoutingRequest,
};
use pops_network::{FaultSet, PopsTopology};
use pops_permutation::Permutation;

use crate::cache::{canonical_key, CachedOutcome, PlanCache};
use crate::metrics::{MetricsSnapshot, RequestKind, ServiceMetrics};
use crate::pool::EnginePool;

/// An owned routing query — the service-boundary mirror of the borrowing
/// [`RoutingRequest`].
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Route an arbitrary permutation with the Theorem-2 construction.
    Theorem2 {
        /// The permutation to route.
        pi: Permutation,
    },
    /// Route in a single slot if the demand condition holds.
    SingleSlot {
        /// The permutation to route.
        pi: Permutation,
    },
    /// Route an h-relation by König decomposition.
    HRelation {
        /// The relation to route.
        relation: HRelation,
    },
    /// Route a permutation around failed couplers.
    WithFaults {
        /// The permutation to route.
        pi: Permutation,
        /// The failed couplers.
        faults: FaultSet,
    },
    /// The direct single-hop baseline.
    Direct {
        /// The permutation to route.
        pi: Permutation,
    },
    /// The structured (Sahni-style) baseline.
    Structured {
        /// The permutation to route.
        pi: Permutation,
    },
}

impl ServiceRequest {
    /// The request's metrics kind.
    pub fn kind(&self) -> RequestKind {
        match self {
            ServiceRequest::Theorem2 { .. } => RequestKind::Theorem2,
            ServiceRequest::SingleSlot { .. } => RequestKind::SingleSlot,
            ServiceRequest::HRelation { .. } => RequestKind::HRelation,
            ServiceRequest::WithFaults { .. } => RequestKind::WithFaults,
            ServiceRequest::Direct { .. } => RequestKind::Direct,
            ServiceRequest::Structured { .. } => RequestKind::Structured,
        }
    }

    /// The borrowing engine request this owns.
    fn as_routing_request(&self) -> RoutingRequest<'_> {
        match self {
            ServiceRequest::Theorem2 { pi } => RoutingRequest::Theorem2 { pi },
            ServiceRequest::SingleSlot { pi } => RoutingRequest::SingleSlot { pi },
            ServiceRequest::HRelation { relation } => RoutingRequest::HRelation { relation },
            ServiceRequest::WithFaults { pi, faults } => RoutingRequest::WithFaults { pi, faults },
            ServiceRequest::Direct { pi } => RoutingRequest::DirectBaseline { pi },
            ServiceRequest::Structured { pi } => RoutingRequest::StructuredBaseline { pi },
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine-pool shards (default: available parallelism).
    pub shards: usize,
    /// Plan-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Maximum requests in flight; excess callers wait at the admission
    /// gate.
    pub max_in_flight: usize,
    /// The edge-colouring engine of the pooled engines.
    pub colorer: ColorerKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, NonZeroUsize::get);
        Self {
            shards,
            cache_capacity: 1024,
            max_in_flight: 4 * shards,
            colorer: ColorerKind::AlternatingPath,
        }
    }
}

/// What [`RoutingService::route`] hands back.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// The routing outcome, shared with the cache (and any other caller
    /// holding the same plan).
    pub outcome: CachedOutcome,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Wall-clock service time in microseconds.
    pub micros: u64,
}

/// The admission gate: a counting semaphore on `Mutex<usize>` + `Condvar`.
#[derive(Debug)]
struct Admission {
    max: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(max: usize) -> Self {
        Self {
            max: max.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire<'a>(&'a self, metrics: &ServiceMetrics) -> AdmissionGuard<'a> {
        let mut count = self.in_flight.lock().expect("admission lock poisoned");
        if *count >= self.max {
            metrics.record_admission_wait();
            while *count >= self.max {
                count = self.freed.wait(count).expect("admission lock poisoned");
            }
        }
        *count += 1;
        AdmissionGuard(self)
    }
}

struct AdmissionGuard<'a>(&'a Admission);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut count = self.0.in_flight.lock().expect("admission lock poisoned");
        *count -= 1;
        drop(count);
        self.0.freed.notify_one();
    }
}

/// The concurrent routing service. See the [module docs](self).
#[derive(Debug)]
pub struct RoutingService {
    topology: PopsTopology,
    colorer: ColorerKind,
    pool: EnginePool,
    cache: Mutex<PlanCache<CachedOutcome>>,
    metrics: Arc<ServiceMetrics>,
    admission: Admission,
}

impl RoutingService {
    /// A service for `topology` with the default configuration.
    pub fn new(topology: PopsTopology) -> Self {
        Self::with_config(topology, ServiceConfig::default())
    }

    /// A service for `topology` with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn with_config(topology: PopsTopology, config: ServiceConfig) -> Self {
        let metrics = Arc::new(ServiceMetrics::new());
        Self {
            topology,
            colorer: config.colorer,
            pool: EnginePool::new(topology, config.colorer, config.shards, metrics.clone()),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            metrics,
            admission: Admission::new(config.max_in_flight),
        }
    }

    /// The topology this service routes on.
    pub fn topology(&self) -> PopsTopology {
        self.topology
    }

    /// The pool's shard count.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// The cache capacity.
    pub fn cache_capacity(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").capacity()
    }

    /// Entries currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// A snapshot of the metrics registry, with the service-level gauges
    /// (arena footprint, plan-cache occupancy) filled in — the raw
    /// registry cannot see the pool or the cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.arena_bytes = self.arena_footprint() as u64;
        let cache = self.cache.lock().expect("cache lock poisoned");
        snap.cache_entries = cache.len() as u64;
        snap.cache_capacity = cache.capacity() as u64;
        snap
    }

    /// The live metrics registry (shared with the pool).
    pub fn metrics_registry(&self) -> Arc<ServiceMetrics> {
        self.metrics.clone()
    }

    /// Total engine-arena bytes across the pool.
    pub fn arena_footprint(&self) -> usize {
        self.pool.arena_footprint()
    }

    /// Sheds pool arena memory and drops every cached plan.
    pub fn reset(&self) {
        self.pool.reset_all();
        self.cache.lock().expect("cache lock poisoned").clear();
    }

    /// Routes one request through admission, cache, and pool.
    ///
    /// Successful outcomes are cached under the request's canonical key;
    /// errors are returned (and counted) but never cached, so a transient
    /// client mistake cannot poison the cache.
    pub fn route(&self, req: &ServiceRequest) -> Result<ServiceReply, RoutingError> {
        let _slot = self.admission.acquire(&self.metrics);
        let start = Instant::now();
        let kind = req.kind();
        let key = canonical_key(self.topology.d(), self.topology.g(), req);

        if let Some(outcome) = self.cache.lock().expect("cache lock poisoned").get(&key) {
            let micros = start.elapsed().as_micros() as u64;
            self.metrics.record_hit(kind, micros);
            return Ok(ServiceReply {
                outcome,
                cache_hit: true,
                micros,
            });
        }

        let planned = self
            .pool
            .with_engine(|engine| engine.plan(&req.as_routing_request()));
        match planned {
            Ok(outcome) => {
                let slots = outcome.schedule().slot_count();
                let outcome = Arc::new(outcome);
                self.cache
                    .lock()
                    .expect("cache lock poisoned")
                    .insert(key, outcome.clone());
                let micros = start.elapsed().as_micros() as u64;
                self.metrics.record_miss(kind, slots, micros);
                Ok(ServiceReply {
                    outcome,
                    cache_hit: false,
                    micros,
                })
            }
            Err(e) => {
                self.metrics.record_error(kind);
                Err(e)
            }
        }
    }

    /// Routes a whole batch of permutations, bypassing the cache and
    /// fanning out over worker threads via [`route_batch_with`]. One batch
    /// occupies one admission slot. With `emit_artefacts = false` (the
    /// fast path) the plans carry schedules only — no per-plan artefact
    /// clones.
    pub fn route_batch(
        &self,
        batch: &[Permutation],
        threads: Option<NonZeroUsize>,
        emit_artefacts: bool,
    ) -> Vec<RoutingPlan> {
        let _slot = self.admission.acquire(&self.metrics);
        let plans = route_batch_with(batch, self.topology, self.colorer, threads, emit_artefacts);
        let slots: usize = plans.iter().map(|p| p.schedule.slot_count()).sum();
        self.metrics.record_batch(plans.len(), slots);
        plans
    }

    /// Plans one request on a caller-owned scratch engine, bypassing
    /// admission, cache, and pool — the yardstick the benches use to
    /// price the service layers against a bare cold engine.
    pub fn route_cold(
        topology: PopsTopology,
        colorer: ColorerKind,
        req: &ServiceRequest,
    ) -> Result<RoutingOutcome, RoutingError> {
        RoutingEngine::with_colorer(topology, colorer).plan(&req.as_routing_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_network::Simulator;
    use pops_permutation::families::{random_permutation, vector_reversal};
    use pops_permutation::SplitMix64;

    fn small_service() -> RoutingService {
        RoutingService::with_config(
            PopsTopology::new(4, 4),
            ServiceConfig {
                shards: 2,
                cache_capacity: 8,
                max_in_flight: 4,
                colorer: ColorerKind::AlternatingPath,
            },
        )
    }

    #[test]
    fn cache_hits_share_the_same_plan() {
        let service = small_service();
        let req = ServiceRequest::Theorem2 {
            pi: vector_reversal(16),
        };
        let a = service.route(&req).unwrap();
        let b = service.route(&req).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert!(Arc::ptr_eq(&a.outcome, &b.outcome), "hits share one Arc");
        let snap = service.metrics();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.slots_emitted, 2, "only the miss emits slots");
    }

    #[test]
    fn schedules_verify_on_the_simulator() {
        let service = small_service();
        let mut rng = SplitMix64::new(11);
        for _ in 0..6 {
            let pi = random_permutation(16, &mut rng);
            let reply = service
                .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
                .unwrap();
            let mut sim = Simulator::with_unit_packets(service.topology());
            sim.execute_schedule(reply.outcome.schedule()).unwrap();
            sim.verify_delivery(pi.as_slice()).unwrap();
        }
    }

    #[test]
    fn errors_are_counted_not_cached() {
        let service = small_service();
        let req = ServiceRequest::SingleSlot {
            pi: vector_reversal(16), // concentrates demand: not single-slot
        };
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::NotSingleSlotRoutable)
        ));
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::NotSingleSlotRoutable)
        ));
        let snap = service.metrics();
        assert_eq!(snap.errors, 2);
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn size_mismatch_is_an_error_not_a_panic() {
        let service = small_service();
        let req = ServiceRequest::Theorem2 {
            pi: vector_reversal(6),
        };
        assert!(matches!(
            service.route(&req),
            Err(RoutingError::SizeMismatch {
                expected: 16,
                got: 6
            })
        ));
    }

    #[test]
    fn lru_capacity_bounds_the_cache() {
        let service = small_service(); // capacity 8
        let mut rng = SplitMix64::new(12);
        for _ in 0..20 {
            let pi = random_permutation(16, &mut rng);
            service.route(&ServiceRequest::Theorem2 { pi }).unwrap();
        }
        assert_eq!(service.cached_plans(), 8);
    }

    #[test]
    fn batch_counts_metrics_and_matches_single_plans() {
        let service = small_service();
        let mut rng = SplitMix64::new(13);
        let perms: Vec<_> = (0..10).map(|_| random_permutation(16, &mut rng)).collect();
        let plans = service.route_batch(&perms, NonZeroUsize::new(3), false);
        assert_eq!(plans.len(), 10);
        for (pi, plan) in perms.iter().zip(&plans) {
            assert!(plan.fair_distribution.is_none(), "fast path: no artefacts");
            let reply = service
                .route(&ServiceRequest::Theorem2 { pi: pi.clone() })
                .unwrap();
            assert_eq!(reply.outcome.schedule(), &plan.schedule);
        }
        let snap = service.metrics();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_plans, 10);
    }

    #[test]
    fn reset_sheds_arenas_and_cache() {
        let service = small_service();
        service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert!(service.arena_footprint() > 0);
        assert_eq!(service.cached_plans(), 1);
        service.reset();
        assert_eq!(service.arena_footprint(), 0);
        assert_eq!(service.cached_plans(), 0);
        // Still serves correctly afterwards.
        let reply = service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        assert_eq!(reply.outcome.schedule().slot_count(), 2);
    }

    #[test]
    fn metrics_snapshot_carries_memory_gauges() {
        let service = small_service();
        let before = service.metrics();
        assert_eq!(before.cache_entries, 0);
        assert_eq!(before.cache_capacity, 8);
        service
            .route(&ServiceRequest::Theorem2 {
                pi: vector_reversal(16),
            })
            .unwrap();
        let after = service.metrics();
        assert!(after.arena_bytes > 0, "warm engines hold arena memory");
        assert_eq!(after.cache_entries, 1);
        let rendered = after.to_string();
        assert!(rendered.contains("plan cache: 1/8 entries"), "{rendered}");
    }

    #[test]
    fn all_request_kinds_route() {
        let service = RoutingService::with_config(
            PopsTopology::new(2, 3),
            ServiceConfig {
                shards: 1,
                cache_capacity: 16,
                max_in_flight: 2,
                colorer: ColorerKind::AlternatingPath,
            },
        );
        let pi = vector_reversal(6);
        let t = service.topology();
        let reqs = [
            ServiceRequest::Theorem2 { pi: pi.clone() },
            ServiceRequest::HRelation {
                relation: HRelation::new(6, vec![(0, 1), (1, 0), (2, 5)]).unwrap(),
            },
            ServiceRequest::WithFaults {
                pi: pi.clone(),
                faults: FaultSet::none(&t),
            },
            ServiceRequest::Direct { pi: pi.clone() },
            ServiceRequest::Structured { pi: pi.clone() },
        ];
        for req in &reqs {
            let reply = service.route(req).unwrap();
            assert!(reply.outcome.schedule().slot_count() > 0);
            assert!(service.route(req).unwrap().cache_hit, "{:?}", req.kind());
        }
    }
}
